"""EXPLAIN engine tests: hand-built grid accounting + family invariants.

The first half builds a 4x4 unit grid with six hand-placed objects whose
replica classes are known exactly, and asserts the :class:`QueryPlan`'s
per-class tile counts and duplicates-avoided against hand computation and
brute force.  The second half checks the structural invariants (per-class
scans sum to tiles visited; duplicate accounting matches brute force) on
every index family.
"""

import numpy as np
import pytest

from repro.api import SpatialCollection
from repro.block import BlockIndex
from repro.core import TwoLayerGrid, TwoLayerPlusGrid
from repro.datasets import RectDataset, generate_uniform_rects
from repro.datasets.queries import DiskQuery
from repro.errors import ObsError
from repro.geometry.mbr import Rect
from repro.grid import OneLayerGrid
from repro.kdtree import KDTree, TwoLayerKDTree
from repro.obs.explain import (
    ExplainStats,
    explain_disk,
    explain_join,
    explain_knn,
    explain_window,
)
from repro.quadtree import MXCIFQuadTree, QuadTree, TwoLayerQuadTree
from repro.rtree import RStarTree, RTree
from repro.stats import QueryStats

DOMAIN = Rect(0.0, 0.0, 1.0, 1.0)

#: six objects on a 4x4 grid (tile = 0.25) with known replica placement:
#: 0: A@(0,0)                      1: A@(0,0) C@(1,0)
#: 2: A@(0,0) B@(0,1)              3: A@(1,1) C@(2,1) B@(1,2) D@(2,2)
#: 4: A@(3,3)                      5: A@(1,1)
HAND_RECTS = [
    Rect(0.05, 0.05, 0.10, 0.10),
    Rect(0.20, 0.05, 0.30, 0.10),
    Rect(0.05, 0.20, 0.10, 0.30),
    Rect(0.30, 0.30, 0.60, 0.60),
    Rect(0.80, 0.80, 0.85, 0.85),
    Rect(0.26, 0.26, 0.45, 0.45),
]


@pytest.fixture(scope="module")
def hand_index():
    data = RectDataset.from_rects(HAND_RECTS)
    return TwoLayerGrid.build(data, partitions_per_dim=4, domain=DOMAIN), data


def brute_duplicates(index, window, result_ids):
    """Occurrences of each result id in the touched partitions, minus one."""
    parts = index.explain_partitions(window)
    if not parts:
        return 0
    stored = np.concatenate([ids for _, ids in parts])
    return int(sum((stored == i).sum() - 1 for i in np.asarray(result_ids)))


class TestHandBuiltGrid:
    def test_interior_window_scans_class_a_only(self, hand_index):
        index, _ = hand_index
        # Covers tiles (1,1)..(2,2): obj 3's C/B/D replicas are skipped
        # by Lemmas 1-2, so only the A partition of (1,1) is scanned.
        w = Rect(0.26, 0.26, 0.62, 0.62)
        plan = explain_window(index, w)
        plan.check()
        assert plan.tiles_by_class == {"A": 1}
        assert set(plan.result.tolist()) == {3, 5}
        # obj 3 is stored in all four touched tiles: 3 duplicates avoided.
        assert plan.duplicates_avoided == 3
        assert plan.duplicates_avoided == brute_duplicates(index, w, plan.result)
        assert plan.duplicates_eliminated == 0

    def test_first_column_window_scans_class_c(self, hand_index):
        index, _ = hand_index
        # Starts in tile (1,0): obj 1's C replica is scanned there (the
        # query's start tile scans every class), obj 3 comes from A@(1,1).
        w = Rect(0.30, 0.05, 0.60, 0.30)
        plan = explain_window(index, w)
        plan.check()
        assert plan.tiles_by_class == {"A": 1, "C": 1}
        assert set(plan.result.tolist()) == {1, 3, 5}
        assert plan.duplicates_avoided == 1
        assert plan.duplicates_avoided == brute_duplicates(index, w, plan.result)

    def test_first_row_window_scans_class_b(self, hand_index):
        index, _ = hand_index
        # Starts in tile (0,1): obj 2's B replica is scanned there; obj
        # 3's B replica at (1,2) is skipped (not the first row).
        w = Rect(0.05, 0.30, 0.30, 0.60)
        plan = explain_window(index, w)
        plan.check()
        assert plan.tiles_by_class == {"A": 1, "B": 1}
        assert set(plan.result.tolist()) == {2, 3, 5}
        assert plan.duplicates_avoided == 1
        assert plan.duplicates_avoided == brute_duplicates(index, w, plan.result)

    def test_single_tile_window_scans_class_d(self, hand_index):
        index, _ = hand_index
        # Entirely inside tile (2,2), where obj 3 has its D replica.
        w = Rect(0.55, 0.55, 0.62, 0.62)
        plan = explain_window(index, w)
        plan.check()
        assert plan.tiles_by_class == {"D": 1}
        assert plan.result.tolist() == [3]
        assert plan.duplicates_avoided == 0

    def test_full_window_counts_every_class_once(self, hand_index):
        index, _ = hand_index
        # The whole domain: only the start tile (0,0) scans B/C/D, so
        # every non-empty A partition is scanned and nothing else.
        w = Rect(0.0, 0.0, 1.0, 1.0)
        plan = explain_window(index, w)
        plan.check()
        assert plan.tiles_by_class == {"A": 3}  # (0,0), (1,1), (3,3)
        assert set(plan.result.tolist()) == {0, 1, 2, 3, 4, 5}
        assert plan.duplicates_avoided == brute_duplicates(index, w, plan.result)
        assert plan.duplicates_avoided == 5  # objs 1, 2: one extra; obj 3: three
        assert sum(plan.tiles_by_class.values()) == plan.tiles_visited

    def test_disk_accounting_matches_brute_force(self, hand_index):
        index, _ = hand_index
        q = DiskQuery(0.45, 0.45, 0.1)
        plan = explain_disk(index, q)
        plan.check()
        assert set(plan.result.tolist()) == {3, 5}
        assert plan.tiles_by_class == {"A": 1}
        assert plan.duplicates_avoided == brute_duplicates(
            index, q.mbr(), plan.result
        )
        assert plan.duplicates_avoided == 3

    def test_knn_accounting_matches_brute_force(self, hand_index):
        index, data = hand_index
        plan = explain_knn(index, data, 0.05, 0.05, k=2)
        plan.check()
        # obj 0 at distance 0; objs 1 and 2 tie at 0.15, id breaks it.
        assert plan.result.tolist() == [0, 1]
        kth = plan.query["kth_distance"]
        assert kth == pytest.approx(0.15)
        w = Rect(0.05 - kth, 0.05 - kth, 0.05 + kth, 0.05 + kth)
        assert plan.duplicates_avoided == brute_duplicates(index, w, plan.result)

    def test_join_accounting_matches_brute_force(self, hand_index):
        _, data_r = hand_index
        data_s = RectDataset.from_rects(
            [
                Rect(0.28, 0.28, 0.32, 0.32),
                Rect(0.55, 0.25, 0.80, 0.45),
                Rect(0.20, 0.28, 0.55, 0.35),
            ]
        )
        plan = explain_join(data_r, data_s, partitions_per_dim=4, domain=DOMAIN)
        plan.check()
        pairs = {tuple(p) for p in plan.result.tolist()}
        assert pairs == {(3, 0), (5, 0), (3, 1), (3, 2), (5, 2)}
        # Only (3, 2) has an intersection spanning two tiles: 1 duplicate.
        assert plan.duplicates_avoided == 1
        assert plan.duplicates_eliminated == 0
        # Class-combination labels come from the allowed combos only.
        for label in plan.tiles_by_class:
            a, b = label.split("·")
            assert a in "ABCD" and b in "ABCD"
        assert sum(plan.tiles_by_class.values()) == plan.tiles_visited

    def test_avoided_equals_one_layer_eliminated(self, hand_index):
        index, data = hand_index
        one = OneLayerGrid.build(
            data, partitions_per_dim=4, domain=DOMAIN, dedup="refpoint"
        )
        for w in (
            Rect(0.26, 0.26, 0.62, 0.62),
            Rect(0.30, 0.05, 0.60, 0.30),
            Rect(0.0, 0.0, 1.0, 1.0),
        ):
            two_plan = explain_window(index, w)
            one_plan = explain_window(one, w)
            assert set(two_plan.result.tolist()) == set(one_plan.result.tolist())
            # What the 1-layer grid had to eliminate, the 2-layer avoided.
            assert two_plan.duplicates_avoided == one_plan.duplicates_eliminated


FAMILIES = {
    "2-layer": lambda d: TwoLayerGrid.build(d, partitions_per_dim=8),
    "2-layer+": lambda d: TwoLayerPlusGrid.build(d, partitions_per_dim=8),
    "1-layer": lambda d: OneLayerGrid.build(d, partitions_per_dim=8),
    "quad-tree": QuadTree.build,
    "quad-tree-2layer": TwoLayerQuadTree.build,
    "kd-tree": KDTree.build,
    "kd-tree-2layer": TwoLayerKDTree.build,
    "R-tree": RTree.build,
    "R*-tree": RStarTree.build,
    "BLOCK": BlockIndex.build,
    "MXCIF": MXCIFQuadTree.build,
}


@pytest.fixture(scope="module")
def family_data():
    return generate_uniform_rects(1500, area=1e-3, seed=11)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_family_invariants(family, family_data):
    """Per-class scans sum to tiles visited; duplicate accounting matches
    brute force under each family's declared dedup strategy."""
    index = FAMILIES[family](family_data)
    w = Rect(0.3, 0.3, 0.62, 0.62)
    plan = explain_window(index, w)
    plan.check()
    assert sum(plan.tiles_by_class.values()) == plan.tiles_visited
    assert plan.result_count == plan.result.shape[0]
    expected = np.where(
        (family_data.xu >= w.xl)
        & (family_data.xl <= w.xu)
        & (family_data.yu >= w.yl)
        & (family_data.yl <= w.yu)
    )[0]
    assert sorted(plan.result.tolist()) == sorted(expected.tolist())
    dup = brute_duplicates(index, w, plan.result)
    if plan.dedup_strategy == "avoid":
        assert plan.duplicates_avoided == dup
        assert plan.duplicates_eliminated == 0
    elif plan.dedup_strategy == "none":
        assert dup == 0
        assert plan.duplicates_avoided == 0
        assert plan.duplicates_eliminated == 0
    else:
        assert plan.duplicates_eliminated == dup
        assert plan.duplicates_avoided == 0


class TestPlanPlumbing:
    def test_explain_stats_merge_ignores_class_scans(self):
        s = ExplainStats()
        s.visit_class("A")
        s.visit_class("A")
        s.comparisons = 5
        merged = QueryStats()
        merged.merge(s)
        assert merged.comparisons == 5
        assert s.class_scans == {"A": 2}

    def test_missing_introspection_raises(self):
        class Bare:
            def window_query(self, w, stats=None):
                return np.empty(0, dtype=np.int64)

        with pytest.raises(ObsError, match="explain_partitions"):
            explain_window(Bare(), Rect(0, 0, 1, 1))

    def test_collection_explain_roundtrip(self):
        data = generate_uniform_rects(800, area=1e-3, seed=5)
        col = SpatialCollection(data, partitions_per_dim=8)
        plan = col.explain(query=(0.2, 0.2, 0.5, 0.5))
        plan.check()
        assert plan.kind == "window"
        direct = col.window(0.2, 0.2, 0.5, 0.5)
        assert sorted(plan.result.tolist()) == sorted(direct.tolist())
        # explain=True on the query methods returns the same plan shape.
        plan2 = col.window(0.2, 0.2, 0.5, 0.5, explain=True)
        assert plan2.result_count == plan.result_count
        as_json = plan.to_json()
        assert '"tiles_by_class"' in as_json
        tree = plan.format_tree()
        assert "EXPLAIN window" in tree
        assert "secondary scans" in tree

    def test_collection_explain_exact_and_disk_and_knn(self):
        data = generate_uniform_rects(600, area=1e-3, seed=6)
        col = SpatialCollection(data, partitions_per_dim=8)
        exact = col.explain(query=Rect(0.2, 0.2, 0.5, 0.5), exact=True)
        exact.check()
        assert exact.kind == "window[exact]"
        disk = col.explain(query=DiskQuery(0.5, 0.5, 0.1))
        disk.check()
        assert disk.kind == "disk"
        knn = col.explain(knn=(0.5, 0.5, 5))
        knn.check()
        assert knn.kind == "knn"
        assert knn.result_count == 5

    def test_collection_explain_validates_arguments(self):
        from repro.errors import InvalidQueryError

        data = generate_uniform_rects(100, area=1e-3, seed=1)
        col = SpatialCollection(data, partitions_per_dim=4)
        with pytest.raises(InvalidQueryError):
            col.explain()
        with pytest.raises(InvalidQueryError):
            col.explain(query=Rect(0, 0, 1, 1), knn=(0.5, 0.5, 3))
        with pytest.raises(InvalidQueryError):
            col.explain(knn=(0.5, 0.5, 3), exact=True)
