"""Tests for the Lemma 1-4 machinery in :mod:`repro.core.selection`."""


from repro.core import ClassPlan, plan_tile
from repro.core.selection import plan_for_region
from repro.grid import CLASS_A, CLASS_B, CLASS_C, CLASS_D


def codes(plan) -> set[int]:
    return {cp.code for cp in plan.classes}


def by_code(plan) -> dict[int, ClassPlan]:
    return {cp.code: cp for cp in plan.classes}


class TestClassSelection:
    """Lemmas 1 and 2: which classes survive in which tile."""

    def test_start_corner_tile_scans_all(self):
        plan = plan_tile(2, 3, 2, 5, 3, 6)
        assert codes(plan) == {CLASS_A, CLASS_B, CLASS_C, CLASS_D}

    def test_first_row_not_first_column(self):
        # W starts before T in x only -> drop C and D (Lemma 1).
        plan = plan_tile(3, 3, 2, 5, 3, 6)
        assert codes(plan) == {CLASS_A, CLASS_B}

    def test_first_column_not_first_row(self):
        # W starts before T in y only -> drop B and D (Lemma 2).
        plan = plan_tile(2, 4, 2, 5, 3, 6)
        assert codes(plan) == {CLASS_A, CLASS_C}

    def test_interior_tile_scans_only_a(self):
        plan = plan_tile(3, 4, 2, 5, 3, 6)
        assert codes(plan) == {CLASS_A}

    def test_single_tile_query_scans_all(self):
        plan = plan_tile(2, 2, 2, 2, 2, 2)
        assert codes(plan) == {CLASS_A, CLASS_B, CLASS_C, CLASS_D}


class TestComparisonMinimisation:
    """Lemmas 3-4 and the Table II-style per-class comparison plans."""

    def test_interior_tile_needs_no_comparisons(self):
        plan = plan_tile(3, 4, 2, 5, 3, 6)
        (a,) = plan.classes
        assert a.n_comparisons == 0

    def test_first_tile_single_comparison_per_dim(self):
        # Corner start tile of a multi-tile query: one comparison per dim.
        plan = plan_tile(2, 3, 2, 5, 3, 6)
        for cp in plan.classes:
            assert cp.xu_ge and cp.yu_ge
            assert not cp.xl_le and not cp.yl_le
            assert cp.n_comparisons == 2

    def test_last_column_comparison_only_for_inside_starters(self):
        # W ends in this column; classes starting inside x need xl<=W.xu.
        plan = plan_tile(5, 4, 2, 5, 3, 6)
        plans = by_code(plan)
        assert plans[CLASS_A].xl_le
        assert plans[CLASS_A].n_comparisons == 1

    def test_single_column_query_class_c_saves_comparison(self):
        # ix0 == ix1: classes C/D never need xl <= W.xu (automatic).
        plan = plan_tile(2, 3, 2, 2, 3, 6)
        plans = by_code(plan)
        assert plans[CLASS_A].xl_le and plans[CLASS_A].xu_ge
        assert plans[CLASS_C].xu_ge and not plans[CLASS_C].xl_le
        assert plans[CLASS_D].xu_ge and not plans[CLASS_D].xl_le

    def test_corollary_1_at_most_two_comparisons(self):
        # For queries spanning >= 2 tiles per dimension, every plan needs
        # at most one comparison per dimension (Corollary 1).
        for ix in range(2, 6):
            for iy in range(3, 7):
                plan = plan_tile(ix, iy, 2, 5, 3, 6)
                for cp in plan.classes:
                    assert cp.n_comparisons <= 2
                    x_comps = int(cp.xu_ge) + int(cp.xl_le)
                    y_comps = int(cp.yu_ge) + int(cp.yl_le)
                    assert x_comps <= 1 and y_comps <= 1

    def test_single_tile_query_at_most_four(self):
        plan = plan_tile(0, 0, 0, 0, 0, 0)
        for cp in plan.classes:
            assert cp.n_comparisons <= 4

    def test_plans_are_memoised(self):
        assert plan_tile(3, 4, 2, 5, 3, 6) is plan_tile(9, 9, 1, 20, 1, 20)


class TestPlanForRegion:
    def test_matches_grid_plan_semantics(self):
        # A region identical to a grid tile must produce the same plan.
        from repro.grid import GridPartitioner
        from repro.geometry import Rect

        g = GridPartitioner(4, 4)
        w = Rect(0.3, 0.3, 0.8, 0.9)
        ix0, ix1, iy0, iy1 = g.tile_range_for_window(w)
        for iy in range(iy0, iy1 + 1):
            for ix in range(ix0, ix1 + 1):
                tile = g.tile_rect(ix, iy)
                grid_plan = plan_tile(ix, iy, ix0, ix1, iy0, iy1)
                region_plan = plan_for_region(
                    w.xl, w.yl, w.xu, w.yu, tile.xl, tile.yl, tile.xu, tile.yu
                )
                assert codes(grid_plan) == codes(region_plan)

    def test_window_covering_region(self):
        plan = plan_for_region(0.0, 0.0, 1.0, 1.0, 0.4, 0.4, 0.6, 0.6)
        assert codes(plan) == {CLASS_A}
        (a,) = plan.classes
        assert a.n_comparisons == 0

    def test_window_inside_region(self):
        plan = plan_for_region(0.45, 0.45, 0.55, 0.55, 0.4, 0.4, 0.6, 0.6)
        assert codes(plan) == {CLASS_A, CLASS_B, CLASS_C, CLASS_D}
        plans = by_code(plan)
        assert plans[CLASS_A].n_comparisons == 4
        assert plans[CLASS_D].n_comparisons == 2  # only the >= tests
