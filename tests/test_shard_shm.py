"""Shared-memory arena lifecycle (repro.shard.shm)."""

import os

import numpy as np
import pytest

from repro.errors import IndexStateError
from repro.shard.shm import attach_arena, publish_arena, unlink_arena


def sample_arrays():
    return {
        "offsets": np.arange(9, dtype=np.int64),
        "xl": np.linspace(0, 1, 7),
        "ids": np.array([5, 3, 9], dtype=np.int64),
        "fast_q": np.arange(12, dtype=np.float64).reshape(6, 2),
        "empty": np.empty(0, dtype=np.float64),
    }


class TestRoundtrip:
    def test_attach_reproduces_every_array(self):
        arrays = sample_arrays()
        seg, manifest = publish_arena(arrays)
        try:
            seg2, views = attach_arena(manifest)
            try:
                assert set(views) == set(arrays)
                for name, arr in arrays.items():
                    np.testing.assert_array_equal(views[name], arr)
                    assert views[name].dtype == arr.dtype
                    assert views[name].shape == arr.shape
            finally:
                seg2.close()
        finally:
            unlink_arena(seg)

    def test_arrays_are_64_byte_aligned(self):
        seg, manifest = publish_arena(sample_arrays())
        try:
            for spec in manifest["arrays"].values():
                assert spec["offset"] % 64 == 0
        finally:
            unlink_arena(seg)

    def test_manifest_is_plain_picklable_data(self):
        import pickle

        seg, manifest = publish_arena(sample_arrays())
        try:
            clone = pickle.loads(pickle.dumps(manifest))
            assert clone == manifest
        finally:
            unlink_arena(seg)

    def test_views_are_read_only(self):
        seg, manifest = publish_arena(sample_arrays())
        try:
            seg2, views = attach_arena(manifest)
            try:
                with pytest.raises((ValueError, RuntimeError)):
                    views["ids"][0] = 7
            finally:
                seg2.close()
        finally:
            unlink_arena(seg)

    def test_non_contiguous_rejected(self):
        with pytest.raises(IndexStateError):
            publish_arena({"bad": np.arange(16, dtype=np.float64)[::2]})


class TestLifecycle:
    def test_unlink_is_idempotent_and_none_safe(self):
        seg, _ = publish_arena(sample_arrays())
        unlink_arena(seg)
        unlink_arena(seg)  # already gone: still fine
        unlink_arena(None)

    def test_segment_gone_from_dev_shm_after_unlink(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        seg, manifest = publish_arena(sample_arrays())
        name = manifest["segment"].lstrip("/")
        assert any(name in entry for entry in os.listdir("/dev/shm"))
        unlink_arena(seg)
        assert not any(name in entry for entry in os.listdir("/dev/shm"))

    def test_attacher_close_does_not_unlink(self):
        # bpo-38119 discipline: an attaching process must be able to
        # come and go without tearing the arena down under the creator
        arrays = sample_arrays()
        seg, manifest = publish_arena(arrays)
        try:
            seg2, views = attach_arena(manifest)
            seg2.close()
            seg3, views3 = attach_arena(manifest)
            try:
                np.testing.assert_array_equal(views3["ids"], arrays["ids"])
            finally:
                seg3.close()
        finally:
            unlink_arena(seg)
