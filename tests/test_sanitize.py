"""The REPRO_SANITIZE runtime sanitizer catches corrupted storage state.

Three layers under test: structural validation of the packed CSR base
(``check_packed_store``), delta/base disjointness and publish-time
freezing (``check_snapshot``), and the sampled window-query cross-check
against a naive per-tile scan (``on_window_query``).  Each corruption
must surface as a :class:`SanitizerError` naming the failed check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitize import (
    SanitizerError,
    check_delta_disjoint,
    check_packed_store,
    check_snapshot,
    enabled,
    freeze_array,
    naive_window_ids,
    on_window_query,
    verify_window_result,
)
from repro.core import TwoLayerGrid
from repro.datasets import generate_uniform_rects
from repro.geometry import Rect
from repro.grid import OneLayerGrid
from repro.grid.storage import PackedStore, TileTable


def small_store(n_classes: int = 4) -> PackedStore:
    """8 rows spread over 12 groups (= 3 tiles x 4 classes, or 12 tiles
    when n_classes=1 — 12 is divisible by either)."""
    rng = np.random.default_rng(5)
    n = 8
    keys = np.array([0, 0, 1, 4, 4, 5, 8, 11], dtype=np.int64)
    xl = rng.random(n)
    yl = rng.random(n)
    return PackedStore.from_rows(
        12, n_classes, keys, xl, yl, xl + 0.1, yl + 0.1,
        np.arange(n, dtype=np.int64),
    )


def thaw(store: PackedStore) -> None:
    """Re-enable writes on frozen columns so tests can corrupt them."""
    for name in ("offsets", "xl", "yl", "xu", "yu", "ids"):
        getattr(store, name).flags.writeable = True


def expect_check(name: str):
    return pytest.raises(SanitizerError, match=name)


class TestCheckPackedStore:
    def test_valid_store_passes(self):
        check_packed_store(small_store(), "test")

    def test_non_monotone_offsets(self):
        store = small_store()
        store.offsets[2] = store.offsets[1] + 5
        store.offsets[3] = 1
        with expect_check("offsets_monotone") as exc:
            check_packed_store(store, "test")
        assert exc.value.check == "offsets_monotone"
        assert exc.value.where == "test"
        assert "group" in exc.value.details

    def test_offsets_not_covering_rows(self):
        store = small_store()
        store.offsets[-1] = store.ids.shape[0] + 3
        # keep monotonicity so the tail check is the one that fires
        with expect_check("offsets_cover_rows"):
            check_packed_store(store, "test")

    def test_offsets_bad_origin(self):
        store = small_store()
        store.offsets[0] = -1
        with expect_check("offsets_origin"):
            check_packed_store(store, "test")

    def test_column_length_mismatch(self):
        store = small_store()
        store.xl = store.xl[:-1]
        with expect_check("column_length") as exc:
            check_packed_store(store, "test")
        assert exc.value.details["column"] == "xl"

    def test_tombstone_bitmap_wrong_length(self):
        store = small_store()
        store.mark_dead(np.array([0], dtype=np.int64))
        store.dead = store.dead[:-1]
        with expect_check("tombstone_bitmap_bounds"):
            check_packed_store(store, "test")

    def test_tombstone_total_mismatch(self):
        store = small_store()
        store.mark_dead(np.array([0, 3], dtype=np.int64))
        store.n_dead = 1
        with expect_check("tombstone_total"):
            check_packed_store(store, "test")

    def test_tombstone_per_group_mismatch(self):
        store = small_store()
        store.mark_dead(np.array([2], dtype=np.int64))
        # move the recorded count to the wrong group
        store.dead_per_group = np.roll(store.dead_per_group, 1)
        with expect_check("tombstone_group_counts"):
            check_packed_store(store, "test")

    def test_legit_tombstones_pass(self):
        store = small_store()
        store.mark_dead(np.array([1, 4, 7], dtype=np.int64))
        check_packed_store(store, "test")


class TestDeltaDisjoint:
    def test_disjoint_overlay_passes(self):
        store = small_store()
        tiles = {0: [None, TileTable(ids=np.array([100], dtype=np.int64),
                                     xl=np.array([0.1]), yl=np.array([0.1]),
                                     xu=np.array([0.2]), yu=np.array([0.2])),
                     None, None]}
        check_delta_disjoint(store, tiles, "test")

    def test_overlapping_id_fails(self):
        store = small_store()
        # base row id 0 lives in group key 0 = tile 0, class 0
        dup = TileTable(
            np.array([0.1]), np.array([0.1]),
            np.array([0.2]), np.array([0.2]),
            np.array([0], dtype=np.int64),
        )
        tiles = {0: [dup, None, None, None]}
        with expect_check("delta_base_disjoint") as exc:
            check_delta_disjoint(store, tiles, "test")
        assert exc.value.details["tile"] == 0
        assert 0 in exc.value.details["ids"]

    def test_one_layer_single_table_entries(self):
        store = small_store(n_classes=1)
        dup = TileTable(
            np.array([0.1]), np.array([0.1]),
            np.array([0.2]), np.array([0.2]),
            np.array([0], dtype=np.int64),
        )
        with expect_check("delta_base_disjoint"):
            check_delta_disjoint(store, {0: dup}, "test", n_classes=1)


class TestFreeze:
    def test_freeze_array_blocks_writes(self):
        arr = np.zeros(4)
        freeze_array(arr)
        with pytest.raises(ValueError):
            arr[0] = 1.0

    def test_freeze_none_is_noop(self):
        freeze_array(None)

    def test_check_snapshot_freezes_base_columns(self):
        data = generate_uniform_rects(300, area=1e-3, seed=11)
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        check_snapshot(index, "test")
        with pytest.raises(ValueError):
            index._store.ids[0] = 99

    def test_check_snapshot_legacy_backend_is_noop(self):
        data = generate_uniform_rects(100, area=1e-3, seed=11)
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="legacy")
        check_snapshot(index, "test")


class TestWindowCrossCheck:
    @pytest.fixture(scope="class")
    def setup(self):
        data = generate_uniform_rects(600, area=1e-3, seed=23)
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        window = Rect(0.2, 0.2, 0.6, 0.6)
        return index, window

    def test_correct_result_passes(self, setup):
        index, window = setup
        verify_window_result(index, window, index.window_query(window))

    def test_naive_matches_on_one_layer(self):
        data = generate_uniform_rects(400, area=1e-3, seed=29)
        index = OneLayerGrid.build(data, partitions_per_dim=8)
        window = Rect(0.3, 0.3, 0.7, 0.7)
        got = np.sort(index.window_query(window))
        assert np.array_equal(got, naive_window_ids(index, window))

    def test_missing_id_fails(self, setup):
        index, window = setup
        ids = index.window_query(window)
        assert ids.shape[0] > 1
        with expect_check("window_result_parity") as exc:
            verify_window_result(index, window, ids[1:])
        assert exc.value.details["missing"]

    def test_extra_id_fails(self, setup):
        index, window = setup
        ids = index.window_query(window)
        bogus = np.append(ids, np.int64(10_000_000))
        with expect_check("window_result_parity") as exc:
            verify_window_result(index, window, bogus)
        assert 10_000_000 in exc.value.details["extra"]

    def test_duplicate_ids_fail(self, setup):
        index, window = setup
        ids = index.window_query(window)
        with expect_check("window_dedup"):
            verify_window_result(index, window, np.append(ids, ids[:1]))


class TestEnvGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not enabled()

    def test_enabled_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert enabled()

    def test_build_validates_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        data = generate_uniform_rects(200, area=1e-3, seed=3)
        # a clean build passes through the from_rows hook untripped
        TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")

    def test_corrupted_store_caught_at_query_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv("REPRO_SANITIZE_SAMPLE", "1")
        data = generate_uniform_rects(300, area=1e-3, seed=7)
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        store = index._store
        thaw(store)
        store.ids[:] = store.ids[0]  # smash the id column: mass duplicates
        with pytest.raises(SanitizerError):
            index.window_query(Rect(0.0, 0.0, 1.0, 1.0))

    def test_sampled_hook_skips_between_samples(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv("REPRO_SANITIZE_SAMPLE", "1000000")
        data = generate_uniform_rects(300, area=1e-3, seed=7)
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        # wrong ids, but the sample period means this call is not checked
        on_window_query(index, Rect(0.0, 0.0, 1.0, 1.0), np.array([1, 1]))

    def test_sanitized_queries_match_unsanitized(self, monkeypatch):
        data = generate_uniform_rects(500, area=1e-3, seed=13)
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        window = Rect(0.1, 0.4, 0.5, 0.9)
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = index.window_query(window)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv("REPRO_SANITIZE_SAMPLE", "1")
        checked = index.window_query(window)
        assert np.array_equal(np.sort(plain), np.sort(checked))
