"""Live-telemetry collectors: heat accumulator, trace ring, slow log.

Unit tests for :mod:`repro.obs.live` — decay math, the top-K/snapshot
views, the buffered :class:`HeatStats` hook path (including parity
between the packed and legacy grid backends, whose kernels feed the
hooks from different call sites), and the bounded rings.
"""

import numpy as np
import pytest

from repro.datasets import generate_uniform_rects
from repro.errors import ObsError
from repro.geometry.mbr import Rect
from repro.grid.one_layer import OneLayerGrid
from repro.core.two_layer import TwoLayerGrid
from repro.obs.live import (
    HeatStats,
    LiveTelemetry,
    SlowQueryLog,
    TileHeatAccumulator,
    TraceRing,
)


class TestTileHeatAccumulator:
    def test_record_and_views(self):
        heat = TileHeatAccumulator(4, 4, half_life_s=0.0)
        heat.record(5, scanned=10, present=25)
        heat.record(5, scanned=2, present=2)
        heat.record(9, scanned=1, present=1)
        assert heat.total_visits == 3
        top = heat.top(k=1)
        assert top[0]["tile"] == 5
        assert top[0]["ix"] == 1 and top[0]["iy"] == 1
        assert top[0]["scans"] == 2.0
        assert top[0]["rows"] == 12.0
        assert top[0]["avoided"] == 15.0  # present(27) - rows(12)
        snap = heat.snapshot(top=10)
        assert snap["nx"] == snap["ny"] == 4
        assert snap["tiles_hot"] == 2
        assert snap["total_scans"] == 3.0
        assert snap["total_rows"] == 13.0
        assert snap["total_avoided"] == 15.0
        assert [t["tile"] for t in snap["tiles"]] == [5, 9]

    def test_record_many_counts_only_visited(self):
        heat = TileHeatAccumulator(4, 4, half_life_s=0.0)
        tids = np.array([0, 1, 2], dtype=np.int64)
        scanned = np.array([3, 0, 1], dtype=np.int64)
        present = np.array([5, 0, 1], dtype=np.int64)
        heat.record_many(tids, scanned, present)
        # tile 1 had no live rows -> not a visit
        assert heat.total_visits == 2
        assert heat.scans[0] == 1.0 and heat.scans[1] == 0.0
        assert heat.rows[0] == 3.0 and heat.present[0] == 5.0

    def test_decay_halves_counters(self, monkeypatch):
        clock = [1000.0]
        monkeypatch.setattr("repro.obs.live.time.monotonic", lambda: clock[0])
        heat = TileHeatAccumulator(2, 2, half_life_s=10.0)
        heat.record(0, scanned=8, present=8)
        clock[0] += 10.0  # exactly one half-life
        heat.record(1, scanned=1, present=1)
        assert heat.scans[0] == pytest.approx(0.5)
        assert heat.rows[0] == pytest.approx(4.0)
        assert heat.scans[1] == pytest.approx(1.0)  # recorded after decay
        # total_visits is monotonic, never decayed
        assert heat.total_visits == 2

    def test_decay_is_throttled(self, monkeypatch):
        clock = [0.0]
        monkeypatch.setattr("repro.obs.live.time.monotonic", lambda: clock[0])
        heat = TileHeatAccumulator(2, 2, half_life_s=64.0)  # throttle = 1s
        heat.record(0, scanned=1, present=1)
        clock[0] += 0.5  # below half_life_s / 64
        heat.record(0, scanned=1, present=1)
        assert heat.scans[0] == pytest.approx(2.0)  # no decay applied yet

    def test_reset(self):
        heat = TileHeatAccumulator(2, 2)
        heat.record(0, 1, 1)
        heat.reset()
        assert heat.total_visits == 0
        assert heat.top() == []
        assert heat.snapshot()["tiles_hot"] == 0

    def test_validation(self):
        with pytest.raises(ObsError):
            TileHeatAccumulator(0, 4)
        with pytest.raises(ObsError):
            TileHeatAccumulator(4, 4, half_life_s=-1.0)


class TestHeatStats:
    def test_scalar_visits_buffer_until_flush(self):
        heat = TileHeatAccumulator(4, 4, half_life_s=0.0)
        stats = HeatStats(heat)
        stats.visit_tile(3, 7, 9)
        stats.visit_tile(3, 1, 1)
        assert heat.total_visits == 0  # buffered, not yet applied
        stats.flush()
        assert heat.total_visits == 2
        assert heat.scans[3] == 2.0
        assert heat.rows[3] == 8.0
        assert heat.present[3] == 10.0
        stats.flush()  # idempotent on empty buffer
        assert heat.total_visits == 2

    def test_vector_visits_apply_immediately(self):
        heat = TileHeatAccumulator(4, 4, half_life_s=0.0)
        stats = HeatStats(heat)
        stats.visit_tiles(
            np.array([1, 2], dtype=np.int64),
            np.array([4, 5], dtype=np.int64),
            np.array([6, 7], dtype=np.int64),
        )
        assert heat.total_visits == 2
        assert heat.rows[2] == 5.0

    def test_auto_flush_at_capacity(self):
        heat = TileHeatAccumulator(2, 2, half_life_s=0.0)
        stats = HeatStats(heat)
        from repro.obs import live as live_mod

        for _ in range(live_mod._FLUSH_EVERY):
            stats.visit_tile(0, 1, 1)
        assert heat.total_visits == live_mod._FLUSH_EVERY  # flushed itself

    def test_query_counters_still_accumulate(self):
        # HeatStats must remain a fully functional QueryStats
        heat = TileHeatAccumulator(8, 8, half_life_s=0.0)
        stats = HeatStats(heat)
        data = generate_uniform_rects(500, area=1e-5, seed=3)
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        index.window_query(Rect(0.2, 0.2, 0.6, 0.6), stats)
        assert stats.partitions_visited > 0
        assert stats.rects_scanned > 0

    @pytest.mark.parametrize("cls", [TwoLayerGrid, OneLayerGrid])
    def test_backend_parity(self, cls):
        """Packed and legacy kernels feed identical heat totals."""
        data = generate_uniform_rects(800, area=1e-5, seed=11)
        windows = [
            Rect(0.1, 0.1, 0.4, 0.4),
            Rect(0.5, 0.5, 0.9, 0.9),
            Rect(0.0, 0.0, 1.0, 1.0),
        ]
        totals = {}
        for storage in ("packed", "legacy"):
            index = cls.build(data, partitions_per_dim=8, storage=storage)
            heat = TileHeatAccumulator(8, 8, half_life_s=0.0)
            stats = HeatStats(heat)
            for w in windows:
                index.window_query(w, stats)
            stats.flush()
            totals[storage] = (
                heat.scans.copy(),
                heat.rows.copy(),
                heat.present.copy(),
            )
        for a, b in zip(totals["packed"], totals["legacy"]):
            np.testing.assert_allclose(a, b)


class TestTraceRing:
    def test_bounded_newest_first(self):
        ring = TraceRing(capacity=3)
        for i in range(5):
            ring.append({"trace": f"t{i}"})
        assert ring.total == 5
        assert len(ring) == 3
        assert [r["trace"] for r in ring.last(2)] == ["t4", "t3"]
        assert [r["trace"] for r in ring.last(10)] == ["t4", "t3", "t2"]
        assert ring.last(0) == []

    def test_validation(self):
        with pytest.raises(ObsError):
            TraceRing(capacity=0)


class TestSlowQueryLog:
    def test_threshold_and_bound(self):
        log = SlowQueryLog(capacity=2, threshold_ms=10.0)
        assert log.maybe_capture({"latency_ms": 5.0}) is False
        assert log.maybe_capture({"latency_ms": 10.0}) is True
        assert log.maybe_capture({"latency_ms": 50.0, "verb": "disk"}) is True
        assert log.maybe_capture({"latency_ms": 99.0}) is True
        assert log.total == 3
        assert len(log) == 2
        entries = log.entries()
        assert entries[0]["latency_ms"] == 99.0
        # captured entries are copies with a lazy-explain slot
        assert entries[0]["explain"] is None

    def test_capture_copies_record(self):
        log = SlowQueryLog(capacity=4, threshold_ms=0.0)
        record = {"latency_ms": 1.0, "verb": "window"}
        log.maybe_capture(record)
        record["verb"] = "mutated"
        assert log.entries()[0]["verb"] == "window"

    def test_validation(self):
        with pytest.raises(ObsError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ObsError):
            SlowQueryLog(threshold_ms=-1.0)


class TestLiveTelemetry:
    def test_finish_routes_to_ring_and_slowlog(self):
        tel = LiveTelemetry(4, 4, slowlog_ms=10.0)
        tel.finish({"trace": "a", "latency_ms": 1.0})
        tel.finish({"trace": "b", "latency_ms": 20.0})
        assert tel.traces.total == 2
        assert tel.slowlog.total == 1
        assert tel.slowlog.entries()[0]["trace"] == "b"

    def test_heat_snapshot_flushes_pending_visits(self):
        tel = LiveTelemetry(4, 4)
        tel.stats.visit_tile(2, 3, 3)
        snap = tel.heat_snapshot(top=5)
        assert snap["total_visits"] == 1
        assert snap["tiles"][0]["tile"] == 2
