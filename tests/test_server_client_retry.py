"""Client overloaded-retry behaviour (opt-in ``retries=``).

A scripted stdlib TCP server makes the admission-control dance
deterministic: reject the first N attempts with ``overloaded`` (carrying
a ``retry_after_ms`` hint), then answer.  A second test saturates a real
:class:`SpatialQueryService` queue and checks a retrying client rides
out the burst while a non-retrying one surfaces the rejection.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.api import SpatialCollection
from repro.datasets import generate_uniform_rects
from repro.server import ServerConfig, SpatialQueryService
from repro.server.client import (
    OverloadedError,
    ShuttingDownError,
    SpatialClient,
)


class ScriptedServer:
    """Accepts one connection; rejects ``n_overloads`` requests, then serves."""

    def __init__(self, n_overloads, retry_after_ms=5, final_code=None):
        self.n_overloads = n_overloads
        self.retry_after_ms = retry_after_ms
        self.final_code = final_code  # None = success frame
        self.seen_ids = []
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._sock.accept()
        with conn, conn.makefile("rb") as rfile:
            rejected = 0
            while True:
                line = rfile.readline()
                if not line:
                    return
                req = json.loads(line)
                self.seen_ids.append(req["id"])
                if rejected < self.n_overloads:
                    rejected += 1
                    frame = {
                        "id": req["id"],
                        "ok": False,
                        "error": {
                            "code": "overloaded",
                            "message": "scripted rejection",
                            "retry_after_ms": self.retry_after_ms,
                        },
                    }
                elif self.final_code is not None:
                    frame = {
                        "id": req["id"],
                        "ok": False,
                        "error": {
                            "code": self.final_code,
                            "message": "scripted",
                        },
                    }
                else:
                    frame = {"id": req["id"], "ok": True, "result": {"pong": True}}
                conn.sendall((json.dumps(frame) + "\n").encode())

    def close(self):
        self._sock.close()
        self._thread.join(timeout=5)


class TestScriptedRetries:
    def test_default_raises_on_first_overload(self):
        srv = ScriptedServer(n_overloads=1)
        try:
            with SpatialClient("127.0.0.1", srv.port, timeout=5) as cli:
                with pytest.raises(OverloadedError) as exc:
                    cli.call("ping")
                assert exc.value.retry_after_ms == 5
                assert cli.last_retries == 0
        finally:
            srv.close()

    def test_retries_ride_out_overloads_with_fresh_ids(self):
        srv = ScriptedServer(n_overloads=2)
        try:
            with SpatialClient(
                "127.0.0.1", srv.port, timeout=5, retries=3
            ) as cli:
                t0 = time.monotonic()
                assert cli.call("ping") == {"pong": True}
                assert cli.last_retries == 2
                # each attempt is a brand-new request id
                assert srv.seen_ids == [1, 2, 3]
                # jittered backoff stays within the hint (plus slack)
                assert time.monotonic() - t0 < 1.0
        finally:
            srv.close()

    def test_exhausted_retries_raise(self):
        srv = ScriptedServer(n_overloads=10)
        try:
            with SpatialClient(
                "127.0.0.1", srv.port, timeout=5, retries=2
            ) as cli:
                with pytest.raises(OverloadedError):
                    cli.call("ping")
                assert cli.last_retries == 2
                assert srv.seen_ids == [1, 2, 3]
        finally:
            srv.close()

    def test_shutting_down_is_never_retried(self):
        srv = ScriptedServer(n_overloads=0, final_code="shutting_down")
        try:
            with SpatialClient(
                "127.0.0.1", srv.port, timeout=5, retries=5
            ) as cli:
                with pytest.raises(ShuttingDownError):
                    cli.call("ping")
                assert srv.seen_ids == [1]
        finally:
            srv.close()

    def test_backoff_bounded_by_cap_and_hint(self):
        cli = SpatialClient.__new__(SpatialClient)  # no connection needed
        cli.max_retry_wait_s = 0.05
        for _ in range(50):
            assert 0.0 <= cli._backoff_s(10_000) <= 0.05
            assert 0.0 <= cli._backoff_s(1) <= 0.001
            assert 0.0 <= cli._backoff_s(None) <= 0.02


class TestSaturatedService:
    def test_retrying_client_rides_out_a_saturated_queue(self):
        data = generate_uniform_rects(400, area=1e-5, seed=17)
        col = SpatialCollection.from_dataset(data, partitions_per_dim=16)
        config = ServerConfig(queue_depth=2, max_batch=1, coalesce_ms=25.0)

        started = threading.Event()
        stop = threading.Event()
        box = {}

        def serve():
            async def main():
                service = SpatialQueryService(col.index, col.data, config)
                await service.start()
                box["addr"] = service.address
                started.set()
                while not stop.is_set():
                    await asyncio.sleep(0.01)
                await service.shutdown()

            asyncio.run(main())

        t = threading.Thread(target=serve)
        t.start()
        stop_flood = threading.Event()

        def flood(host, port):
            # a sustained pipelined firehose: keep ~24 requests in
            # flight against the 2-deep queue until told to stop, so
            # the bare/retrying clients race a *saturated* server
            # rather than the tail of a one-shot burst
            cli = SpatialClient(host, port, timeout=10)
            try:
                inflight = 0
                while not stop_flood.is_set():
                    while inflight < 24:
                        cli.send_raw(
                            "count", {"xl": 0, "yl": 0, "xu": 1, "yu": 1}
                        )
                        inflight += 1
                    for _ in range(12):
                        cli.recv_raw()
                        inflight -= 1
            finally:
                cli.close()

        try:
            assert started.wait(5.0)
            host, port = box["addr"]
            flood_t = threading.Thread(target=flood, args=(host, port))
            flood_t.start()
            try:
                # without retries the rejection surfaces...
                overloaded = 0
                with SpatialClient(host, port, timeout=10) as bare:
                    for _ in range(50):
                        try:
                            bare.ping()
                        except OverloadedError as exc:
                            assert exc.retry_after_ms is not None
                            overloaded += 1
                            if overloaded >= 3:
                                break
                        time.sleep(0.005)
                assert overloaded > 0, "queue never saturated; tune the flood"
                # ...while a retrying client lands every request
                with SpatialClient(
                    host, port, timeout=10, retries=400
                ) as cli:
                    for _ in range(5):
                        assert cli.ping()["pong"] is True
            finally:
                stop_flood.set()
                flood_t.join(timeout=10)
        finally:
            stop.set()
            t.join()
