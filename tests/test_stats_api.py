"""Tests for QueryStats and the public package surface."""

import pytest

import repro
from repro.stats import QueryStats


class TestQueryStats:
    def test_defaults_zero(self):
        stats = QueryStats()
        assert all(v == 0 for v in stats.as_dict().values())

    def test_reset(self):
        stats = QueryStats(comparisons=5, rects_scanned=10)
        stats.reset()
        assert stats.comparisons == 0 and stats.rects_scanned == 0

    def test_merge(self):
        a = QueryStats(comparisons=5, dedup_checks=1)
        b = QueryStats(comparisons=2, refinement_tests=4)
        a.merge(b)
        assert a.comparisons == 7
        assert a.dedup_checks == 1
        assert a.refinement_tests == 4

    def test_str_shows_nonzero_only(self):
        stats = QueryStats(comparisons=3)
        assert "comparisons=3" in str(stats)
        assert "dedup_checks" not in str(stats)

    def test_as_dict_keys_stable(self):
        keys = set(QueryStats().as_dict())
        assert {
            "partitions_visited",
            "rects_scanned",
            "comparisons",
            "duplicates_generated",
            "dedup_checks",
            "refinement_tests",
            "refinements_avoided",
            "secondary_filter_comparisons",
        } == keys

    def test_add_returns_new_object(self):
        a = QueryStats(comparisons=5, dedup_checks=1)
        b = QueryStats(comparisons=2, refinement_tests=4)
        c = a + b
        assert c.comparisons == 7
        assert c.dedup_checks == 1
        assert c.refinement_tests == 4
        # Operands untouched.
        assert a.comparisons == 5 and b.comparisons == 2
        assert c is not a and c is not b

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            QueryStats() + 3

    def test_iadd_merges_in_place(self):
        a = QueryStats(comparisons=5)
        original = a
        a += QueryStats(comparisons=2, rects_scanned=9)
        assert a is original
        assert a.comparisons == 7 and a.rects_scanned == 9

    def test_snapshot_is_independent(self):
        a = QueryStats(comparisons=5)
        snap = a.snapshot()
        a.comparisons += 10
        assert snap.comparisons == 5
        assert a.comparisons == 15

    def test_diff_gives_per_query_delta(self):
        a = QueryStats(comparisons=5, rects_scanned=100)
        before = a.snapshot()
        a.comparisons += 3
        a.rects_scanned += 40
        delta = a.diff(before)
        assert delta.comparisons == 3
        assert delta.rects_scanned == 40
        assert delta.partitions_visited == 0


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_index_classes_exported(self):
        assert repro.TwoLayerGrid is not None
        assert repro.TwoLayerPlusGrid is not None
        assert repro.OneLayerGrid is not None
        assert repro.QuadTree is not None
        assert repro.RTree is not None
        assert repro.RStarTree is not None
        assert repro.BlockIndex is not None
        assert repro.MXCIFQuadTree is not None

    def test_error_hierarchy(self):
        assert issubclass(repro.InvalidRectError, repro.ReproError)
        assert issubclass(repro.InvalidRectError, ValueError)
        assert issubclass(repro.IndexStateError, RuntimeError)

    def test_quickstart_snippet_runs(self):
        # The README / module docstring example must work verbatim.
        from repro import Rect, TwoLayerGrid
        from repro.datasets import generate_uniform_rects

        data = generate_uniform_rects(10_000, area=1e-6, seed=7)
        index = TwoLayerGrid.build(data, partitions_per_dim=64)
        results = index.window_query(Rect(0.2, 0.2, 0.3, 0.3))
        assert results.shape[0] == len(data.brute_force_window(Rect(0.2, 0.2, 0.3, 0.3)))
