"""The columnar on-disk container and the persistence contract around it.

Covers the raw format (header/section-table/alignment/version gates),
round-trips across every index class x save format x load backend on a
dataset engineered to hit classes A-D, empty tiles and domain-edge
rects, the ``writeable=False`` snapshot guarantee, the dirty-save
(``if_dirty``) contract, the 2-layer+ persisted sort orders, the
compiled-kernel fallback knobs plus direct parity of the pure-python
kernel bodies, the file-backed shard arena, and — the tentpole claim —
that a memmap load does not page slab bytes in until the first query
(asserted against ``/proc/self/smaps``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import TwoLayerGrid, TwoLayerPlusGrid, load_index, save_index
from repro.core import format as container
from repro.core.persistence import (
    IF_DIRTY_MODES,
    SAVE_FORMATS,
    load_collection,
    save_collection,
)
from repro.datasets import (
    DiskQuery,
    RectDataset,
    generate_uniform_rects,
    generate_window_queries,
)
from repro.errors import DatasetError, IndexStateError
from repro.geometry import Rect
from repro.grid import OneLayerGrid
from repro.grid import kernels as _kernels
from repro.stats import QueryStats

from conftest import ids_set

GRID_CLASSES = (OneLayerGrid, TwoLayerGrid, TwoLayerPlusGrid)
STORAGES = ("packed", "legacy")


@pytest.fixture(scope="module")
def data() -> RectDataset:
    """~300 uniform rects plus hand-placed ones forcing every class.

    On the 8x8 grids the tests build (tile = 0.125), the handmade tail
    guarantees class-A (tiny), class-B (tall), class-C (wide) and
    class-D (both) objects, rects flush against all four domain edges,
    a degenerate point and a domain-covering rect — while the sparse
    uniform head leaves plenty of tiles empty.
    """
    base = generate_uniform_rects(300, area=1e-4, seed=211)
    hand = np.array(
        [
            # xl,    yl,    xu,    yu
            [0.30, 0.30, 0.32, 0.32],  # A: inside one tile
            [0.30, 0.05, 0.32, 0.60],  # B: spans tiles in y
            [0.05, 0.30, 0.60, 0.32],  # C: spans tiles in x
            [0.55, 0.55, 0.80, 0.80],  # D: spans both
            [0.00, 0.00, 0.01, 0.01],  # corner at the domain origin
            [0.99, 0.99, 1.00, 1.00],  # corner at the far edge
            [0.00, 0.40, 1.00, 0.45],  # full-width strip
            [0.70, 0.00, 0.72, 1.00],  # full-height strip
            [0.50, 0.50, 0.50, 0.50],  # degenerate point
            [0.00, 0.00, 1.00, 1.00],  # covers the whole domain
        ]
    )
    return RectDataset(
        np.concatenate([base.xl, hand[:, 0]]),
        np.concatenate([base.yl, hand[:, 1]]),
        np.concatenate([base.xu, hand[:, 2]]),
        np.concatenate([base.yu, hand[:, 3]]),
    )


def _windows(data: RectDataset) -> "list[Rect]":
    return [
        *generate_window_queries(data, 10, 1.0, seed=212),
        Rect(0.0, 0.0, 1.0, 1.0),  # full domain
        Rect(0.0, 0.0, 0.125, 0.125),  # exactly the origin tile
        Rect(0.5, 0.5, 0.5, 0.5),  # degenerate at the point rect
        Rect(0.95, 0.95, 1.0, 1.0),  # far-edge corner
    ]


# -- the raw container format ----------------------------------------------


class TestContainerFormat:
    META = {"kind": "X", "nx": 3, "ny": 4, "answer": 42}

    def sections(self) -> "dict[str, np.ndarray]":
        return {
            "ints": np.arange(17, dtype=np.int64),
            "floats": np.linspace(0.0, 1.0, 9),
            "matrix": np.arange(12, dtype=np.float64).reshape(3, 4),
            "empty": np.empty(0, dtype=np.int64),
            "bytes8": np.arange(5, dtype=np.uint8),
        }

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "c.bin"
        sections = self.sections()
        container.write_container(path, self.META, sections)
        meta, views = container.read_container(path)
        assert meta == self.META
        assert set(views) == set(sections)
        for name, arr in sections.items():
            np.testing.assert_array_equal(views[name], arr)
            assert views[name].dtype == arr.dtype
            assert views[name].shape == arr.shape
            assert not views[name].flags.writeable

    def test_every_section_is_64_byte_aligned(self, tmp_path):
        path = tmp_path / "c.bin"
        container.write_container(path, self.META, self.sections())
        version, _meta, specs = container.read_header(path)
        assert version == container.FORMAT_VERSION
        for spec in specs.values():
            assert spec.offset % 64 == 0, spec
        assert os.path.getsize(path) % 64 == 0

    def test_is_columnar(self, tmp_path):
        path = tmp_path / "c.bin"
        container.write_container(path, self.META, self.sections())
        assert container.is_columnar(path)
        other = tmp_path / "other.npz"
        np.savez(other, foo=np.arange(3))
        assert not container.is_columnar(other)
        assert not container.is_columnar(tmp_path / "missing.bin")

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "c.bin"
        path.write_bytes(b"NOTMYIDX" + b"\0" * 120)
        with pytest.raises(DatasetError, match="not a repro columnar"):
            container.read_header(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "c.bin"
        container.write_container(path, self.META, self.sections())
        raw = bytearray(path.read_bytes())
        raw[8] = container.FORMAT_VERSION + 1  # little-endian u32 at 8
        path.write_bytes(bytes(raw))
        with pytest.raises(DatasetError, match="format version"):
            container.read_header(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "c.bin"
        container.write_container(path, self.META, self.sections())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(DatasetError):
            container.read_container(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "c.bin"
        path.write_bytes(container.MAGIC + b"\0" * 10)
        with pytest.raises(DatasetError):
            container.read_header(path)

    def test_oversized_section_name_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="exceeds 24 bytes"):
            container.write_container(
                tmp_path / "c.bin", {}, {"n" * 25: np.arange(3)}
            )

    def test_3d_section_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="1-D/2-D"):
            container.write_container(
                tmp_path / "c.bin", {}, {"cube": np.zeros((2, 2, 2))}
            )


# -- index round-trips across class x format x backend ----------------------


class TestRoundTrip:
    @pytest.mark.parametrize("cls", GRID_CLASSES)
    @pytest.mark.parametrize("fmt", SAVE_FORMATS)
    @pytest.mark.parametrize("storage", STORAGES)
    def test_window_and_disk_parity(self, data, tmp_path, cls, fmt, storage):
        index = cls.build(data, partitions_per_dim=8)
        path = tmp_path / "index.bin"
        save_index(index, path, format=fmt)
        assert container.is_columnar(path) == (fmt == "columnar")
        loaded = load_index(path, storage=storage)
        assert type(loaded) is cls
        assert len(loaded) == len(index)
        assert loaded.replica_count == index.replica_count
        for w in _windows(data):
            assert ids_set(loaded.window_query(w)) == ids_set(
                index.window_query(w)
            ), w
        if cls is not OneLayerGrid:
            assert loaded.count_window(Rect(0.0, 0.0, 1.0, 1.0)) == len(data)
            for q in (DiskQuery(0.5, 0.5, 0.2), DiskQuery(0.0, 0.0, 0.3)):
                assert ids_set(loaded.disk_query(q)) == ids_set(
                    index.disk_query(q)
                )

    @pytest.mark.parametrize("fmt", SAVE_FORMATS)
    @pytest.mark.parametrize("src_storage", STORAGES)
    def test_legacy_built_index_saves_too(
        self, data, tmp_path, fmt, src_storage
    ):
        """The writer accepts either backend, not just packed."""
        index = TwoLayerGrid.build(
            data, partitions_per_dim=8, storage=src_storage
        )
        path = tmp_path / "index.bin"
        save_index(index, path, format=fmt)
        loaded = load_index(path)
        w = Rect(0.2, 0.2, 0.7, 0.7)
        assert ids_set(loaded.window_query(w)) == ids_set(
            data.brute_force_window(w)
        )

    @pytest.mark.parametrize("fmt", SAVE_FORMATS)
    def test_empty_index_roundtrip(self, tmp_path, fmt):
        empty = RectDataset(*(np.empty(0) for _ in range(4)))
        index = TwoLayerGrid.build(empty, partitions_per_dim=4)
        path = tmp_path / "empty.bin"
        save_index(index, path, format=fmt)
        loaded = load_index(path)
        assert len(loaded) == 0
        assert loaded.window_query(Rect(0, 0, 1, 1)).shape == (0,)

    @pytest.mark.parametrize("fmt", SAVE_FORMATS)
    def test_collection_roundtrip(self, data, tmp_path, fmt):
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        path = tmp_path / "col.bin"
        save_collection(index, data, path, format=fmt)
        timings: dict = {}
        loaded, dset = load_collection(path, timings=timings)
        assert len(dset) == len(data)
        np.testing.assert_array_equal(dset.xl, data.xl)
        np.testing.assert_array_equal(dset.yu, data.yu)
        w = Rect(0.1, 0.1, 0.6, 0.6)
        assert ids_set(loaded.window_query(w)) == ids_set(
            data.brute_force_window(w)
        )
        assert timings["read_ms"] >= 0.0 and timings["build_ms"] >= 0.0

    def test_collection_length_mismatch_rejected(self, data, tmp_path):
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        short = RectDataset(
            data.xl[:-1], data.yl[:-1], data.xu[:-1], data.yu[:-1]
        )
        with pytest.raises(DatasetError, match="rows"):
            save_collection(index, short, tmp_path / "c.bin")

    def test_index_archive_refused_as_collection(self, data, tmp_path):
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        path = tmp_path / "index.bin"
        save_index(index, path)
        with pytest.raises(DatasetError, match="no dataset columns"):
            load_collection(path)

    def test_unknown_format_rejected(self, data, tmp_path):
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        with pytest.raises(ValueError, match="unknown save format"):
            save_index(index, tmp_path / "x.bin", format="parquet")


# -- loaded columns are a pinned snapshot ----------------------------------


class TestWriteableFalse:
    @pytest.mark.parametrize("fmt", SAVE_FORMATS)
    @pytest.mark.parametrize("storage", STORAGES)
    def test_loaded_columns_frozen(self, data, tmp_path, fmt, storage):
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        path = tmp_path / "index.bin"
        save_index(index, path, format=fmt)
        loaded = load_index(path, storage=storage)
        if storage == "packed":
            store = loaded._store
            for arr in (
                store.offsets, store.xl, store.yl, store.xu, store.yu,
                store.ids,
            ):
                assert not arr.flags.writeable
                with pytest.raises(ValueError):
                    arr[:1] = 0
        else:
            tables = next(iter(loaded._tiles.values()))
            table = next(t for t in tables if t is not None)
            for arr in table.columns():
                assert not arr.flags.writeable
                with pytest.raises(ValueError):
                    arr[:1] = 0

    def test_updates_still_work_via_overlay(self, data, tmp_path):
        """Frozen base + delta overlay: mutation API stays available."""
        index = TwoLayerPlusGrid.build(data, partitions_per_dim=8)
        path = tmp_path / "plus.bin"
        save_index(index, path)
        loaded = load_index(path)
        new_id = loaded.insert(Rect(0.41, 0.41, 0.42, 0.42))
        assert new_id == len(data)
        assert new_id in ids_set(
            loaded.window_query(Rect(0.40, 0.40, 0.43, 0.43))
        )
        assert loaded.delete(data.rect(0), 0)
        assert 0 not in ids_set(loaded.window_query(Rect(0, 0, 1, 1)))


# -- the dirty-save contract ------------------------------------------------


class TestDirtySave:
    @pytest.mark.parametrize("fmt", SAVE_FORMATS)
    def test_overlay_error_mode(self, data, tmp_path, fmt):
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        index.insert(Rect(0.1, 0.1, 0.11, 0.11))
        with pytest.raises(IndexStateError, match="1 overlay rows"):
            save_index(index, tmp_path / "x.bin", format=fmt, if_dirty="error")

    @pytest.mark.parametrize("fmt", SAVE_FORMATS)
    def test_tombstone_error_mode(self, data, tmp_path, fmt):
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        assert index.delete(data.rect(0), 0)
        with pytest.raises(IndexStateError, match="tombstones"):
            save_index(index, tmp_path / "x.bin", format=fmt, if_dirty="error")

    @pytest.mark.parametrize("fmt", SAVE_FORMATS)
    def test_compact_mode_folds_and_persists(self, data, tmp_path, fmt):
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        new_id = index.insert(Rect(0.1, 0.1, 0.11, 0.11))
        assert index.delete(data.rect(0), 0)
        path = tmp_path / "x.bin"
        save_index(index, path, format=fmt)  # if_dirty="compact" default
        assert index._store.n_dead == 0 and not index._tiles
        loaded = load_index(path)
        got = ids_set(loaded.window_query(Rect(0, 0, 1, 1)))
        assert new_id in got and 0 not in got

    def test_unknown_if_dirty_rejected(self, data, tmp_path):
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        with pytest.raises(ValueError, match="if_dirty"):
            save_index(index, tmp_path / "x.bin", if_dirty="maybe")
        assert IF_DIRTY_MODES == ("compact", "error")

    def test_clean_index_saves_in_error_mode(self, data, tmp_path):
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        save_index(index, tmp_path / "x.bin", if_dirty="error")
        assert load_index(tmp_path / "x.bin").count_window(
            Rect(0, 0, 1, 1)
        ) == len(data)


# -- legacy npz compatibility ----------------------------------------------


class TestNpzLegacyCompat:
    def test_npz_still_loads(self, data, tmp_path):
        index = OneLayerGrid.build(data, partitions_per_dim=8)
        path = tmp_path / "legacy.npz"
        save_index(index, path, format="npz")
        assert not container.is_columnar(path)
        loaded = load_index(path)
        w = Rect(0.2, 0.2, 0.8, 0.8)
        assert ids_set(loaded.window_query(w)) == ids_set(
            data.brute_force_window(w)
        )

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(DatasetError, match="not a repro index archive"):
            load_index(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"\x89PNG\r\n\x1a\n" + b"\0" * 64)
        with pytest.raises(DatasetError):
            load_index(path)


# -- the tentpole: loading maps, queries page in ---------------------------


def _mapped_rss_kb(path: str) -> int:
    """Resident size (kB) of this process's mappings of ``path``."""
    real = os.path.realpath(path)
    total = -1
    try:
        with open("/proc/self/smaps") as fh:
            lines = fh.readlines()
    except OSError:  # pragma: no cover - non-Linux
        return -1
    current = False
    for line in lines:
        if "-" in line.split(" ", 1)[0]:  # a new mapping header line
            current = line.rstrip("\n").endswith(real)
            if current and total < 0:
                total = 0
        elif current and line.startswith("Rss:"):
            total += int(line.split()[1])
    return total


@pytest.mark.skipif(
    not os.path.exists("/proc/self/smaps"), reason="needs /proc smaps"
)
class TestLazyPageIn:
    def test_slabs_stay_on_disk_until_first_query(self, tmp_path):
        big = generate_uniform_rects(150_000, area=1e-6, seed=213)
        index = TwoLayerGrid.build(big, partitions_per_dim=64)
        path = tmp_path / "big.bin"
        save_index(index, path)
        assert os.path.getsize(path) > 8 * len(big) * 8  # real slabs

        loaded = load_index(path, storage="packed")
        rss_cold = _mapped_rss_kb(str(path))
        assert rss_cold >= 0, "container mapping not found in smaps"
        # Loading read the header/table/meta via plain file reads; the
        # mmap itself must not have faulted more than a token handful of
        # pages (the fused query matrix alone is ~7 MB here).
        assert rss_cold <= 256, f"load paged in {rss_cold} kB"

        got = loaded.window_query(Rect(0.0, 0.0, 1.0, 1.0))
        assert got.shape[0] == len(big)
        rss_hot = _mapped_rss_kb(str(path))
        assert rss_hot > rss_cold + 1024, (rss_cold, rss_hot)


# -- 2-layer+ persisted sort orders ----------------------------------------


class TestPersistedOrders:
    def test_orders_restored_and_used(self, data, tmp_path):
        index = TwoLayerPlusGrid.build(data, partitions_per_dim=8)
        path = tmp_path / "plus.bin"
        save_index(index, path)
        loaded = load_index(path, storage="packed")
        assert loaded._persisted_orders is not None
        assert len(loaded._persisted_orders) == 4

        # Force the decomposed-table strategy (the one that consumes the
        # orders) and check exact parity including stats accounting.
        loaded.multi_comparison_strategy = "search_verify"
        index.multi_comparison_strategy = "search_verify"
        for w in _windows(data):
            s1, s2 = QueryStats(), QueryStats()
            assert ids_set(loaded.window_query(w, stats=s1)) == ids_set(
                index.window_query(w, stats=s2)
            )
        assert loaded._persisted_orders is not None  # queries don't drop them

    def test_orders_invalidated_by_mutation(self, data, tmp_path):
        index = TwoLayerPlusGrid.build(data, partitions_per_dim=8)
        path = tmp_path / "plus.bin"
        save_index(index, path)
        loaded = load_index(path)
        loaded.multi_comparison_strategy = "search_verify"
        new_id = loaded.insert(Rect(0.33, 0.33, 0.44, 0.44))
        assert loaded._persisted_orders is None
        w = Rect(0.3, 0.3, 0.5, 0.5)
        got = ids_set(loaded.window_query(w, stats=QueryStats()))
        assert new_id in got
        assert got - {new_id} == ids_set(data.brute_force_window(w))

    def test_npz_load_has_no_orders_but_matches(self, data, tmp_path):
        index = TwoLayerPlusGrid.build(data, partitions_per_dim=8)
        path = tmp_path / "plus.npz"
        save_index(index, path, format="npz")
        loaded = load_index(path)
        assert loaded._persisted_orders is None
        loaded.multi_comparison_strategy = "search_verify"
        w = Rect(0.2, 0.2, 0.7, 0.7)
        assert ids_set(loaded.window_query(w, stats=QueryStats())) == ids_set(
            data.brute_force_window(w)
        )


# -- compiled kernel tier: knobs and pure-python body parity ---------------


class TestCompiledTier:
    def test_storage_compiled_degrades_gracefully(self, data):
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="compiled")
        expected = "compiled" if _kernels.compiled_available() else "vectorized"
        assert index.kernel_mode == expected
        assert index.storage == "packed"  # compiled implies the packed backend
        w = Rect(0.2, 0.2, 0.7, 0.7)
        assert ids_set(index.window_query(w)) == ids_set(
            data.brute_force_window(w)
        )

    def test_env_default_flips_packed_indexes(self, data, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "compiled")
        assert _kernels.compiled_kernel_default()
        assert _kernels.resolve_kernel_mode(None) == (
            _kernels.compiled_available()
        )
        assert _kernels.resolve_kernel_mode("legacy") is False
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        expected = "compiled" if _kernels.compiled_available() else "vectorized"
        assert index.kernel_mode == expected
        monkeypatch.delenv("REPRO_KERNEL")
        assert _kernels.resolve_kernel_mode(None) is False
        assert _kernels.resolve_kernel_mode("compiled") == (
            _kernels.compiled_available()
        )

    def test_legacy_storage_never_compiled(self, data, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "compiled")
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="legacy")
        assert index.kernel_mode == "vectorized"

    # Direct parity of the kernel *bodies* (pure-python, numba-free):
    # the same code numba jits, executed interpreted against the
    # vectorised reference — so tier-1 CI proves the logic even though
    # the compiled extra is absent there.

    def test_window_scan_body_two_layer(self, data):
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        q = index._build_fast_q()
        store = index._store
        for w in _windows(data):
            ix0, ix1, iy0, iy1 = index.grid.tile_range_for_window(w)
            bounds = np.array(
                [w.xl, -w.xu, w.yl, -w.yu, float(-ix0), float(-iy0)]
            )
            got = _kernels._window_scan_py(
                q, store.ids, store.offsets, 4, index.grid.nx,
                ix0, iy0, iy1, ix1 - ix0 + 1, bounds,
            )
            want = index.window_query(w)
            np.testing.assert_array_equal(np.sort(got), np.sort(want))

    @pytest.mark.parametrize("dedup", ("refpoint", "hash"))
    def test_window_scan_body_one_layer(self, data, dedup):
        index = OneLayerGrid.build(
            data, partitions_per_dim=8, dedup=dedup, storage="packed"
        )
        q = index._build_fast_q()
        store = index._store
        for w in _windows(data):
            ix0, ix1, iy0, iy1 = index.grid.tile_range_for_window(w)
            if dedup == "refpoint":
                qq = q
                bounds = np.array(
                    [w.xl, -w.xu, w.yl, -w.yu,
                     float(-(ix0 - 1)), float(-ix0),
                     float(-(iy0 - 1)), float(-iy0)]
                )
            else:
                qq = q[:4]
                bounds = np.array([w.xl, -w.xu, w.yl, -w.yu])
            got = _kernels._window_scan_py(
                qq, store.ids, store.offsets, 1, index.grid.nx,
                ix0, iy0, iy1, ix1 - ix0 + 1, bounds,
            )
            if dedup == "hash":
                got = np.unique(got)
            assert ids_set(got) == ids_set(index.window_query(w)), w

    def test_window_count_body(self, data):
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        q = index._build_fast_q()
        store = index._store
        for w in _windows(data):
            ix0, ix1, iy0, iy1 = index.grid.tile_range_for_window(w)
            bounds = np.array(
                [w.xl, -w.xu, w.yl, -w.yu, float(-ix0), float(-iy0)]
            )
            got = _kernels._window_count_py(
                q, store.offsets, 4, index.grid.nx,
                ix0, iy0, iy1, ix1 - ix0 + 1, bounds,
            )
            assert int(got) == index.count_window(w), w

    def test_disk_scan_body(self, data):
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        store = index._store
        g = index.grid
        queries = [
            DiskQuery(0.5, 0.5, 0.2),
            DiskQuery(0.0, 0.0, 0.3),   # clipped at the origin corner
            DiskQuery(1.0, 1.0, 0.15),  # clipped at the far corner
            DiskQuery(0.31, 0.31, 0.01),
            DiskQuery(0.5, 0.5, 1.5),   # covers the whole domain
        ]
        for dq in queries:
            ix0, ix1, iy0, iy1 = g.tile_range_for_window(dq.mbr())
            got = _kernels._disk_scan_py(
                store.offsets, store.xl, store.yl, store.xu, store.yu,
                store.ids, g.nx, g.ny, g.domain.xl, g.domain.yl,
                g.tile_w, g.tile_h, ix0, ix1, iy0, iy1,
                dq.cx, dq.cy, dq.radius,
            )
            want = index.disk_query(dq)
            assert got.shape[0] == want.shape[0], dq  # duplicate-free too
            assert ids_set(got) == ids_set(want), dq


# -- the file-backed shard arena -------------------------------------------


class TestFileArena:
    def _manifest(self, index, names):
        from repro.shard.shm import file_arena_manifest

        mman = index._mmap_manifest
        assert mman is not None and mman["kind"] == "file"
        return file_arena_manifest(
            mman["path"], {n: mman["arrays"][n] for n in names}
        )

    CSR = ("offsets", "xl", "yl", "xu", "yu", "ids", "fast_q")

    def test_attach_views_match_store(self, data, tmp_path):
        from repro.shard.shm import FileArena, attach_arena, unlink_arena

        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        path = tmp_path / "served.bin"
        save_index(index, path)
        # The file arena is a packed-CSR feature: only a packed load
        # records the container layout (legacy rebuilds tile dicts).
        loaded = load_index(path, storage="packed")
        manifest = self._manifest(loaded, self.CSR)
        seg, views = attach_arena(manifest, untrack=False)
        try:
            assert isinstance(seg, FileArena)
            store = loaded._store
            np.testing.assert_array_equal(views["offsets"], store.offsets)
            np.testing.assert_array_equal(views["ids"], store.ids)
            np.testing.assert_array_equal(views["fast_q"], loaded._fast_q)
            assert not views["xl"].flags.writeable
        finally:
            del views
            unlink_arena(seg)
        assert os.path.exists(path), "unlink_arena must not delete the file"
        seg.close()  # idempotent

    def test_workers_answer_from_the_mapped_file(self, data, tmp_path):
        from repro.shard.partition import plan_bands
        from repro.shard.shm import attach_arena
        from repro.shard.worker import build_worker_state

        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        path = tmp_path / "served.bin"
        save_collection(index, data, path)
        loaded = load_index(path, storage="packed")
        bands = plan_bands(np.asarray(loaded._store.offsets[::4]), 2)
        manifest = self._manifest(
            loaded, self.CSR + ("data_xl", "data_yl", "data_xu", "data_yu")
        )
        manifest.update(
            nx=loaded.grid.nx,
            ny=loaded.grid.ny,
            domain=list(loaded.grid.domain.as_tuple()),
            n_objects=len(loaded),
            bands=[b.to_tuple() for b in bands],
        )
        segs = []
        try:
            union: set[int] = set()
            w = Rect(0.1, 0.1, 0.9, 0.9)
            for shard_id in range(2):
                seg, views = attach_arena(manifest, untrack=False)
                segs.append(seg)
                banded, wdata = build_worker_state(manifest, views, shard_id)
                assert len(wdata) == len(data)
                part = ids_set(banded.window_query(w))
                assert not union & part, "bands must not overlap"
                union |= part
            assert union == ids_set(index.window_query(w))
        finally:
            for seg in segs:
                seg.close()
