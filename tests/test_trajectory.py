"""Tests for the benchmark trajectory / regression-gate machinery."""

import copy
import json
import os
import subprocess
import sys

import pytest

from repro.errors import ObsError
from repro.obs.trajectory import (
    SCHEMA_VERSION,
    BenchRecord,
    compare_records,
    format_trend_table,
    load_record,
    load_records,
    manifests_comparable,
)

MANIFEST = {
    "git_sha": "abc123",
    "python": "3.11.7",
    "numpy": "2.4.6",
    "hostname": "host-a",
    "platform": "Linux",
    "bench_scale": "0.0001",
    "bench_queries": "200",
    "dataset_fingerprint": "deadbeef",
}


def make_record(qps, manifest=None, name="table5_throughput"):
    return BenchRecord.from_dict(
        {
            "name": name,
            "schema": SCHEMA_VERSION,
            "timestamp": "2026-08-06T00:00:00+0000",
            "manifest": manifest if manifest is not None else dict(MANIFEST),
            "params": {},
            "series": {"qps": qps},
        }
    )


BASE_QPS = {
    "2-layer/ROADS": 30000.0,
    "1-layer/ROADS": 6000.0,
    "R-tree/ROADS": 15000.0,
    "2-layer/EDGES": 28000.0,
    "1-layer/EDGES": 5000.0,
    "R-tree/EDGES": 12000.0,
}


class TestLoading:
    def test_schema_less_record_is_refused(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"name": "x", "series": {"qps": {}}}))
        with pytest.raises(ObsError, match="schema"):
            load_record(str(path))

    def test_old_schema_is_refused(self):
        with pytest.raises(ObsError, match="schema"):
            BenchRecord.from_dict(
                {"name": "x", "schema": 1, "series": {}}, path="p"
            )

    def test_malformed_json_is_refused(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json")
        with pytest.raises(ObsError, match="cannot read"):
            load_record(str(path))

    def test_load_records_scans_directory(self, tmp_path):
        for name in ("a", "b"):
            (tmp_path / f"BENCH_{name}.json").write_text(
                json.dumps(
                    {
                        "name": name,
                        "schema": SCHEMA_VERSION,
                        "manifest": MANIFEST,
                        "series": {"qps": {"m/D": 1.0}},
                    }
                )
            )
        (tmp_path / "notes.txt").write_text("ignored")
        records = load_records(str(tmp_path))
        assert [r.name for r in records] == ["a", "b"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_records(str(tmp_path / "nope")) == []


class TestComparable:
    def test_identical_manifests_are_comparable(self):
        assert manifests_comparable(MANIFEST, dict(MANIFEST))

    def test_different_host_is_not_comparable(self):
        other = dict(MANIFEST, hostname="host-b")
        assert not manifests_comparable(MANIFEST, other)

    def test_different_fingerprint_is_not_comparable(self):
        other = dict(MANIFEST, dataset_fingerprint="feedface")
        assert not manifests_comparable(MANIFEST, other)

    def test_empty_manifest_is_not_comparable(self):
        assert not manifests_comparable({}, MANIFEST)


class TestCompare:
    def test_identical_records_pass(self):
        comp = compare_records(make_record(BASE_QPS), make_record(BASE_QPS))
        assert comp.comparable
        assert comp.gate_failures() == []
        assert all(not d.regressed for d in comp.deltas)

    def test_two_x_slowdown_fails_the_gate(self):
        slow = {k: v / 2.0 for k, v in BASE_QPS.items()}
        comp = compare_records(make_record(slow), make_record(BASE_QPS))
        failures = comp.gate_failures()
        assert failures, "a uniform 2x slowdown must fail the timing gate"
        assert all("regression" in f for f in failures)

    def test_decisive_ordering_flip_fails_the_gate(self):
        slow = dict(BASE_QPS)
        # 2-layer/ROADS drops to 7500, decisively below R-tree's 15000
        # (100% margin, far beyond the noise band on both sides).
        slow["2-layer/ROADS"] /= 4.0
        slow["2-layer/EDGES"] /= 4.0
        comp = compare_records(make_record(slow), make_record(BASE_QPS))
        failures = comp.gate_failures()
        assert any("regression" in f for f in failures)
        assert any("who-wins flip" in f for f in failures)

    def test_uncorroborated_regression_warns_not_gates(self):
        # One isolated metric beyond the band (a load spike) must not
        # hard-fail even on the same machine; a second metric of the
        # same method corroborates it into a failure.
        slow = dict(BASE_QPS)
        slow["2-layer/ROADS"] *= 0.65  # -35%, beyond the 30% band
        comp = compare_records(make_record(slow), make_record(BASE_QPS))
        assert comp.timing_regressions
        assert comp.corroborated_regressions == []
        assert comp.gate_failures() == []
        assert comp.gate_failures(strict=True)

        slow["2-layer/EDGES"] *= 0.65
        comp = compare_records(make_record(slow), make_record(BASE_QPS))
        assert len(comp.corroborated_regressions) == 2
        assert any("regression" in f for f in comp.gate_failures())

    def test_noise_band_swallows_small_deltas(self):
        wobble = {k: v * 1.1 for k, v in BASE_QPS.items()}
        comp = compare_records(make_record(wobble), make_record(BASE_QPS))
        assert comp.gate_failures() == []

    def test_incomparable_runs_gate_ordering_only(self):
        slow = dict(BASE_QPS)
        slow["2-layer/ROADS"] /= 4.0  # decisively below R-tree: ordering failure
        other_host = dict(MANIFEST, hostname="host-b")
        comp = compare_records(
            make_record(slow, manifest=other_host), make_record(BASE_QPS)
        )
        assert not comp.comparable
        failures = comp.gate_failures()
        assert failures
        assert all("who-wins flip" in f for f in failures)
        # strict mode re-arms the timing gate.
        assert any("regression" in f for f in comp.gate_failures(strict=True))

    def test_uniform_slowdown_across_machines_does_not_gate(self):
        # Everything 2x slower on another machine: ordering is intact,
        # so nothing hard-fails without --strict.
        slow = {k: v / 2.0 for k, v in BASE_QPS.items()}
        other_host = dict(MANIFEST, hostname="host-b")
        comp = compare_records(
            make_record(slow, manifest=other_host), make_record(BASE_QPS)
        )
        assert comp.gate_failures() == []
        assert comp.gate_failures(strict=True)

    def test_lower_is_better_series(self):
        base = make_record(BASE_QPS)
        cur = make_record(BASE_QPS)
        base.series["latency_ms"] = {"2-layer/ROADS": 1.0}
        cur.series["latency_ms"] = {"2-layer/ROADS": 3.0}
        comp = compare_records(cur, base)
        lat = [d for d in comp.deltas if d.series == "latency_ms"]
        assert len(lat) == 1 and lat[0].regressed and not lat[0].higher_is_better

    def test_different_names_refused(self):
        with pytest.raises(ObsError, match="different benchmarks"):
            compare_records(
                make_record(BASE_QPS), make_record(BASE_QPS, name="other")
            )

    def test_trend_table_renders(self):
        slow = dict(BASE_QPS)
        slow["2-layer/ROADS"] /= 2.0
        comp = compare_records(make_record(slow), make_record(BASE_QPS))
        table = format_trend_table(comp)
        assert "who wins" in table
        assert "REGRESSED" in table
        assert "table5_throughput" in table


REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestCompareCLI:
    def _write(self, directory, record):
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"BENCH_{record['name']}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(record, fh)
        return path

    def _raw(self, qps):
        return {
            "name": "table5_throughput",
            "schema": SCHEMA_VERSION,
            "timestamp": "2026-08-06T00:00:00+0000",
            "manifest": MANIFEST,
            "params": {},
            "series": {"qps": qps},
        }

    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        return subprocess.run(
            [sys.executable, os.path.join(REPO, "benchmarks", "compare.py"), *args],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )

    def test_cli_green_then_red_on_injected_slowdown(self, tmp_path):
        results = str(tmp_path / "results")
        baselines = str(tmp_path / "baselines")
        self._write(results, self._raw(BASE_QPS))
        out = self._run(
            "--results", results, "--baselines", baselines, "--update-baseline"
        )
        assert out.returncode == 0, out.stderr
        out = self._run("--results", results, "--baselines", baselines)
        assert out.returncode == 0, out.stderr + out.stdout
        assert "regression gate: OK" in out.stdout

        slow = copy.deepcopy(BASE_QPS)
        slow["2-layer/ROADS"] /= 2.0
        slow["2-layer/EDGES"] /= 2.0
        self._write(results, self._raw(slow))
        out = self._run("--results", results, "--baselines", baselines)
        assert out.returncode == 1
        assert "REGRESSION GATE FAILED" in out.stderr

    def test_cli_refuses_schema_less_records(self, tmp_path):
        results = str(tmp_path / "results")
        raw = self._raw(BASE_QPS)
        del raw["schema"]
        self._write(results, raw)
        out = self._run("--results", results, "--baselines", str(tmp_path / "b"))
        assert out.returncode == 2
        assert "schema" in out.stderr

    def test_cli_missing_baseline_skips(self, tmp_path):
        results = str(tmp_path / "results")
        self._write(results, self._raw(BASE_QPS))
        out = self._run(
            "--results", results, "--baselines", str(tmp_path / "empty")
        )
        assert out.returncode == 0
        assert "no baseline" in out.stdout
