# module: repro.server.fixture
import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._current = None

    def publish(self, snap):
        with self._lock:
            self._current = snap

    def sneak(self, snap):
        self._current = snap
