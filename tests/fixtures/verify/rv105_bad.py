# module: repro.server.fixture
class Columns:
    def __init__(self, xl):
        self.xl = xl
        self.version = 0

    def clamp(self, lo):
        self.xl[self.xl < lo] = lo
