# module: repro.server.fixture
import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._rows = {}

    def refresh(self):
        rows = self._load()
        with self._lock:
            self._rows = rows

    def _load(self):
        with open("rows.json") as fh:
            return fh.read()
