# module: repro.shard.wire
"""Fixture frame table.

==========  ========  ================
``ping``    r -> w    ``token``
``pong``    w -> r    ``token``
==========  ========  ================
"""


# module: repro.shard.node
def send(sock):
    return {"t": "ping", "token": "abc"}


def handle(frame):
    if frame["t"] == "ping":
        return frame["token"]
    if frame["t"] == "pong":
        return frame["token"]
    return None
