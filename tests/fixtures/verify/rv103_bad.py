# module: repro.server.fixture
import time


async def poll(store):
    return _drain(store)


def _drain(store):
    time.sleep(0.5)
    return store
