# module: repro.shard.wire
"""Fixture frame table.

==========  ========  ==========================
``batch``   r -> w    ``bid`` ``epoch``
``reply``   w -> r    ``bid`` ``result | error``
==========  ========  ==========================
"""


# module: repro.shard.node
def send(sock):
    first = {"t": "batch", "bid": 1}
    second = {"t": "reply", "bid": 1}
    return first, second


def handle(frame):
    if frame["t"] == "batch":
        return frame["bid"]
    if frame["t"] == "reply":
        return frame["bid"]
    return None
