# module: repro.server.protocol
VERBS = {"window": "read", "insert": "write"}


# module: repro.server.service
def dispatch(req):
    if req.verb == "window":
        return "query"
    if req.verb == "insert":
        return "write"
    return None
