# module: repro.server.fixture
import asyncio


async def poll(store):
    await asyncio.sleep(0.5)
    return _tally(store)


def _tally(store):
    return sum(range(4))
