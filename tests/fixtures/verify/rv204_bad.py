# module: repro.server.protocol
VERBS = {"window": "read", "insert": "write", "stats": "read"}


# module: repro.server.service
def dispatch(req):
    if req.verb == "window":
        return "query"
    if req.verb == "knn":
        return "neighbours"
    return None
