# module: repro.server.fixture
import threading
import time


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._rows = {}

    def refresh(self):
        with self._lock:
            time.sleep(0.1)
            return self._reload()

    def _reload(self):
        with open("rows.json") as fh:
            return fh.read()
