# module: repro.shard.wire
"""Fixture frame table.

==========  ========  ================
``ping``    r -> w    ``token``
``pong``    w -> r    ``token``
==========  ========  ================
"""


# module: repro.shard.node
def send(sock):
    first = {"t": "ping", "token": "abc"}
    second = {"t": "pong", "token": "xyz"}
    return first, second


def handle(frame):
    if frame["t"] == "ping":
        return frame["token"]
    if frame["t"] == "pong":
        return frame["token"]
    return None
