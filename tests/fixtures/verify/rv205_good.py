# module: repro.server.service
def encode_error(req_id, code, message, trace=None):
    return b""


def reject(req, conn):
    conn.send(encode_error(req.id, "overloaded", "queue full", trace=req.trace))


def bad_line(conn):
    conn.send(encode_error(None, "bad_request", "unparseable line"))
