def collect(item, acc=[]):
    acc.append(item)
    return acc


def index(key, table=dict()):
    return table.setdefault(key, 0)
