import numpy as np


def _load_raw(path):
    archive = np.load(path, allow_pickle=False)
    return archive["xl"]


def _map_raw(path):
    return np.memmap(path, dtype=np.uint8, mode="r")
