def lookup(key):
    return key


class Table:
    def get(self, key):
        return key
