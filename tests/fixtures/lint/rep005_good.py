class Grid:
    def __init__(self):
        self._store = None
        self._tiles = {}

    def insert(self, rect):
        self._tiles[0] = rect

    def window_query(self, window):
        hits = [] if self._store is None else [self._store.query(window)]
        hits.extend(self._tiles.values())
        return hits
