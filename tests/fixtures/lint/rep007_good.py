import numpy as np

from repro.core.format import is_columnar, read_container, read_header


def _load_checked(path):
    if not is_columnar(path):
        raise ValueError(f"{path}: not a columnar container")
    _version, meta, sections = read_header(path)
    mm = np.memmap(path, dtype=np.uint8, mode="r")
    return meta, sections, mm


def _load_views(path):
    return read_container(path)
