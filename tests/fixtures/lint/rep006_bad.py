_RESULT_CACHE = {}

_PENDING = []

_SEEN = set()


def remember(key, value):
    global _TOTAL
    _RESULT_CACHE[key] = value
