import threading

_lock = threading.Lock()


def bump(state: dict) -> None:
    with _lock:
        state["n"] = state.get("n", 0) + 1


async def wait(aio_lock) -> None:
    async with aio_lock:
        await aio_lock.notify_all()
