_RING_KEEP = 64

_SCATTER_VERBS = frozenset({"window", "count", "disk", "knn"})

_CLASS_CODES = (0, 1, 2, 3)


class WorkerLoop:
    def __init__(self):
        self.ring = {}
        self.parked = []

    def drain(self):
        out = []
        for frame in self.parked:
            out.append(frame)
        return out


def plan(items):
    buckets = {}
    for item in items:
        buckets.setdefault(item % 4, []).append(item)
    return buckets
