import time


def stamp() -> float:
    return time.time()
