def lookup(key: int) -> int:
    return key


class Table:
    def get(self, key: int) -> int:
        return key
