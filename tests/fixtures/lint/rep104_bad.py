import os
import sys

print(sys.argv)
