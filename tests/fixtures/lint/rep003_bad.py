import threading
import time

_lock = threading.Lock()


async def publish(conn) -> None:
    with _lock:
        await conn.send(b"x")


def fetch() -> None:
    with _lock:
        time.sleep(1.0)
