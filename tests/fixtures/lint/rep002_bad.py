import time

import numpy as np


async def handler() -> None:
    time.sleep(0.1)


async def loader(path: str) -> bytes:
    with open(path, "rb") as f:
        return f.read()


async def builder(parts: list) -> object:
    return np.concatenate(parts)
