import numpy as np


def window_scan(xl, xu, window):
    return (xl <= window.xu) & (xu >= window.xl)


def fused_kernel(cols, bounds):
    ge = np.greater_equal
    return ge(cols, bounds)
