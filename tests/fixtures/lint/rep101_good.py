def load(path: str) -> str:
    try:
        with open(path) as f:
            return f.read()
    except OSError:
        return ""
