import time


def stamp() -> float:
    return time.perf_counter()
