def window_scan(xl, xu, window, stats=None):
    if stats is not None:
        stats.comparisons += int(xl.shape[0])
    return (xl <= window.xu) & (xu >= window.xl)
