def touches(best: float) -> bool:
    return best == 0.0
