import asyncio


async def handler() -> None:
    await asyncio.sleep(0.1)


def builder(parts: list) -> list:
    return sorted(parts)
