import sys

print(sys.argv)
