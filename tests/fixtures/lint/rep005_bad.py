class Grid:
    def __init__(self):
        self._store = None
        self._tiles = {}

    def insert(self, rect):
        self._tiles[0] = rect

    def window_query(self, window):
        return self._scan_store(window)

    def _scan_store(self, window):
        return self._store.query(window)
