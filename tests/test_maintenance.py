"""Tests for index maintenance: deletions, persistence, R-tree kNN."""

import numpy as np
import pytest

from repro.datasets import generate_uniform_rects, generate_window_queries
from repro.errors import DatasetError, InvalidQueryError
from repro.geometry import Rect
from repro.grid import OneLayerGrid
from repro.core import TwoLayerGrid, TwoLayerPlusGrid, load_index, save_index
from repro.rtree import RStarTree, RTree

from conftest import ids_set

GRID_CLASSES = (OneLayerGrid, TwoLayerGrid, TwoLayerPlusGrid)


@pytest.fixture(scope="module")
def data():
    return generate_uniform_rects(2000, area=1e-3, seed=131)


class TestDeletion:
    @pytest.mark.parametrize("cls", GRID_CLASSES)
    def test_delete_removes_from_all_results(self, data, cls):
        index = cls.build(data, partitions_per_dim=8)
        victims = {3, 700, 1999}
        for v in victims:
            assert index.delete(data.rect(v), v)
        for w in generate_window_queries(data, 15, 1.0, seed=132):
            got = ids_set(index.window_query(w))
            truth = ids_set(data.brute_force_window(w)) - victims
            assert got == truth

    @pytest.mark.parametrize("cls", GRID_CLASSES)
    def test_delete_missing_returns_false(self, data, cls):
        index = cls.build(data, partitions_per_dim=8)
        assert index.delete(data.rect(5), 5)
        assert not index.delete(data.rect(5), 5)

    @pytest.mark.parametrize("cls", GRID_CLASSES)
    def test_delete_then_reinsert(self, data, cls):
        index = cls.build(data, partitions_per_dim=8)
        rect = data.rect(42)
        index.delete(rect, 42)
        index.insert(rect, 42)
        w = Rect(rect.xl - 0.01, rect.yl - 0.01, rect.xu + 0.01, rect.yu + 0.01)
        assert 42 in ids_set(index.window_query(w))

    def test_delete_spanning_object_clears_all_classes(self, data):
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        big_id = index.insert(Rect(0.1, 0.1, 0.9, 0.9))
        assert index.delete(Rect(0.1, 0.1, 0.9, 0.9), big_id)
        got = index.window_query(Rect(0, 0, 1, 1))
        assert big_id not in ids_set(got)

    def test_replica_count_shrinks(self, data):
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        before = index.replica_count
        index.delete(data.rect(0), 0)
        assert index.replica_count < before


class TestPersistence:
    @pytest.mark.parametrize("cls", GRID_CLASSES)
    def test_roundtrip_equivalence(self, data, cls, tmp_path):
        index = cls.build(data, partitions_per_dim=16)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert type(loaded) is cls
        assert len(loaded) == len(index)
        assert loaded.replica_count == index.replica_count
        for w in generate_window_queries(data, 10, 1.0, seed=133):
            assert ids_set(loaded.window_query(w)) == ids_set(index.window_query(w))

    def test_loaded_index_supports_updates(self, data, tmp_path):
        index = TwoLayerGrid.build(data, partitions_per_dim=16)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        new_id = loaded.insert(Rect(0.5, 0.5, 0.51, 0.51))
        assert new_id == len(data)
        assert loaded.delete(data.rect(0), 0)

    def test_loaded_plus_disk_query(self, data, tmp_path):
        index = TwoLayerPlusGrid.build(data, partitions_per_dim=16)
        path = tmp_path / "plus.npz"
        save_index(index, path)
        loaded = load_index(path)
        from repro.datasets import DiskQuery

        q = DiskQuery(0.5, 0.5, 0.2)
        assert ids_set(loaded.disk_query(q)) == ids_set(
            data.brute_force_disk(0.5, 0.5, 0.2)
        )

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(DatasetError):
            load_index(path)

    def test_rejects_unsupported_index(self, data, tmp_path):
        tree = RTree.build(data)
        with pytest.raises(DatasetError):
            save_index(tree, tmp_path / "tree.npz")

    def test_empty_index_roundtrip(self, tmp_path):
        from repro.datasets import RectDataset

        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        index = TwoLayerGrid.build(empty, partitions_per_dim=4)
        path = tmp_path / "empty.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.window_query(Rect(0, 0, 1, 1)).shape[0] == 0


class TestRTreeKnn:
    def _truth(self, data, cx, cy, k):
        dx = np.maximum(np.maximum(data.xl - cx, 0.0), cx - data.xu)
        dy = np.maximum(np.maximum(data.yl - cy, 0.0), cy - data.yu)
        d = np.hypot(dx, dy)
        return np.lexsort((np.arange(len(data)), d))[:k]

    @pytest.mark.parametrize("cls", [RTree, RStarTree])
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_matches_brute_force(self, data, cls, k):
        tree = cls.build(data)
        rng = np.random.default_rng(134)
        for _ in range(10):
            cx, cy = rng.random(2)
            got = tree.knn_query(cx, cy, k)
            assert got.tolist() == self._truth(data, cx, cy, k).tolist()

    def test_k_larger_than_n(self, data):
        tree = RTree.build(data.slice(0, 10))
        got = tree.knn_query(0.5, 0.5, 50)
        assert got.shape[0] == 10

    def test_rejects_bad_k(self, data):
        tree = RTree.build(data)
        with pytest.raises(InvalidQueryError):
            tree.knn_query(0.5, 0.5, 0)

    def test_visits_fraction_of_tree(self, data):
        from repro.stats import QueryStats

        tree = RTree.build(data)
        stats = QueryStats()
        tree.knn_query(0.5, 0.5, 5, stats)
        assert stats.partitions_visited < tree.node_count / 2

    def test_agrees_with_grid_knn(self, data):
        from repro.core import knn_query

        tree = RTree.build(data)
        grid = TwoLayerGrid.build(data, partitions_per_dim=16)
        rng = np.random.default_rng(135)
        for _ in range(10):
            cx, cy = rng.random(2)
            a = tree.knn_query(cx, cy, 8)
            b = knn_query(grid, data, float(cx), float(cy), 8)
            assert a.tolist() == b.tolist()
