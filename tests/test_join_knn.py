"""Tests for the future-work extensions: spatial joins and kNN queries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    RectDataset,
    generate_uniform_rects,
    generate_zipf_rects,
)
from repro.errors import InvalidGridError, InvalidQueryError
from repro.geometry import Rect
from repro.grid import CLASS_B, CLASS_C, CLASS_D
from repro.core import (
    ALLOWED_CLASS_COMBOS,
    TwoLayerGrid,
    brute_force_join,
    knn_query,
    one_layer_spatial_join,
    two_layer_spatial_join,
)
from repro.stats import QueryStats


def pair_set(pairs: np.ndarray) -> set[tuple[int, int]]:
    return set(map(tuple, pairs.tolist()))


@pytest.fixture(scope="module")
def join_inputs():
    r = generate_uniform_rects(600, area=1e-3, seed=91)
    s = generate_zipf_rects(500, area=1e-3, seed=92)
    return r, s


class TestAllowedCombos:
    def test_nine_combos(self):
        assert len(ALLOWED_CLASS_COMBOS) == 9

    def test_no_both_before_in_any_dim(self):
        # Per dimension, at least one side of the pair starts inside.
        before_x = {CLASS_C, CLASS_D}
        before_y = {CLASS_B, CLASS_D}
        for cr, cs in ALLOWED_CLASS_COMBOS:
            assert not (cr in before_x and cs in before_x)
            assert not (cr in before_y and cs in before_y)

    def test_every_legal_combo_included(self):
        before_x = {CLASS_C, CLASS_D}
        before_y = {CLASS_B, CLASS_D}
        legal = {
            (cr, cs)
            for cr in range(4)
            for cs in range(4)
            if not (cr in before_x and cs in before_x)
            and not (cr in before_y and cs in before_y)
        }
        assert set(ALLOWED_CLASS_COMBOS) == legal


class TestSpatialJoin:
    @pytest.mark.parametrize("grid", [1, 3, 8, 17])
    def test_two_layer_matches_brute_force(self, join_inputs, grid):
        r, s = join_inputs
        got = two_layer_spatial_join(r, s, partitions_per_dim=grid)
        assert got.shape[0] == len(pair_set(got)), "duplicate pairs"
        assert pair_set(got) == pair_set(brute_force_join(r, s))

    @pytest.mark.parametrize("grid", [1, 3, 8, 17])
    def test_one_layer_matches_brute_force(self, join_inputs, grid):
        r, s = join_inputs
        got = one_layer_spatial_join(r, s, partitions_per_dim=grid)
        assert got.shape[0] == len(pair_set(got))
        assert pair_set(got) == pair_set(brute_force_join(r, s))

    def test_join_is_not_symmetric_in_ids_but_in_content(self, join_inputs):
        r, s = join_inputs
        rs = pair_set(two_layer_spatial_join(r, s, 8))
        sr = pair_set(two_layer_spatial_join(s, r, 8))
        assert rs == {(b, a) for a, b in sr}

    def test_self_join(self):
        data = generate_uniform_rects(300, area=1e-3, seed=93)
        got = two_layer_spatial_join(data, data, 8)
        truth = pair_set(brute_force_join(data, data))
        assert pair_set(got) == truth
        # Self-join includes the diagonal.
        assert all((i, i) in truth for i in range(300))

    def test_empty_inputs(self):
        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        data = generate_uniform_rects(10, seed=0)
        assert two_layer_spatial_join(empty, data, 4).shape == (0, 2)
        assert two_layer_spatial_join(data, empty, 4).shape == (0, 2)

    def test_disjoint_inputs(self):
        left = RectDataset.from_rects([Rect(0.0, 0.0, 0.1, 0.1)])
        right = RectDataset.from_rects([Rect(0.8, 0.8, 0.9, 0.9)])
        assert two_layer_spatial_join(left, right, 4).shape[0] == 0

    def test_boundary_pair_on_tile_edge(self):
        # Pair whose intersection corner lies exactly on a tile border.
        r = RectDataset.from_rects([Rect(0.1, 0.1, 0.25, 0.25)])
        s = RectDataset.from_rects([Rect(0.25, 0.1, 0.4, 0.25)])
        got = two_layer_spatial_join(r, s, 4)
        assert pair_set(got) == {(0, 0)}

    def test_two_layer_no_dedup_work(self, join_inputs):
        r, s = join_inputs
        stats = QueryStats()
        two_layer_spatial_join(r, s, 8, stats=stats)
        assert stats.dedup_checks == 0 and stats.duplicates_generated == 0

    def test_one_layer_generates_duplicates(self, join_inputs):
        r, s = join_inputs
        stats = QueryStats()
        one_layer_spatial_join(r, s, 8, stats=stats)
        assert stats.duplicates_generated > 0

    def test_rejects_bad_grid(self, join_inputs):
        r, s = join_inputs
        with pytest.raises(InvalidGridError):
            two_layer_spatial_join(r, s, 0)
        with pytest.raises(InvalidGridError):
            one_layer_spatial_join(r, s, 0)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        grid=st.integers(1, 12),
        n=st.integers(1, 60),
    )
    def test_property_join_equals_brute_force(self, seed, grid, n):
        r = generate_uniform_rects(n, area=1e-2, seed=seed)
        s = generate_uniform_rects(max(1, n // 2), area=1e-2, seed=seed + 1)
        got = two_layer_spatial_join(r, s, partitions_per_dim=grid)
        assert got.shape[0] == len(pair_set(got))
        assert pair_set(got) == pair_set(brute_force_join(r, s))

    @pytest.mark.parametrize("grid", [1, 4, 16])
    def test_sweep_algorithm_matches_nested(self, join_inputs, grid):
        r, s = join_inputs
        nested = two_layer_spatial_join(r, s, grid, algorithm="nested")
        sweep = two_layer_spatial_join(r, s, grid, algorithm="sweep")
        assert sweep.shape[0] == len(pair_set(sweep))
        assert pair_set(sweep) == pair_set(nested)

    def test_sweep_rejects_unknown_algorithm(self, join_inputs):
        r, s = join_inputs
        with pytest.raises(InvalidGridError):
            two_layer_spatial_join(r, s, 4, algorithm="hash")

    def test_sweep_self_join(self):
        data = generate_uniform_rects(400, area=1e-3, seed=98)
        got = two_layer_spatial_join(data, data, 8, algorithm="sweep")
        assert pair_set(got) == pair_set(brute_force_join(data, data))


class TestRefinedJoin:
    def test_refinement_filters_mbr_only_pairs(self):
        from repro.geometry import LineString
        from repro.core import refine_join_pairs

        # Two diagonals whose MBRs coincide but geometries are parallel
        # (never touch), plus a crossing pair.
        a = RectDataset.from_geometries(
            [
                LineString([(0.0, 0.0), (0.4, 0.4)]),      # 0: diagonal
                LineString([(0.6, 0.6), (1.0, 1.0)]),      # 1: far diagonal
            ]
        )
        b = RectDataset.from_geometries(
            [
                LineString([(0.0, 0.05), (0.35, 0.4)]),    # 0: near-parallel to a0
                LineString([(0.0, 0.4), (0.4, 0.0)]),      # 1: crosses a0
            ]
        )
        mbr_pairs = two_layer_spatial_join(a, b, partitions_per_dim=4)
        exact = refine_join_pairs(a, b, mbr_pairs)
        assert (0, 1) in pair_set(exact)          # true crossing survives
        assert (1, 0) not in pair_set(exact)      # disjoint stays out
        assert exact.shape[0] < mbr_pairs.shape[0]  # something was filtered

    def test_refinement_matches_exact_brute_force(self):
        from repro.datasets import generate_tiger_standin
        from repro.geometry import geometry_intersects_geometry
        from repro.core import refine_join_pairs

        # Inflate the extents so MBRs really overlap across datasets.
        a = generate_tiger_standin("ROADS", scale=2e-5, with_geometries=True, seed=201)
        b = generate_tiger_standin("ROADS", scale=2e-5, with_geometries=True, seed=202)
        # Re-scale b onto a's hot region to force overlaps.
        import numpy as np

        b = RectDataset(
            a.xl + (b.xl - b.xl.mean()) * 0.1,
            a.yl + (b.yl - b.yl.mean()) * 0.1,
            a.xl + (b.xu - b.xl.mean()) * 0.1,
            a.yl + (b.yu - b.yl.mean()) * 0.1,
        )
        mbr_pairs = two_layer_spatial_join(a, b, partitions_per_dim=16)
        exact = refine_join_pairs(a, b, mbr_pairs)
        truth = {
            (i, j)
            for i, j in brute_force_join(a, b).tolist()
            if geometry_intersects_geometry(a.geometry(i), b.geometry(j))
        }
        assert pair_set(exact) == truth

    def test_mbr_only_datasets_pass_through(self, join_inputs):
        from repro.core import refine_join_pairs

        r, s = join_inputs
        pairs = two_layer_spatial_join(r, s, partitions_per_dim=8)
        assert refine_join_pairs(r, s, pairs) is pairs

    def test_empty_pairs(self):
        from repro.core import refine_join_pairs
        from repro.geometry import LineString

        a = RectDataset.from_geometries([LineString([(0, 0), (0.1, 0.1)])])
        out = refine_join_pairs(a, a, np.empty((0, 2), dtype=np.int64))
        assert out.shape == (0, 2)


class TestKnn:
    @pytest.fixture(scope="class")
    def setup(self):
        data = generate_uniform_rects(4000, area=1e-6, seed=94)
        index = TwoLayerGrid.build(data, partitions_per_dim=32)
        return data, index

    def _truth(self, data, cx, cy, k):
        dx = np.maximum(np.maximum(data.xl - cx, 0.0), cx - data.xu)
        dy = np.maximum(np.maximum(data.yl - cy, 0.0), cy - data.yu)
        d = np.hypot(dx, dy)
        return np.lexsort((np.arange(len(data)), d))[:k]

    @pytest.mark.parametrize("k", [1, 2, 10, 50])
    def test_matches_brute_force(self, setup, k):
        data, index = setup
        rng = np.random.default_rng(95)
        for _ in range(15):
            cx, cy = rng.random(2)
            got = knn_query(index, data, cx, cy, k)
            assert got.tolist() == self._truth(data, cx, cy, k).tolist()

    def test_k_exceeding_n_returns_all(self, setup):
        data, index = setup
        got = knn_query(index, data, 0.5, 0.5, len(data) + 10)
        assert got.shape[0] == len(data)

    def test_query_point_outside_domain(self, setup):
        data, index = setup
        got = knn_query(index, data, 1.5, -0.5, 7)
        assert got.tolist() == self._truth(data, 1.5, -0.5, 7).tolist()

    def test_query_point_inside_an_object(self, setup):
        data, index = setup
        # Use an existing object's centre: distance 0 ties exist.
        cx = float((data.xl[42] + data.xu[42]) / 2)
        cy = float((data.yl[42] + data.yu[42]) / 2)
        got = knn_query(index, data, cx, cy, 3)
        assert 42 in got.tolist()

    def test_rejects_bad_k(self, setup):
        data, index = setup
        with pytest.raises(InvalidQueryError):
            knn_query(index, data, 0.5, 0.5, 0)

    def test_rejects_mismatched_data(self, setup):
        data, index = setup
        with pytest.raises(InvalidQueryError):
            knn_query(index, data.slice(0, 5), 0.5, 0.5, 1)

    def test_zipf_data(self):
        data = generate_zipf_rects(3000, area=1e-6, seed=96)
        index = TwoLayerGrid.build(data, partitions_per_dim=32)
        rng = np.random.default_rng(97)
        for _ in range(10):
            cx, cy = rng.random(2)
            got = knn_query(index, data, cx, cy, 9)
            assert got.tolist() == self._truth(data, cx, cy, 9).tolist()
