"""Live serving telemetry: traces on the wire, admin verbs, exposition.

In-process tests drive a telemetry-enabled :class:`SpatialQueryService`
inside one asyncio loop; the end-to-end test boots ``python -m repro
--serve`` in a subprocess and checks the acceptance path — traced
queries round-trip with per-phase timings, ``stats``/``heatmap``/
``slowlog`` return well-formed payloads, the hottest tile matches the
deliberately hammered window, and the Prometheus endpoint scrapes.
"""

import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import urllib.request

import pytest

from repro.api import SpatialCollection
from repro.datasets import generate_uniform_rects
from repro.obs.metrics import MetricsRegistry
from repro.server import ServerConfig, SpatialQueryService
from repro.server.admin import MetricsHTTPServer
from repro.server.client import ClientError, ClientTimeoutError, SpatialClient

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: the wire-envelope phase taxonomy for batched read requests.
PHASE_KEYS = {
    "queue_ms",
    "coalesce_ms",
    "snapshot_pin_ms",
    "kernel_ms",
    "refine_ms",
}


def make_collection(n=1200, seed=13):
    data = generate_uniform_rects(n, area=1e-5, seed=seed)
    return SpatialCollection.from_dataset(data, partitions_per_dim=16)


async def call(reader, writer, req_id, verb, args=None, trace=None):
    frame = {"id": req_id, "verb": verb}
    if args:
        frame["args"] = args
    if trace is not None:
        frame["trace"] = trace
    writer.write((json.dumps(frame) + "\n").encode())
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), 10.0)
    assert line, "server closed the connection unexpectedly"
    out = json.loads(line)
    assert out["id"] == req_id
    return out


def live_service_test(coro_fn, config=None, collection=None):
    """Run ``coro_fn(service, reader, writer)`` against a live service.

    Defaults to every-request telemetry retention (``trace_sample=1``)
    and every-batch heat accounting (``heat_sample=1``) so assertions
    are deterministic.
    """
    col = collection if collection is not None else make_collection()
    cfg = config or ServerConfig(heat_sample=1, trace_sample=1)

    async def main():
        service = SpatialQueryService(col.index, col.data, cfg)
        await service.start()
        host, port = service.address
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await coro_fn(service, reader, writer)
        finally:
            writer.close()
            await service.shutdown()

    asyncio.run(main())


WINDOW = {"xl": 0.30, "yl": 0.30, "xu": 0.34, "yu": 0.34}


class TestTracePropagation:
    def test_client_trace_round_trips_with_phases(self):
        async def scenario(service, reader, writer):
            frame = await call(
                reader, writer, 1, "window", WINDOW, trace="abc-123"
            )
            assert frame["ok"] is True
            assert frame["trace"] == "abc-123"
            phases = frame["server"]["phases"]
            assert set(phases) == PHASE_KEYS
            assert all(v >= 0.0 for v in phases.values())
            assert frame["server"]["batch_size"] >= 1
            # client-traced requests are always retained in the ring
            rec = service.telemetry.traces.last(1)[0]
            assert rec["trace"] == "abc-123"
            assert rec["verb"] == "window"
            assert rec["latency_ms"] > 0.0
            # the retained record additionally carries serialize_ms
            assert "serialize_ms" in rec["phases"]

        live_service_test(scenario)

    def test_untraced_request_gets_server_assigned_id(self):
        async def scenario(service, reader, writer):
            frame = await call(reader, writer, 1, "window", WINDOW)
            assert frame["ok"] is True
            assert re.fullmatch(r"t-[0-9a-f]{6,}", frame["trace"])
            # lean envelope: no phase breakdown unless the client traced
            assert "phases" not in frame["server"]

        live_service_test(scenario)

    def test_error_frames_echo_trace(self):
        async def scenario(service, reader, writer):
            frame = await call(
                reader,
                writer,
                1,
                "window",
                {"xl": 0.5, "yl": 0.5, "xu": 0.1, "yu": 0.1},
                trace="bad-win",
            )
            assert frame["ok"] is False
            assert frame["error"]["code"] == "invalid_query"
            assert frame["trace"] == "bad-win"

        live_service_test(scenario)

    def test_write_verbs_are_traced(self):
        async def scenario(service, reader, writer):
            frame = await call(
                reader,
                writer,
                1,
                "insert",
                {"xl": 0.1, "yl": 0.1, "xu": 0.11, "yu": 0.11},
                trace="w-1",
            )
            assert frame["ok"] is True
            assert frame["trace"] == "w-1"
            rec = service.telemetry.traces.last(1)[0]
            assert rec["verb"] == "insert"
            assert {"queue_ms", "kernel_ms"} <= set(rec["phases"])

        live_service_test(scenario)

    def test_oversized_trace_rejected(self):
        async def scenario(service, reader, writer):
            # malformed frames answer with id null (decode failed whole)
            writer.write(
                (
                    json.dumps(
                        {"id": 1, "verb": "ping", "trace": "x" * 200}
                    )
                    + "\n"
                ).encode()
            )
            await writer.drain()
            frame = json.loads(await asyncio.wait_for(reader.readline(), 10.0))
            assert frame["ok"] is False
            assert frame["id"] is None
            assert frame["error"]["code"] == "bad_request"
            assert "'trace' longer than" in frame["error"]["message"]

        live_service_test(scenario)

    def test_telemetry_off_keeps_envelope_lean(self):
        cfg = ServerConfig(telemetry=False)

        async def scenario(service, reader, writer):
            assert service.telemetry is None
            frame = await call(reader, writer, 1, "window", WINDOW)
            assert frame["ok"] is True
            assert "trace" not in frame

        live_service_test(scenario, config=cfg)


class TestAdminVerbs:
    def test_heatmap_tracks_hammered_tile(self):
        col = make_collection()

        async def scenario(service, reader, writer):
            for i in range(12):
                frame = await call(reader, writer, i, "window", WINDOW)
                assert frame["ok"] is True
            frame = await call(reader, writer, 99, "heatmap", {"top": 5})
            snap = frame["result"]
            assert snap["nx"] == snap["ny"] == 16
            assert snap["tiles_hot"] > 0
            assert snap["total_visits"] > 0
            hot = snap["tiles"][0]
            # the hottest tile must lie under the hammered window
            grid = col.index.grid
            lo_x = grid.tile_ix(WINDOW["xl"])
            lo_y = grid.tile_iy(WINDOW["yl"])
            hi_x = grid.tile_ix(WINDOW["xu"])
            hi_y = grid.tile_iy(WINDOW["yu"])
            assert lo_x <= hot["ix"] <= hi_x
            assert lo_y <= hot["iy"] <= hi_y
            assert hot["scans"] > 0

        live_service_test(scenario, collection=col)

    def test_traces_verb_lists_newest_first(self):
        async def scenario(service, reader, writer):
            for i in range(5):
                await call(reader, writer, i, "window", WINDOW, trace=f"t{i}")
            frame = await call(reader, writer, 99, "traces", {"limit": 3})
            result = frame["result"]
            assert result["capacity"] == service.config.trace_ring
            assert result["total"] >= 5
            got = [r["trace"] for r in result["entries"]]
            # newest first; the traces request itself is not yet retained
            assert got[0] == "t4"
            assert len(got) == 3

        live_service_test(scenario)

    def test_slowlog_captures_and_lazily_explains(self):
        cfg = ServerConfig(heat_sample=1, trace_sample=1, slowlog_ms=0.0)

        async def scenario(service, reader, writer):
            await call(reader, writer, 1, "window", WINDOW, trace="slow-1")
            assert service.telemetry.slowlog.total >= 1
            # captured entry holds no plan until the log is read
            assert service.telemetry.slowlog.entries(1)[0]["explain"] is None
            frame = await call(
                reader, writer, 2, "slowlog", {"limit": 10, "explain": True}
            )
            result = frame["result"]
            assert result["threshold_ms"] == 0.0
            assert result["total"] >= 1
            entry = next(
                e for e in result["entries"] if e["trace"] == "slow-1"
            )
            assert entry["latency_ms"] >= 0.0
            assert entry["explain"] is not None
            assert entry["explain"]["kind"].startswith("window")
            # ... and the plan is cached on the ring entry
            cached = next(
                e
                for e in service.telemetry.slowlog.entries(50)
                if e["trace"] == "slow-1"
            )
            assert cached["explain"] is not None

        live_service_test(scenario, config=cfg)

    def test_slowlog_explain_false_skips_plans(self):
        cfg = ServerConfig(heat_sample=1, trace_sample=1, slowlog_ms=0.0)

        async def scenario(service, reader, writer):
            await call(reader, writer, 1, "ping")
            frame = await call(
                reader, writer, 2, "slowlog", {"limit": 10, "explain": False}
            )
            for entry in frame["result"]["entries"]:
                assert entry["explain"] is None

        live_service_test(scenario, config=cfg)

    def test_admin_verbs_fail_cleanly_when_telemetry_off(self):
        cfg = ServerConfig(telemetry=False)

        async def scenario(service, reader, writer):
            for verb in ("heatmap", "slowlog", "traces"):
                frame = await call(reader, writer, 1, verb)
                assert frame["ok"] is False
                assert frame["error"]["code"] == "invalid_query"
                assert "telemetry is disabled" in frame["error"]["message"]

        live_service_test(scenario, config=cfg)

    def test_stats_reports_telemetry_state(self):
        async def scenario(service, reader, writer):
            await call(reader, writer, 1, "window", WINDOW)
            frame = await call(reader, writer, 2, "stats")
            result = frame["result"]
            assert result["telemetry"] is True
            assert result["uptime_s"] >= 0.0
            assert result["config"]["trace_sample"] == 1
            metrics = result["metrics"]
            assert metrics["server.latency_ms.window.count"] >= 1
            assert "server.live.traces_retained" in metrics

        live_service_test(scenario)


class TestPrometheusExposition:
    """Satellite: the text exporter and the scrapeable HTTP endpoint."""

    @staticmethod
    def parse_exposition(text):
        """Round-trip parse: {name or name{labels}: float value}."""
        samples = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            key, value = line.rsplit(" ", 1)
            samples[key] = float(value)
        return samples

    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("server.requests").inc(7)
        reg.gauge("server.queue_depth").set(3)
        hist = reg.histogram("server.latency_ms.window")
        for v in [1.0, 2.0, 3.0, 4.0, 100.0]:
            hist.observe(v)
        return reg

    def test_name_sanitisation(self):
        from repro.obs.export import to_prometheus_text

        reg = MetricsRegistry()
        reg.counter("server.latency-ms.p99@5m").inc()
        text = to_prometheus_text(reg)
        name = "repro_server_latency_ms_p99_5m"
        assert f"# TYPE {name} counter" in text
        assert f"{name} 1" in text
        # every exported sample name must be prometheus-legal
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            bare = line.split(" ")[0].split("{")[0]
            assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", bare), bare

    def test_histogram_renders_as_summary(self):
        from repro.obs.export import to_prometheus_text

        text = to_prometheus_text(self._registry())
        samples = self.parse_exposition(text)
        base = "repro_server_latency_ms_window"
        assert samples[f"{base}_count"] == 5.0
        assert samples[f"{base}_sum"] == pytest.approx(110.0)
        assert samples[f'{base}{{quantile="0.5"}}'] == pytest.approx(
            3.0, abs=1.0
        )
        assert samples[f'{base}{{quantile="0.99"}}'] <= 100.0
        assert f"# TYPE {base} summary" in text

    def test_http_endpoint_round_trips(self):
        server = MetricsHTTPServer(self._registry(), port=0)
        server.start()
        try:
            host, port = server.address
            body = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            )
            assert body.status == 200
            assert "text/plain" in body.headers["Content-Type"]
            samples = self.parse_exposition(body.read().decode())
            assert samples["repro_server_requests"] == 7.0
            assert samples["repro_server_queue_depth"] == 3.0
            health = urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=5
            )
            assert health.read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=5
                )
        finally:
            server.stop()

    def test_stop_is_idempotent(self):
        server = MetricsHTTPServer(MetricsRegistry(), port=0)
        server.start()
        server.stop()
        server.stop()


class TestClientTimeout:
    """Satellite: the client raises a structured timeout, never hangs."""

    def test_recv_timeout_against_silent_server(self):
        # a socket that accepts connections but never answers
        lst = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        lst.bind(("127.0.0.1", 0))
        lst.listen(1)
        host, port = lst.getsockname()
        try:
            cli = SpatialClient(host, port, timeout=0.3)
            try:
                with pytest.raises(ClientTimeoutError) as err:
                    cli.ping()
                assert err.value.op == "recv"
                assert err.value.timeout == 0.3
                assert "timed out after 0.3s" in str(err.value)
                # a timeout is a ClientError, so callers catching the
                # transport-error base class keep working
                assert isinstance(err.value, ClientError)
            finally:
                cli.close()
        finally:
            lst.close()

    def test_connect_timeout_maps(self, monkeypatch):
        def never_connects(addr, timeout=None):
            raise TimeoutError("timed out")

        monkeypatch.setattr(
            "repro.server.client.socket.create_connection", never_connects
        )
        with pytest.raises(ClientTimeoutError) as err:
            SpatialClient("203.0.113.1", 9, timeout=0.2)
        assert err.value.op == "connect"
        assert err.value.timeout == 0.2


class TestEndToEndLive:
    """The acceptance-criteria subprocess test."""

    def _spawn(self, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(REPO_ROOT, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "--serve", "127.0.0.1:0", *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        line = proc.stdout.readline()
        m = re.search(r"serving on ([\d.]+):(\d+)", line)
        assert m, f"no announce line; stderr: {proc.stderr.read()}"
        return proc, m.group(1), int(m.group(2))

    def test_traced_serving_end_to_end(self):
        proc, host, port = self._spawn(
            "--n", "20000", "--seed", "5", "--metrics-port", "0",
            "--slowlog-ms", "0.0",
        )
        try:
            mline = proc.stdout.readline()
            mm = re.search(r"metrics on http://([\d.]+):(\d+)/metrics", mline)
            assert mm, f"no metrics announce line, got {mline!r}"
            metrics_url = f"http://{mm.group(1)}:{mm.group(2)}/metrics"

            # grid is 64x64 over [0,1]^2: hammer tiles (32..33, 32..33)
            hot_window = (0.502, 0.502, 0.52, 0.52)
            with SpatialClient(host, port) as cli:
                for _ in range(40):
                    cli.window(*hot_window)
                result = cli.call(
                    "window",
                    dict(zip(("xl", "yl", "xu", "yu"), hot_window)),
                    trace="e2e-trace-1",
                )
                assert "ids" in result and "count" in result
                # trace id round-trips with per-phase timings
                assert cli.last_trace == "e2e-trace-1"
                phases = cli.last_server["phases"]
                assert set(phases) == PHASE_KEYS
                assert all(v >= 0.0 for v in phases.values())

                stats = cli.stats()
                assert stats["telemetry"] is True
                assert stats["metrics"]["server.requests"] >= 41

                heat = cli.heatmap(top=5)
                assert heat["nx"] == heat["ny"] == 64
                hot = heat["tiles"][0]
                # the hottest tile is one of the hammered window's tiles
                assert 32 <= hot["ix"] <= 33
                assert 32 <= hot["iy"] <= 33
                assert hot["scans"] > 0

                slow = cli.slowlog(limit=5)
                assert slow["threshold_ms"] == 0.0
                assert slow["total"] >= 1
                entry = slow["entries"][0]
                assert {"trace", "verb", "latency_ms", "phases"} <= set(entry)

                traces = cli.traces(limit=5)
                assert traces["total"] >= 1
                assert traces["entries"][0]["trace"]

            text = urllib.request.urlopen(metrics_url, timeout=5).read()
            samples = TestPrometheusExposition.parse_exposition(
                text.decode()
            )
            assert samples["repro_server_requests"] >= 41
            assert (
                samples['repro_server_latency_ms_window{quantile="0.5"}'] > 0
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=15)
        assert proc.returncode == 0, err

    def test_index_boot_time_recorded(self, tmp_path):
        col = make_collection(n=900, seed=21)
        path = str(tmp_path / "prebuilt.npz")
        col.save(path)
        proc, host, port = self._spawn("--index", path)
        try:
            with SpatialClient(host, port) as cli:
                metrics = cli.stats()["metrics"]
                assert metrics["server.boot.read_ms"] > 0.0
                assert metrics["server.boot.build_ms"] > 0.0
                assert (
                    metrics["server.boot.total_ms"]
                    >= metrics["server.boot.read_ms"]
                )
        finally:
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=15)
        assert proc.returncode == 0, err

    def test_telemetry_off_serves_and_refuses_admin(self):
        proc, host, port = self._spawn("--n", "1000", "--telemetry", "off")
        try:
            with SpatialClient(host, port) as cli:
                assert cli.ping()["pong"] is True
                assert cli.last_trace is None
                assert cli.stats()["telemetry"] is False
                from repro.server.client import ServerError

                with pytest.raises(ServerError):
                    cli.heatmap()
        finally:
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=15)
        assert proc.returncode == 0, err


class TestTopShardSection:
    def test_render_includes_per_shard_rows(self):
        from repro.server.admin import _render

        stats = {
            "snapshot": 3,
            "uptime_s": 12.0,
            "telemetry": True,
            "metrics": {
                "server.requests": 40.0,
                "server.errors.degraded": 2.0,
                "server.shard.epoch_mismatch": 0.0,
                "server.shard.0.requests": 25.0,
                "server.shard.0.batches": 9.0,
                "server.shard.1.requests": 15.0,
                "server.shard.1.batches": 7.0,
            },
            "shards": {
                "count": 2,
                "local_epoch": 3,
                "epochs": [3, 3],
                "dead": [1],
                "bands": [[0, 600], [600, 1024]],
                "pids": [4001, 4002],
            },
        }
        out = _render(stats, None, 5.0, "x:1", top_k=5)
        assert "shards=2" in out
        assert "local_epoch=3" in out
        assert "degraded=2" in out
        lines = out.splitlines()
        row0 = next(ln for ln in lines if ln.strip().startswith("0 "))
        row1 = next(ln for ln in lines if ln.strip().startswith("1 "))
        assert "live" in row0 and "[0,600)" in row0 and "25" in row0
        assert "DEAD" in row1 and "[600,1024)" in row1 and "4002" in row1

    def test_render_omits_section_without_shards(self):
        from repro.server.admin import _render

        out = _render(
            {"snapshot": 1, "telemetry": False, "metrics": {}},
            None,
            None,
            "x:1",
            top_k=5,
        )
        assert "shards=" not in out
