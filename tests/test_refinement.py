"""Tests for the refinement engine (Section V) against exact geometries."""

import pytest

from repro.datasets import (
    generate_disk_queries,
    generate_tiger_standin,
    generate_window_queries,
)
from repro.errors import InvalidQueryError
from repro.geometry import (
    geometry_intersects_disk,
    geometry_intersects_window,
)
from repro.core import RefinementBreakdown, RefinementEngine, TwoLayerGrid
from repro.stats import QueryStats

from conftest import ids_set


@pytest.fixture(scope="module")
def roads():
    return generate_tiger_standin("ROADS", scale=2.5e-4, with_geometries=True, seed=31)


@pytest.fixture(scope="module")
def engine(roads):
    index = TwoLayerGrid.build(roads, partitions_per_dim=32)
    return RefinementEngine(index, roads)


def exact_window_truth(data, window) -> set[int]:
    return {
        i
        for i in range(len(data))
        if geometry_intersects_window(data.geometries[i], window)
    }


def exact_disk_truth(data, q) -> set[int]:
    return {
        i
        for i in range(len(data))
        if geometry_intersects_disk(data.geometries[i], q.cx, q.cy, q.radius)
    }


class TestWindowRefinement:
    @pytest.mark.parametrize("mode", ["simple", "refavoid", "refavoid_plus"])
    def test_all_modes_agree_with_exact_truth(self, roads, engine, mode):
        for w in generate_window_queries(roads, 12, 0.1, seed=32):
            got = engine.window(w, mode)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == exact_window_truth(roads, w)

    def test_modes_agree_with_each_other(self, roads, engine):
        for w in generate_window_queries(roads, 8, 0.5, seed=33):
            results = {
                mode: ids_set(engine.window(w, mode))
                for mode in ("simple", "refavoid", "refavoid_plus")
            }
            assert results["simple"] == results["refavoid"] == results["refavoid_plus"]

    def test_unknown_mode_rejected(self, engine, roads):
        (w,) = generate_window_queries(roads, 1, 0.1, seed=34)
        with pytest.raises(InvalidQueryError):
            engine.window(w, "extreme")

    def test_mismatched_index_rejected(self, roads):
        short_index = TwoLayerGrid.build(roads.slice(0, 10), partitions_per_dim=4)
        with pytest.raises(InvalidQueryError):
            RefinementEngine(short_index, roads)


class TestRefinementAvoidance:
    def test_over_90_percent_avoided(self, roads, engine):
        # The Fig. 6 claim: RefAvoid certifies > 90% of candidates.
        breakdown = RefinementBreakdown()
        for w in generate_window_queries(roads, 15, 0.1, seed=35):
            engine.window(w, "refavoid", breakdown=breakdown)
        assert breakdown.avoided_fraction > 0.9

    def test_simple_avoids_nothing(self, roads, engine):
        breakdown = RefinementBreakdown()
        for w in generate_window_queries(roads, 5, 0.1, seed=36):
            engine.window(w, "simple", breakdown=breakdown)
        assert breakdown.refinements_avoided == 0
        assert breakdown.refinement_tests == breakdown.candidates

    def test_refavoid_plus_uses_fewer_comparisons(self, roads, engine):
        s_plain, s_plus = QueryStats(), QueryStats()
        for w in generate_window_queries(roads, 10, 0.1, seed=37):
            engine.window(w, "refavoid", stats=s_plain)
            engine.window(w, "refavoid_plus", stats=s_plus)
        assert (
            s_plus.secondary_filter_comparisons < s_plain.secondary_filter_comparisons
        )

    def test_breakdown_accounting_consistent(self, roads, engine):
        breakdown = RefinementBreakdown()
        for w in generate_window_queries(roads, 5, 0.1, seed=38):
            engine.window(w, "refavoid_plus", breakdown=breakdown)
        assert breakdown.queries == 5
        assert (
            breakdown.refinements_avoided + breakdown.refinement_tests
            == breakdown.candidates
        )
        assert breakdown.total_time >= breakdown.refinement_time

    def test_breakdown_merge(self):
        a = RefinementBreakdown(filtering_time=1.0, candidates=10, queries=1)
        b = RefinementBreakdown(filtering_time=2.0, candidates=5, queries=2)
        a.merge(b)
        assert a.filtering_time == 3.0 and a.candidates == 15 and a.queries == 3


class TestDiskRefinement:
    @pytest.mark.parametrize("mode", ["simple", "refavoid"])
    def test_agrees_with_exact_truth(self, roads, engine, mode):
        for q in generate_disk_queries(roads, 10, 0.1, seed=39):
            got = engine.disk(q, mode)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == exact_disk_truth(roads, q)

    def test_refavoid_plus_not_applicable(self, roads, engine):
        (q,) = generate_disk_queries(roads, 1, 0.1, seed=40)
        with pytest.raises(InvalidQueryError):
            engine.disk(q, "refavoid_plus")

    def test_disk_avoidance_fraction(self, roads, engine):
        breakdown = RefinementBreakdown()
        for q in generate_disk_queries(roads, 10, 0.1, seed=41):
            engine.disk(q, "refavoid", breakdown=breakdown)
        assert breakdown.avoided_fraction > 0.8


class TestMbrOnlyDatasets:
    def test_refinement_degenerates_gracefully(self, uniform_data):
        # Without exact geometries every candidate is its own MBR; all
        # modes must equal the MBR-level brute force.
        index = TwoLayerGrid.build(uniform_data, partitions_per_dim=16)
        engine = RefinementEngine(index, uniform_data)
        for w in generate_window_queries(uniform_data, 8, 1.0, seed=42):
            truth = ids_set(uniform_data.brute_force_window(w))
            for mode in ("simple", "refavoid", "refavoid_plus"):
                assert ids_set(engine.window(w, mode)) == truth
