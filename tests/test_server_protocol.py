"""Protocol round-trips for every verb and every structured error."""

import json

import pytest

from repro.errors import ProtocolError
from repro.server.protocol import (
    ERROR_CODES,
    VERBS,
    decode_request,
    decode_response,
    encode_error,
    encode_request,
    encode_response,
)

#: one representative valid argument set per verb.
VALID_ARGS = {
    "ping": {},
    "window": {"xl": 0.1, "yl": 0.2, "xu": 0.3, "yu": 0.4},
    "disk": {"cx": 0.5, "cy": 0.5, "radius": 0.1},
    "knn": {"cx": 0.5, "cy": 0.5, "k": 10},
    "count": {"xl": 0.1, "yl": 0.2, "xu": 0.3, "yu": 0.4},
    "insert": {"xl": 0.1, "yl": 0.2, "xu": 0.3, "yu": 0.4},
    "delete": {"id": 17},
    "describe": {},
    "explain": {"kind": "window", "xl": 0.1, "yl": 0.2, "xu": 0.3, "yu": 0.4},
    "stats": {},
    "heatmap": {"top": 5},
    "slowlog": {"limit": 10, "explain": False},
    "traces": {"limit": 10},
}


class TestRequestRoundTrip:
    @pytest.mark.parametrize("verb", sorted(VERBS))
    def test_every_verb_round_trips(self, verb):
        frame = encode_request(7, verb, VALID_ARGS[verb])
        assert frame.endswith(b"\n")
        req = decode_request(frame)
        assert req.id == 7
        assert req.verb == verb
        for key, value in VALID_ARGS[verb].items():
            assert req.args[key] == value

    def test_string_ids_allowed(self):
        req = decode_request(encode_request("req-abc", "ping"))
        assert req.id == "req-abc"

    def test_defaults_are_filled(self):
        req = decode_request(encode_request(1, "window", VALID_ARGS["window"]))
        assert req.args["predicate"] == "intersects"

    def test_within_predicate_accepted(self):
        args = dict(VALID_ARGS["window"], predicate="within")
        req = decode_request(encode_request(1, "window", args))
        assert req.args["predicate"] == "within"

    @pytest.mark.parametrize("kind", ["window", "disk", "knn"])
    def test_explain_kinds(self, kind):
        args = {"window": VALID_ARGS["explain"],
                "disk": {"kind": "disk", **VALID_ARGS["disk"]},
                "knn": {"kind": "knn", **VALID_ARGS["knn"]}}[kind]
        req = decode_request(encode_request(1, "explain", args))
        assert req.args["kind"] == kind


class TestRequestValidation:
    @pytest.mark.parametrize(
        "line",
        [
            b"not json\n",
            b"[1, 2, 3]\n",
            b'"just a string"\n',
            b'{"verb": "ping"}\n',                      # missing id
            b'{"id": true, "verb": "ping"}\n',          # bool id
            b'{"id": 1}\n',                             # missing verb
            b'{"id": 1, "verb": 42}\n',                 # non-string verb
            b'{"id": 1, "verb": "ping", "args": []}\n', # args not an object
            b"\xff\xfe\n",                              # not UTF-8
        ],
    )
    def test_malformed_frames(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_unknown_verb_carries_finer_code(self):
        with pytest.raises(ProtocolError) as exc:
            decode_request(b'{"id": 1, "verb": "teleport"}\n')
        assert getattr(exc.value, "code", None) == "unknown_verb"

    def test_missing_required_argument(self):
        with pytest.raises(ProtocolError, match="missing required"):
            decode_request(
                encode_request(1, "window", {"xl": 0.1, "yl": 0.2, "xu": 0.3})
            )

    def test_unknown_argument_rejected(self):
        args = dict(VALID_ARGS["window"], bogus=1)
        with pytest.raises(ProtocolError, match="unknown argument"):
            decode_request(encode_request(1, "window", args))

    def test_wrong_argument_type(self):
        args = dict(VALID_ARGS["knn"], k="ten")
        with pytest.raises(ProtocolError, match="must be an integer"):
            decode_request(encode_request(1, "knn", args))

    def test_bool_is_not_a_number(self):
        args = dict(VALID_ARGS["window"], xl=True)
        with pytest.raises(ProtocolError, match="must be a number"):
            decode_request(encode_request(1, "window", args))

    def test_bad_predicate_value(self):
        args = dict(VALID_ARGS["window"], predicate="touches")
        with pytest.raises(ProtocolError, match="predicate"):
            decode_request(encode_request(1, "window", args))

    def test_explain_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown kind"):
            decode_request(encode_request(1, "explain", {"kind": "join"}))

    def test_explain_missing_kind_args(self):
        with pytest.raises(ProtocolError, match="missing required"):
            decode_request(
                encode_request(1, "explain", {"kind": "disk", "cx": 0.5})
            )


class TestResponses:
    def test_success_round_trip(self):
        payload = encode_response(3, {"ids": [1, 2], "count": 2},
                                  {"snapshot": 4, "batch_size": 8})
        frame = decode_response(payload)
        assert frame["ok"] is True
        assert frame["id"] == 3
        assert frame["result"]["ids"] == [1, 2]
        assert frame["server"]["batch_size"] == 8

    @pytest.mark.parametrize("code", ERROR_CODES)
    def test_every_error_code_round_trips(self, code):
        payload = encode_error(9, code, "boom", retry_after_ms=25)
        frame = decode_response(payload)
        assert frame["ok"] is False
        assert frame["error"]["code"] == code
        assert frame["error"]["message"] == "boom"
        assert frame["error"]["retry_after_ms"] == 25

    def test_error_without_retry_hint_omits_key(self):
        frame = decode_response(encode_error(9, "internal", "boom"))
        assert "retry_after_ms" not in frame["error"]

    def test_unknown_error_code_refused(self):
        with pytest.raises(ValueError):
            encode_error(1, "everything_is_fine", "nope")

    def test_null_id_for_undecodable_requests(self):
        frame = decode_response(encode_error(None, "bad_request", "bad"))
        assert frame["id"] is None

    def test_malformed_response_raises(self):
        with pytest.raises(ProtocolError):
            decode_response(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_response(json.dumps({"id": 1}).encode())

    def test_frames_are_single_lines(self):
        payload = encode_response(1, {"text": "line1\nline2"})
        assert payload.count(b"\n") == 1
