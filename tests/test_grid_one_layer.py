"""Tests for the 1-layer baseline grid and its deduplication techniques."""

import numpy as np
import pytest

from repro.datasets import generate_disk_queries, generate_window_queries
from repro.errors import InvalidGridError
from repro.geometry import Rect
from repro.grid import ActiveBorder, OneLayerGrid
from repro.stats import QueryStats

from conftest import ids_set


@pytest.fixture(scope="module", params=["refpoint", "hash", "active_border"])
def dedup_mode(request):
    return request.param


class TestBuildAndIntrospection:
    def test_replica_count_matches_replication(self, uniform_data):
        index = OneLayerGrid.build(uniform_data, partitions_per_dim=16)
        assert index.replica_count >= len(uniform_data)
        assert len(index) == len(uniform_data)

    def test_rejects_unknown_dedup(self, uniform_data):
        with pytest.raises(InvalidGridError):
            OneLayerGrid.build(uniform_data, dedup="bloom")

    def test_repr_mentions_grid(self, uniform_data):
        index = OneLayerGrid.build(uniform_data, partitions_per_dim=8)
        assert "8x8" in repr(index)

    def test_nonempty_tiles_bounded(self, uniform_data):
        index = OneLayerGrid.build(uniform_data, partitions_per_dim=8)
        assert 0 < index.nonempty_tiles <= 64

    def test_nbytes_positive(self, uniform_data):
        assert OneLayerGrid.build(uniform_data, partitions_per_dim=8).nbytes > 0

    def test_tile_table_access(self, tiny_data):
        index = OneLayerGrid.build(tiny_data, partitions_per_dim=4)
        table = index.tile_table(0, 0)
        assert table is not None and len(table) > 0

    def test_tile_table_out_of_range(self, tiny_data):
        from repro.errors import IndexStateError

        index = OneLayerGrid.build(tiny_data, partitions_per_dim=4)
        with pytest.raises(IndexStateError):
            index.tile_table(4, 0)


class TestWindowQueries:
    def test_matches_brute_force_all_dedups(self, uniform_data, dedup_mode):
        index = OneLayerGrid.build(uniform_data, partitions_per_dim=16, dedup=dedup_mode)
        for w in generate_window_queries(uniform_data, 30, 1.0, seed=1):
            got = index.window_query(w)
            assert len(got) == len(ids_set(got)), "duplicates leaked"
            assert ids_set(got) == ids_set(uniform_data.brute_force_window(w))

    def test_matches_brute_force_zipf(self, zipf_data, dedup_mode):
        index = OneLayerGrid.build(zipf_data, partitions_per_dim=16, dedup=dedup_mode)
        for w in generate_window_queries(zipf_data, 30, 0.5, seed=2):
            got = index.window_query(w)
            assert ids_set(got) == ids_set(zipf_data.brute_force_window(w))

    def test_window_on_tile_boundary(self, tiny_data, dedup_mode):
        index = OneLayerGrid.build(tiny_data, partitions_per_dim=4, dedup=dedup_mode)
        w = Rect(0.25, 0.25, 0.5, 0.5)  # aligned with tile borders
        got = index.window_query(w)
        assert len(got) == len(ids_set(got))
        assert ids_set(got) == ids_set(tiny_data.brute_force_window(w))

    def test_degenerate_window(self, tiny_data):
        index = OneLayerGrid.build(tiny_data, partitions_per_dim=4)
        got = index.window_query(Rect(0.5, 0.5, 0.5, 0.5))
        assert ids_set(got) == ids_set(
            tiny_data.brute_force_window(Rect(0.5, 0.5, 0.5, 0.5))
        )

    def test_window_beyond_domain(self, tiny_data):
        index = OneLayerGrid.build(tiny_data, partitions_per_dim=4)
        w = Rect(-1.0, -1.0, 2.0, 2.0)
        assert ids_set(index.window_query(w)) == set(range(len(tiny_data)))

    def test_empty_result(self, tiny_data):
        index = OneLayerGrid.build(tiny_data, partitions_per_dim=4)
        # A thin sliver that avoids every rectangle except the full-cover one.
        got = index.window_query(Rect(0.6, 0.05, 0.65, 0.06))
        assert ids_set(got) == {4}

    def test_empty_index(self):
        from repro.datasets import RectDataset

        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        index = OneLayerGrid.build(empty, partitions_per_dim=4)
        assert index.window_query(Rect(0, 0, 1, 1)).shape[0] == 0


class TestDuplicateAccounting:
    def test_duplicates_are_generated_then_eliminated(self, uniform_data):
        # The baseline *does* generate duplicates (unlike the 2-layer index).
        index = OneLayerGrid.build(uniform_data, partitions_per_dim=16)
        stats = QueryStats()
        for w in generate_window_queries(uniform_data, 20, 1.0, seed=3):
            index.window_query(w, stats)
        assert stats.duplicates_generated > 0
        assert stats.dedup_checks > 0

    def test_hash_mode_counts_duplicates(self, uniform_data):
        index = OneLayerGrid.build(uniform_data, partitions_per_dim=16, dedup="hash")
        stats = QueryStats()
        for w in generate_window_queries(uniform_data, 20, 1.0, seed=3):
            index.window_query(w, stats)
        assert stats.duplicates_generated > 0

    def test_covered_tiles_need_no_comparisons(self, uniform_data):
        # Interior (covered) tiles contribute zero comparisons (IV-B), so
        # a large window averages well under the naive 4 per rectangle —
        # only the query's boundary tiles compare at all.
        index = OneLayerGrid.build(uniform_data, partitions_per_dim=16)
        stats = QueryStats()
        index.window_query(Rect(0.05, 0.05, 0.95, 0.95), stats)
        assert 0 < stats.comparisons < stats.rects_scanned

    def test_active_border_stays_small(self, uniform_data):
        border = ActiveBorder()
        index = OneLayerGrid.build(
            uniform_data, partitions_per_dim=16, dedup="active_border"
        )
        # Smoke: big query exercises row eviction without growing unbounded.
        index.window_query(Rect(0.1, 0.1, 0.9, 0.9))
        assert border.max_size == 0  # fresh instance unused, sanity only


class TestActiveBorderUnit:
    def test_duplicate_suppressed(self):
        border = ActiveBorder()
        border.start_row(0)
        assert border.report(7, last_row=1, extends_later=True)
        assert not border.report(7, last_row=1, extends_later=True)

    def test_same_row_extension_tracked(self):
        border = ActiveBorder()
        border.start_row(0)
        assert border.report(1, last_row=0, extends_later=True)
        assert not border.report(1, last_row=0, extends_later=True)

    def test_eviction_after_row_advance(self):
        border = ActiveBorder()
        border.start_row(0)
        border.report(1, last_row=0, extends_later=True)
        border.report(2, last_row=5, extends_later=True)
        border.start_row(1)
        assert len(border) == 1  # id 1 evicted, id 2 retained

    def test_non_extending_never_stored(self):
        border = ActiveBorder()
        border.start_row(0)
        assert border.report(3, last_row=0, extends_later=False)
        assert len(border) == 0


class TestDiskQueries:
    def test_matches_brute_force(self, uniform_data):
        index = OneLayerGrid.build(uniform_data, partitions_per_dim=16)
        for q in generate_disk_queries(uniform_data, 30, 1.0, seed=4):
            got = index.disk_query(q)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == ids_set(
                uniform_data.brute_force_disk(q.cx, q.cy, q.radius)
            )

    def test_small_disk(self, tiny_data):
        from repro.datasets import DiskQuery

        index = OneLayerGrid.build(tiny_data, partitions_per_dim=4)
        q = DiskQuery(0.5, 0.5, 0.01)
        assert ids_set(index.disk_query(q)) == ids_set(
            tiny_data.brute_force_disk(0.5, 0.5, 0.01)
        )

    def test_disk_covering_everything(self, tiny_data):
        from repro.datasets import DiskQuery

        index = OneLayerGrid.build(tiny_data, partitions_per_dim=4)
        q = DiskQuery(0.5, 0.5, 2.0)
        assert ids_set(index.disk_query(q)) == set(range(len(tiny_data)))


class TestInserts:
    def test_insert_then_query(self, tiny_data):
        index = OneLayerGrid.build(tiny_data, partitions_per_dim=4)
        new_id = index.insert(Rect(0.6, 0.6, 0.65, 0.65))
        assert new_id == len(tiny_data)
        got = index.window_query(Rect(0.59, 0.59, 0.66, 0.66))
        assert new_id in ids_set(got)

    def test_insert_spanning_rect_no_duplicates(self, tiny_data):
        index = OneLayerGrid.build(tiny_data, partitions_per_dim=4)
        new_id = index.insert(Rect(0.2, 0.2, 0.8, 0.8))
        got = index.window_query(Rect(0.0, 0.0, 1.0, 1.0))
        assert sorted(got.tolist()).count(new_id) == 1

    def test_insert_into_empty_grid(self):
        from repro.grid import GridPartitioner

        index = OneLayerGrid(GridPartitioner(4, 4))
        index.insert(Rect(0.1, 0.1, 0.2, 0.2))
        assert ids_set(index.window_query(Rect(0, 0, 1, 1))) == {0}
