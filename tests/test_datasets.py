"""Unit tests for the datasets package: container, generators, workloads, IO."""

import math

import numpy as np
import pytest

from repro.datasets import (
    ASPECT_RATIO_RANGE,
    RectDataset,
    TIGER_SPECS,
    DiskQuery,
    generate_disk_queries,
    generate_synthetic,
    generate_tiger_standin,
    generate_uniform_rects,
    generate_window_queries,
    generate_zipf_rects,
    load_dataset,
    load_roads,
    save_dataset,
)
from repro.errors import DatasetError, InvalidQueryError
from repro.geometry import LineString, Polygon, Rect


class TestRectDataset:
    def test_from_rects_roundtrip(self):
        rects = [Rect(0, 0, 1, 1), Rect(0.2, 0.3, 0.4, 0.5)]
        data = RectDataset.from_rects(rects)
        assert len(data) == 2
        assert data.rect(1) == rects[1]

    def test_iteration(self):
        rects = [Rect(0, 0, 1, 1), Rect(0.1, 0.1, 0.2, 0.2)]
        assert list(RectDataset.from_rects(rects)) == rects

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DatasetError):
            RectDataset(np.zeros(3), np.zeros(2), np.ones(3), np.ones(3))

    def test_inverted_rect_rejected(self):
        with pytest.raises(DatasetError):
            RectDataset(np.array([0.5]), np.array([0.0]), np.array([0.1]), np.array([1.0]))

    def test_nan_rejected(self):
        with pytest.raises(DatasetError):
            RectDataset(
                np.array([np.nan]), np.array([0.0]), np.array([1.0]), np.array([1.0])
            )

    def test_geometry_count_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            RectDataset.from_rects([Rect(0, 0, 1, 1)], geometries=[])

    def test_from_geometries_mbrs_match(self):
        geoms = [
            LineString([(0.1, 0.2), (0.5, 0.8)]),
            Polygon([(0, 0), (0.3, 0), (0.3, 0.4)]),
        ]
        data = RectDataset.from_geometries(geoms)
        for i, g in enumerate(geoms):
            assert data.rect(i) == g.mbr()
        assert data.geometry(0) is geoms[0]

    def test_geometry_defaults_to_rect(self):
        data = RectDataset.from_rects([Rect(0, 0, 1, 1)])
        assert data.geometry(0) == Rect(0, 0, 1, 1)

    def test_dataset_mbr(self):
        data = RectDataset.from_rects([Rect(0.1, 0.2, 0.3, 0.4), Rect(0.5, 0.0, 0.9, 0.1)])
        assert data.mbr() == Rect(0.1, 0.0, 0.9, 0.4)

    def test_empty_mbr_raises(self):
        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        with pytest.raises(DatasetError):
            empty.mbr()

    def test_average_extents(self):
        data = RectDataset.from_rects([Rect(0, 0, 0.2, 0.4), Rect(0, 0, 0.4, 0.2)])
        assert data.average_extents() == (pytest.approx(0.3), pytest.approx(0.3))

    def test_slice_and_take(self):
        data = generate_uniform_rects(100, seed=1)
        part = data.slice(10, 20)
        assert len(part) == 10
        assert part.rect(0) == data.rect(10)
        picked = data.take(np.array([5, 50, 99]))
        assert picked.rect(1) == data.rect(50)

    def test_brute_force_window_matches_naive(self):
        data = generate_uniform_rects(500, area=1e-3, seed=3)
        w = Rect(0.4, 0.4, 0.6, 0.6)
        expected = {i for i in range(len(data)) if data.rect(i).intersects(w)}
        assert set(data.brute_force_window(w).tolist()) == expected

    def test_brute_force_disk_matches_naive(self):
        from repro.geometry import min_dist_point_rect

        data = generate_uniform_rects(500, area=1e-3, seed=3)
        expected = {
            i
            for i in range(len(data))
            if min_dist_point_rect(0.5, 0.5, data.rect(i)) <= 0.2
        }
        assert set(data.brute_force_disk(0.5, 0.5, 0.2).tolist()) == expected


class TestSyntheticGenerators:
    def test_cardinality(self):
        assert len(generate_uniform_rects(1234, seed=0)) == 1234

    def test_deterministic_by_seed(self):
        a = generate_uniform_rects(100, seed=5)
        b = generate_uniform_rects(100, seed=5)
        assert np.array_equal(a.xl, b.xl)

    def test_equal_area_property(self):
        area = 1e-6
        data = generate_uniform_rects(200, area=area, seed=2)
        got = (data.xu - data.xl) * (data.yu - data.yl)
        assert np.allclose(got, area, rtol=1e-9)

    def test_aspect_ratio_range(self):
        data = generate_uniform_rects(500, area=1e-6, seed=2)
        ratio = (data.xu - data.xl) / (data.yu - data.yl)
        lo, hi = ASPECT_RATIO_RANGE
        assert np.all(ratio >= lo * 0.999) and np.all(ratio <= hi * 1.001)

    def test_zero_area_gives_points(self):
        data = generate_uniform_rects(50, area=0.0, seed=2)
        assert np.all(data.xl == data.xu) and np.all(data.yl == data.yu)

    def test_inside_unit_square(self):
        for gen in (generate_uniform_rects, generate_zipf_rects):
            data = gen(300, area=1e-4, seed=9)
            assert data.xl.min() >= 0 and data.yu.max() <= 1

    def test_zipf_is_skewed_towards_origin(self):
        uniform = generate_uniform_rects(5000, area=0, seed=1)
        zipf = generate_zipf_rects(5000, area=0, seed=1)
        assert zipf.xl.mean() < uniform.xl.mean() / 2

    def test_negative_cardinality_rejected(self):
        with pytest.raises(DatasetError):
            generate_uniform_rects(-1)

    def test_negative_area_rejected(self):
        with pytest.raises(DatasetError):
            generate_uniform_rects(10, area=-1e-6)

    def test_bad_zipf_parameter_rejected(self):
        with pytest.raises(DatasetError):
            generate_zipf_rects(10, a=0.0)

    def test_dispatch(self):
        assert len(generate_synthetic(10, distribution="uniform", seed=0)) == 10
        assert len(generate_synthetic(10, distribution="zipf", seed=0)) == 10
        with pytest.raises(DatasetError):
            generate_synthetic(10, distribution="gaussian")


class TestTigerStandins:
    def test_cardinality_scaling(self):
        data = generate_tiger_standin("ROADS", scale=1e-4, seed=1)
        assert len(data) == round(TIGER_SPECS["ROADS"].paper_cardinality * 1e-4)

    def test_average_extents_near_published(self):
        data = generate_tiger_standin("EDGES", scale=2e-4, seed=1)
        spec = TIGER_SPECS["EDGES"]
        wx, wy = data.average_extents()
        assert wx == pytest.approx(spec.avg_x_extent, rel=0.25)
        assert wy == pytest.approx(spec.avg_y_extent, rel=0.25)

    def test_roads_geometries_are_linestrings(self):
        data = generate_tiger_standin("ROADS", scale=2e-5, with_geometries=True, seed=1)
        assert all(isinstance(g, LineString) for g in data.geometries)

    def test_edges_geometries_are_polygons(self):
        data = generate_tiger_standin("EDGES", scale=1e-5, with_geometries=True, seed=1)
        assert all(isinstance(g, Polygon) for g in data.geometries)

    def test_tiger_geometries_are_mixed(self):
        data = generate_tiger_standin("TIGER", scale=1e-5, with_geometries=True, seed=1)
        kinds = {type(g) for g in data.geometries}
        assert kinds == {LineString, Polygon}

    def test_geometry_mbrs_match_dataset(self):
        data = generate_tiger_standin("ROADS", scale=2e-5, with_geometries=True, seed=1)
        for i in range(len(data)):
            mbr = data.geometries[i].mbr()
            assert mbr.xl == pytest.approx(data.xl[i], abs=1e-9)
            assert mbr.yu == pytest.approx(data.yu[i], abs=1e-9)

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            generate_tiger_standin("PARCELS")

    def test_bad_scale_rejected(self):
        with pytest.raises(DatasetError):
            generate_tiger_standin("ROADS", scale=0)

    def test_load_roads_deterministic(self):
        a = load_roads(scale=1e-4)
        b = load_roads(scale=1e-4)
        assert np.array_equal(a.xl, b.xl)


class TestQueryWorkloads:
    def test_window_count_and_area(self):
        data = generate_uniform_rects(100, seed=0)
        qs = generate_window_queries(data, 25, relative_area_percent=0.5, seed=1)
        assert len(qs) == 25
        for q in qs:
            assert q.area == pytest.approx(0.005, rel=1e-6)

    def test_windows_always_return_results(self):
        data = generate_uniform_rects(200, area=1e-6, seed=4)
        for q in generate_window_queries(data, 50, 0.1, seed=2):
            assert data.brute_force_window(q).shape[0] > 0

    def test_disks_always_return_results(self):
        data = generate_uniform_rects(200, area=1e-6, seed=4)
        for q in generate_disk_queries(data, 50, 0.1, seed=2):
            assert data.brute_force_disk(q.cx, q.cy, q.radius).shape[0] > 0

    def test_disk_radius_matches_relative_area(self):
        data = generate_uniform_rects(50, seed=0)
        (q,) = generate_disk_queries(data, 1, relative_area_percent=1.0, seed=0)
        assert math.pi * q.radius**2 == pytest.approx(0.01)

    def test_disk_query_mbr(self):
        q = DiskQuery(0.5, 0.5, 0.1)
        assert q.mbr() == Rect(0.4, 0.4, 0.6, 0.6)
        assert q.relative_area == pytest.approx(math.pi * 0.01)

    def test_negative_radius_rejected(self):
        with pytest.raises(InvalidQueryError):
            DiskQuery(0.5, 0.5, -0.1)

    def test_bad_relative_area_rejected(self):
        data = generate_uniform_rects(10, seed=0)
        with pytest.raises(InvalidQueryError):
            generate_window_queries(data, 5, relative_area_percent=0.0)
        with pytest.raises(InvalidQueryError):
            generate_disk_queries(data, 5, relative_area_percent=150.0)

    def test_empty_dataset_rejected(self):
        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        with pytest.raises(InvalidQueryError):
            generate_window_queries(empty, 5)

    def test_queries_follow_data_distribution(self):
        # Queries over zipf data should concentrate where the data does.
        data = generate_zipf_rects(2000, area=0, seed=3)
        qs = generate_window_queries(data, 200, 0.01, seed=3)
        mean_x = float(np.mean([q.center()[0] for q in qs]))
        assert mean_x < 0.35


class TestDatasetIO:
    def test_roundtrip(self, tmp_path):
        data = generate_uniform_rects(77, area=1e-5, seed=6)
        path = tmp_path / "data.npz"
        save_dataset(data, path)
        loaded = load_dataset(path)
        assert len(loaded) == 77
        assert np.array_equal(loaded.xl, data.xl)
        assert np.array_equal(loaded.yu, data.yu)

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(DatasetError):
            load_dataset(path)
