"""Integration tests: span taxonomy parity, profile(), cluster report, CLI."""

import tracemalloc

import numpy as np
import pytest

from repro.api import SpatialCollection
from repro.block import BlockIndex
from repro.core import TwoLayerGrid, TwoLayerPlusGrid
from repro.core.join import one_layer_spatial_join, two_layer_spatial_join
from repro.core.knn import knn_query
from repro.datasets import generate_uniform_rects
from repro.datasets.queries import DiskQuery
from repro.distributed import SimulatedSpatialCluster
from repro.geometry.mbr import Rect
from repro.grid import OneLayerGrid
from repro.kdtree import KDTree, TwoLayerKDTree
from repro.obs import Tracer, tracing
from repro.quadtree import MXCIFQuadTree, QuadTree, TwoLayerQuadTree
from repro.rtree import RTree
from repro.stats import QueryStats

DATA = generate_uniform_rects(3_000, area=1e-6, seed=11)
WINDOW = Rect(0.2, 0.2, 0.45, 0.45)
DISK = DiskQuery(0.5, 0.5, 0.15)

#: every window-capable index family, built once.
WINDOW_FAMILIES = [
    ("two-layer", TwoLayerGrid.build(DATA, partitions_per_dim=16)),
    ("two-layer+", TwoLayerPlusGrid.build(DATA, partitions_per_dim=16)),
    ("one-layer", OneLayerGrid.build(DATA, partitions_per_dim=16)),
    ("quad-tree", QuadTree.build(DATA)),
    ("quad-tree-2l", TwoLayerQuadTree.build(DATA)),
    ("kd-tree", KDTree.build(DATA)),
    ("kd-tree-2l", TwoLayerKDTree.build(DATA)),
    ("r-tree", RTree.build(DATA)),
    ("block", BlockIndex.build(DATA)),
    ("mxcif", MXCIFQuadTree.build(DATA)),
]

#: the subset that implements disk queries.
DISK_FAMILIES = [
    (name, index)
    for name, index in WINDOW_FAMILIES
    if hasattr(index, "disk_query") and name != "mxcif"
]

PHASES = {"filter.lookup", "filter.scan", "dedup"}


class TestSpanTaxonomyParity:
    """Every index family emits the same phase taxonomy under a query root."""

    @pytest.mark.parametrize(
        "name,index", WINDOW_FAMILIES, ids=[n for n, _ in WINDOW_FAMILIES]
    )
    def test_window_query_phases(self, name, index):
        tracer = Tracer()
        stats = QueryStats()
        with tracing.activate(tracer):
            index.window_query(WINDOW, stats)
        root = tracer.find("query.window")
        assert root is not None, f"{name}: no query.window root span"
        assert PHASES <= set(root.children), (
            f"{name}: query.window children {set(root.children)} "
            f"missing {PHASES - set(root.children)}"
        )
        assert stats.rects_scanned > 0, f"{name}: stats not wired"

    @pytest.mark.parametrize(
        "name,index", DISK_FAMILIES, ids=[n for n, _ in DISK_FAMILIES]
    )
    def test_disk_query_phases(self, name, index):
        tracer = Tracer()
        stats = QueryStats()
        with tracing.activate(tracer):
            index.disk_query(DISK, stats)
        root = tracer.find("query.disk")
        assert root is not None, f"{name}: no query.disk root span"
        assert PHASES <= set(root.children), f"{name}: missing disk phases"
        assert stats.rects_scanned > 0

    def test_spans_disjoint_when_disabled(self):
        assert tracing.active() is None
        index = WINDOW_FAMILIES[0][1]
        hits = index.window_query(WINDOW)
        assert hits.shape[0] > 0  # query still works on the fast path

    def test_results_identical_with_and_without_tracing(self):
        for name, index in WINDOW_FAMILIES:
            plain = np.sort(index.window_query(WINDOW))
            with tracing.activate(Tracer()):
                traced = np.sort(index.window_query(WINDOW))
            np.testing.assert_array_equal(plain, traced, err_msg=name)

    def test_join_spans(self):
        other = generate_uniform_rects(500, area=1e-6, seed=12)
        small = generate_uniform_rects(500, area=1e-6, seed=13)
        tracer = Tracer()
        with tracing.activate(tracer):
            two_layer_spatial_join(small, other, partitions_per_dim=8)
        root = tracer.find("query.join")
        assert root is not None
        assert {"join.partition", "filter.scan", "dedup"} <= set(root.children)

        tracer = Tracer()
        with tracing.activate(tracer):
            one_layer_spatial_join(small, other, partitions_per_dim=8)
        root = tracer.find("query.join")
        assert {"join.partition", "filter.scan", "dedup"} <= set(root.children)

    def test_knn_spans_nest_disk_queries(self):
        index = TwoLayerGrid.build(DATA, partitions_per_dim=16)
        tracer = Tracer()
        with tracing.activate(tracer):
            knn_query(index, DATA, 0.5, 0.5, 5)
        root = tracer.find("query.knn")
        assert root is not None
        assert "query.disk" in root.children
        assert "knn.rank" in root.children

    def test_two_layer_dedup_span_is_zero_work(self):
        """The paper's point, visible in the trace: two-layer grids emit a
        dedup phase that does nothing, while the 1-layer baseline spends
        real dedup work (counted via dedup_checks)."""
        two = TwoLayerGrid.build(DATA, partitions_per_dim=16)
        one = OneLayerGrid.build(DATA, partitions_per_dim=16)
        s_two, s_one = QueryStats(), QueryStats()
        with tracing.activate(Tracer()):
            two.window_query(WINDOW, s_two)
            one.window_query(WINDOW, s_one)
        assert s_two.dedup_checks == 0
        assert s_one.dedup_checks > 0


class TestDisabledOverhead:
    def test_window_query_retains_no_memory_when_disabled(self):
        """With no tracer active, the instrumented hot path must not
        accumulate memory across queries (the no-op span is a shared
        singleton; nothing per-call survives)."""
        assert tracing.active() is None
        index = TwoLayerGrid.build(DATA, partitions_per_dim=16)
        for _ in range(5):  # warm every lazy cache
            index.window_query(WINDOW)
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(50):
            index.window_query(WINDOW)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Transient arrays are freed; nothing retained per query.
        assert after - before < 4096, (
            f"disabled path retained {after - before} bytes over 50 queries"
        )


class TestCollectionProfile:
    def test_profile_report_shape(self):
        col = SpatialCollection.from_dataset(DATA, partitions_per_dim=16)
        with col.profile() as prof:
            for i in range(10):
                col.window(0.1 + 0.02 * i, 0.1, 0.3 + 0.02 * i, 0.35)
            col.disk(0.5, 0.5, 0.1)
            col.knn(0.5, 0.5, k=5)
        summary = prof.summary()
        assert summary["queries"] == 12
        lat = summary["latency_ms"]
        assert {"window", "disk", "knn"} <= set(lat)
        for kind in ("window", "disk", "knn"):
            row = lat[kind]
            assert {"p50", "p95", "p99", "count", "mean", "min", "max"} <= set(row)
            assert row["p50"] <= row["p95"] <= row["p99"]
        # Merged QueryStats counters from every profiled query.
        assert summary["stats"]["rects_scanned"] > 0
        # Per-phase wall-clock totals from the span tree.
        assert "query.window/filter.scan" in summary["phases_s"]

    def test_profile_tree_and_exports(self):
        col = SpatialCollection.from_dataset(DATA, partitions_per_dim=16)
        with col.profile() as prof:
            col.window(0.2, 0.2, 0.4, 0.4)
        tree = prof.span_tree()
        assert "query.window" in tree and "filter.scan" in tree
        prom = prof.to_prometheus()
        assert "repro_query_window_latency_ms" in prom
        parsed = [r for r in prof.events(meta={"run": "x"})]
        assert any(r.get("type") == "span" for r in parsed)

    def test_profile_restores_fast_path(self):
        col = SpatialCollection.from_dataset(DATA, partitions_per_dim=16)
        with col.profile():
            pass
        assert tracing.active() is None
        assert col._profile is None

    def test_stats_arg_still_filled_under_profile(self):
        col = SpatialCollection.from_dataset(DATA, partitions_per_dim=16)
        stats = QueryStats()
        with col.profile():
            col.window(0.2, 0.2, 0.4, 0.4, stats=stats)
        assert stats.rects_scanned > 0


class TestClusterReport:
    def test_cluster_report_aggregates_workers(self):
        cluster = SimulatedSpatialCluster(DATA, partitions_per_dim=4)
        stats = QueryStats()
        for i in range(6):
            cluster.window_query(Rect(0.1 * i, 0.1, 0.1 * i + 0.3, 0.5), stats=stats)
        report = cluster.cluster_report()
        assert report["queries"] == 6
        assert report["partitions"] == cluster.partition_count
        assert report["total_tasks"] > 0
        assert report["total_compute_s"] >= 0.0
        assert report["latency_ms"]["count"] == 6
        assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
        assert report["load_skew"] >= 1.0
        # Per-worker rows carry object placement + observed load.
        busy = [w for w in report["workers"].values() if w["tasks"]]
        assert busy and all(w["objects"] > 0 for w in busy)
        assert stats.rects_scanned > 0

    def test_cluster_window_spans(self):
        cluster = SimulatedSpatialCluster(DATA, partitions_per_dim=4)
        tracer = Tracer()
        with tracing.activate(tracer):
            cluster.window_query(WINDOW)
        root = tracer.find("query.window")
        assert {"cluster.plan", "cluster.dispatch", "dedup"} <= set(root.children)

    def test_reset_metrics(self):
        cluster = SimulatedSpatialCluster(DATA, partitions_per_dim=4)
        cluster.window_query(WINDOW)
        cluster.reset_metrics()
        report = cluster.cluster_report()
        assert report["queries"] == 0
        assert report["total_tasks"] == 0


class TestCliProfile:
    def test_cli_profile_prints_span_tree(self, capsys):
        from repro.__main__ import main

        code = main(["--n", "2000", "--queries", "15", "--skip-slow", "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-phase span tree" in out
        assert "query.window" in out
        assert "filter.scan" in out
        assert "dedup" in out
        assert "p95" in out
