"""Tests for WKT interop, CSV/WKT dataset IO and exact-geometry kNN."""

import numpy as np
import pytest

from repro.datasets import (
    RectDataset,
    generate_tiger_standin,
    generate_uniform_rects,
    load_csv,
    load_wkt,
    save_csv,
    save_wkt,
)
from repro.errors import DatasetError, InvalidGeometryError, InvalidQueryError
from repro.geometry import (
    LineString,
    Point,
    Polygon,
    Rect,
    Segment,
    geometry_distance_to_point,
    geometry_from_wkt,
    geometry_to_wkt,
)
from repro.core import RefinementEngine, TwoLayerGrid


class TestWktParsing:
    def test_point_roundtrip(self):
        p = Point(0.25, 0.75)
        assert geometry_from_wkt(geometry_to_wkt(p)) == p

    def test_linestring_roundtrip(self):
        ls = LineString([(0.1, 0.2), (0.3, 0.4), (0.5, 0.1)])
        assert geometry_from_wkt(geometry_to_wkt(ls)) == ls

    def test_polygon_roundtrip(self):
        poly = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert geometry_from_wkt(geometry_to_wkt(poly)) == poly

    def test_rect_serialises_as_polygon(self):
        wkt = geometry_to_wkt(Rect(0, 0, 1, 2))
        parsed = geometry_from_wkt(wkt)
        assert isinstance(parsed, Polygon)
        assert parsed.mbr() == Rect(0, 0, 1, 2)

    def test_segment_serialises_as_linestring(self):
        wkt = geometry_to_wkt(Segment(0, 0, 1, 1))
        assert isinstance(geometry_from_wkt(wkt), LineString)

    def test_case_insensitive_and_whitespace(self):
        assert geometry_from_wkt("  point( 0.5   0.25 ) ") == Point(0.5, 0.25)
        ls = geometry_from_wkt("LineString(0 0 , 1 1,2 0)")
        assert len(ls) == 3

    def test_scientific_notation(self):
        p = geometry_from_wkt("POINT (1e-3 2.5E-4)")
        assert p == Point(1e-3, 2.5e-4)

    def test_rejects_garbage(self):
        with pytest.raises(InvalidGeometryError):
            geometry_from_wkt("CIRCLE (0 0, 1)")

    def test_rejects_malformed_coords(self):
        with pytest.raises(InvalidGeometryError):
            geometry_from_wkt("LINESTRING (0 0 0, 1 1)")

    def test_rejects_polygon_with_hole(self):
        with pytest.raises(InvalidGeometryError):
            geometry_from_wkt(
                "POLYGON ((0 0, 4 0, 4 4, 0 4), (1 1, 2 1, 2 2, 1 2))"
            )

    def test_precision_survives_roundtrip(self):
        p = Point(0.1234567890123456, 1e-15)
        got = geometry_from_wkt(geometry_to_wkt(p))
        assert got.x == p.x and got.y == p.y


class TestCsvIO:
    def test_roundtrip(self, tmp_path):
        data = generate_uniform_rects(50, area=1e-4, seed=161)
        path = tmp_path / "rects.csv"
        save_csv(data, path)
        loaded = load_csv(path)
        assert len(loaded) == 50
        assert np.allclose(loaded.xl, data.xl)
        assert np.allclose(loaded.yu, data.yu)

    def test_headerless_csv(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("0.1,0.2,0.3,0.4\n0.5,0.5,0.6,0.7\n")
        loaded = load_csv(path)
        assert len(loaded) == 2
        assert loaded.rect(0) == Rect(0.1, 0.2, 0.3, 0.4)

    def test_rejects_short_rows(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0.1,0.2,0.3\n")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_rejects_non_numeric(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("a,b,c,d\n0.1,0.2,0.3,oops\n")
        with pytest.raises(DatasetError):
            load_csv(path)


class TestWktIO:
    def test_roundtrip_with_geometries(self, tmp_path):
        data = generate_tiger_standin(
            "TIGER", scale=2e-6, with_geometries=True, seed=162
        )
        path = tmp_path / "geoms.wkt"
        save_wkt(data, path)
        loaded = load_wkt(path)
        assert len(loaded) == len(data)
        assert loaded.geometries is not None
        for i in range(len(data)):
            assert np.isclose(loaded.xl[i], data.xl[i])
            assert type(loaded.geometries[i]) is type(data.geometries[i])

    def test_mbr_only_dataset_writes_polygons(self, tmp_path):
        data = RectDataset.from_rects([Rect(0.1, 0.1, 0.2, 0.3)])
        path = tmp_path / "mbrs.wkt"
        save_wkt(data, path)
        loaded = load_wkt(path)
        assert loaded.rect(0) == Rect(0.1, 0.1, 0.2, 0.3)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.wkt"
        path.write_text("\n\n")
        with pytest.raises(DatasetError):
            load_wkt(path)

    def test_bad_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.wkt"
        path.write_text("POINT (0.1 0.2)\nnot wkt\n")
        with pytest.raises(DatasetError, match=":2"):
            load_wkt(path)


class TestGeometryDistance:
    def test_rect_distance(self):
        assert geometry_distance_to_point(Rect(0, 0, 1, 1), 2.0, 1.0) == 1.0

    def test_point_inside_polygon_is_zero(self):
        poly = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert geometry_distance_to_point(poly, 0.5, 0.5) == 0.0

    def test_linestring_distance(self):
        ls = LineString([(0, 0), (1, 0)])
        assert geometry_distance_to_point(ls, 0.5, 0.3) == pytest.approx(0.3)

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            geometry_distance_to_point("wat", 0, 0)  # type: ignore[arg-type]


class TestExactKnn:
    @pytest.fixture(scope="class")
    def engine(self):
        data = generate_tiger_standin(
            "ROADS", scale=1.5e-4, with_geometries=True, seed=163
        )
        return RefinementEngine(TwoLayerGrid.build(data, partitions_per_dim=32), data)

    def _truth(self, data, cx, cy, k):
        d = np.asarray(
            [geometry_distance_to_point(g, cx, cy) for g in data.geometries]
        )
        return np.lexsort((np.arange(len(data)), d))[:k]

    @pytest.mark.parametrize("k", [1, 4, 15])
    def test_matches_exact_brute_force(self, engine, k):
        rng = np.random.default_rng(164)
        for _ in range(8):
            cx, cy = rng.random(2)
            got = engine.knn(float(cx), float(cy), k)
            assert got.tolist() == self._truth(engine.data, cx, cy, k).tolist()

    def test_exact_reranks_deceptive_mbr(self):
        # A long diagonal's MBR contains the query point (MBR distance 0)
        # while its geometry is far; a small nearby segment must win the
        # exact ranking — the reason the refinement step exists.
        from repro.datasets import RectDataset
        from repro.core import knn_query

        diagonal = LineString([(0.0, 0.0), (1.0, 1.0)])
        nearby = LineString([(0.8, 0.15), (0.85, 0.2)])
        data = RectDataset.from_geometries([diagonal, nearby])
        index = TwoLayerGrid.build(data, partitions_per_dim=4)
        engine = RefinementEngine(index, data)
        cx, cy = 1.0, 0.0
        assert knn_query(index, data, cx, cy, 1).tolist() == [0]  # MBR lies
        assert engine.knn(cx, cy, 1).tolist() == [1]              # exact truth

    def test_k_covers_everything(self, engine):
        got = engine.knn(0.5, 0.5, len(engine.data) + 5)
        assert got.shape[0] == len(engine.data)

    def test_rejects_bad_k(self, engine):
        with pytest.raises(InvalidQueryError):
            engine.knn(0.5, 0.5, 0)

    def test_facade_exact_knn(self):
        from repro.api import SpatialCollection

        data = generate_tiger_standin(
            "ROADS", scale=5e-5, with_geometries=True, seed=166
        )
        col = SpatialCollection.from_dataset(data)
        exact = col.knn(0.5, 0.5, 3, exact=True)
        assert exact.tolist() == self._truth(data, 0.5, 0.5, 3).tolist()
