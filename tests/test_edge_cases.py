"""Edge-case and failure-injection tests across the whole library.

The happy paths are covered elsewhere; this module hammers degenerate
inputs (zero-extent objects, single-tile grids, boundary-only overlaps,
domain-edge placement) and misuse (wrong argument ranges, mismatched
sizes), the places replication/off-by-one bugs live.
"""

import numpy as np
import pytest

from repro.datasets import DiskQuery, RectDataset, generate_uniform_rects
from repro.errors import InvalidGridError
from repro.geometry import Rect
from repro.grid import GridPartitioner, OneLayerGrid, replicate
from repro.core import TwoLayerGrid, TwoLayerPlusGrid, evaluate_tiles_based
from repro.quadtree import QuadTree, TwoLayerQuadTree
from repro.rtree import RTree

from conftest import ids_set

ALL_GRIDS = (OneLayerGrid, TwoLayerGrid, TwoLayerPlusGrid)


class TestDegenerateObjects:
    @pytest.fixture(scope="class")
    def point_like(self):
        # Zero-extent rectangles exactly on tile boundaries of a 4x4 grid.
        coords = [0.0, 0.25, 0.5, 0.75, 1.0]
        rects = [Rect(x, y, x, y) for x in coords for y in coords]
        return RectDataset.from_rects(rects)

    @pytest.mark.parametrize("cls", ALL_GRIDS)
    def test_boundary_points_found_once(self, point_like, cls):
        index = cls.build(point_like, partitions_per_dim=4)
        got = index.window_query(Rect(0, 0, 1, 1))
        assert len(got) == len(ids_set(got))
        assert ids_set(got) == set(range(len(point_like)))

    @pytest.mark.parametrize("cls", ALL_GRIDS)
    def test_window_hitting_single_boundary_point(self, point_like, cls):
        index = cls.build(point_like, partitions_per_dim=4)
        got = index.window_query(Rect(0.5, 0.5, 0.5, 0.5))
        expected = ids_set(point_like.brute_force_window(Rect(0.5, 0.5, 0.5, 0.5)))
        assert ids_set(got) == expected

    def test_replication_of_boundary_points(self, point_like):
        rep = replicate(point_like, GridPartitioner(4, 4))
        # A point exactly on an interior boundary lands in one tile only
        # (half-open tiles): no replication for degenerate points.
        assert rep.total == len(point_like)

    @pytest.mark.parametrize("cls", ALL_GRIDS)
    def test_full_domain_object(self, cls):
        # One object covering everything + some normal ones.
        rects = [Rect(0, 0, 1, 1)] + [
            Rect(0.1 * i, 0.1 * i, 0.1 * i + 0.01, 0.1 * i + 0.01) for i in range(9)
        ]
        data = RectDataset.from_rects(rects)
        index = cls.build(data, partitions_per_dim=8)
        for w in (Rect(0.5, 0.5, 0.6, 0.6), Rect(0.0, 0.0, 0.01, 0.01)):
            got = index.window_query(w)
            assert got.tolist().count(0) == 1  # the big object, exactly once
            assert ids_set(got) == ids_set(data.brute_force_window(w))


class TestSingleTileGrid:
    @pytest.mark.parametrize("cls", ALL_GRIDS)
    def test_1x1_grid_equals_scan(self, uniform_data, cls):
        index = cls.build(uniform_data, partitions_per_dim=1)
        w = Rect(0.2, 0.3, 0.6, 0.7)
        assert ids_set(index.window_query(w)) == ids_set(
            uniform_data.brute_force_window(w)
        )

    def test_1x1_disk(self, uniform_data):
        index = TwoLayerGrid.build(uniform_data, partitions_per_dim=1)
        q = DiskQuery(0.5, 0.5, 0.3)
        got = index.disk_query(q)
        assert len(got) == len(ids_set(got))
        assert ids_set(got) == ids_set(
            uniform_data.brute_force_disk(0.5, 0.5, 0.3)
        )

    def test_everything_is_class_a_in_1x1(self, uniform_data):
        index = TwoLayerGrid.build(uniform_data, partitions_per_dim=1)
        counts = index.class_counts()
        assert counts["A"] == len(uniform_data)
        assert counts["B"] == counts["C"] == counts["D"] == 0


class TestDomainEdges:
    @pytest.mark.parametrize("cls", ALL_GRIDS + (QuadTree, TwoLayerQuadTree, RTree))
    def test_objects_on_far_corner(self, cls):
        rects = [
            Rect(0.999, 0.999, 1.0, 1.0),
            Rect(1.0, 1.0, 1.0, 1.0),     # degenerate at the far corner
            Rect(0.0, 0.0, 0.0, 0.0),     # degenerate at the origin
            Rect(0.0, 0.999, 0.001, 1.0),
        ]
        data = RectDataset.from_rects(rects)
        index = cls.build(data)
        got = index.window_query(Rect(0, 0, 1, 1))
        assert ids_set(got) == {0, 1, 2, 3}
        got = index.window_query(Rect(1.0, 1.0, 1.0, 1.0))
        assert ids_set(got) == ids_set(
            data.brute_force_window(Rect(1.0, 1.0, 1.0, 1.0))
        )

    @pytest.mark.parametrize("cls", ALL_GRIDS)
    def test_query_window_outside_domain(self, cls, tiny_data):
        index = cls.build(tiny_data, partitions_per_dim=4)
        got = index.window_query(Rect(1.5, 1.5, 2.0, 2.0))
        assert got.shape[0] == 0

    def test_disk_centred_outside_domain(self, tiny_data):
        index = TwoLayerGrid.build(tiny_data, partitions_per_dim=4)
        q = DiskQuery(1.5, 0.5, 0.6)
        got = index.disk_query(q)
        assert len(got) == len(ids_set(got))
        assert ids_set(got) == ids_set(
            tiny_data.brute_force_disk(1.5, 0.5, 0.6)
        )


class TestExtremeAspectRatios:
    @pytest.mark.parametrize("cls", ALL_GRIDS)
    def test_full_width_slivers(self, cls):
        # Horizontal/vertical slivers crossing the whole domain.
        rects = [Rect(0.0, 0.1 * i, 1.0, 0.1 * i + 1e-6) for i in range(10)]
        rects += [Rect(0.1 * i, 0.0, 0.1 * i + 1e-6, 1.0) for i in range(10)]
        data = RectDataset.from_rects(rects)
        index = cls.build(data, partitions_per_dim=8)
        for w in (Rect(0.45, 0.45, 0.55, 0.55), Rect(0, 0, 1, 1)):
            got = index.window_query(w)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == ids_set(data.brute_force_window(w))

    def test_sliver_replication_is_linear(self):
        data = RectDataset.from_rects([Rect(0.0, 0.5, 1.0, 0.5)])
        rep = replicate(data, GridPartitioner(8, 8))
        assert rep.total == 8  # one entry per crossed column


class TestMisuse:
    def test_negative_partitions(self, uniform_data):
        with pytest.raises(InvalidGridError):
            TwoLayerGrid.build(uniform_data, partitions_per_dim=-3)

    def test_tiles_based_with_foreign_windows_is_safe(self, uniform_data):
        index = TwoLayerGrid.build(uniform_data, partitions_per_dim=8)
        # Windows far outside the domain produce empty results, not errors.
        results = evaluate_tiles_based(index, [Rect(5, 5, 6, 6)])
        assert results[0].shape[0] == 0

    def test_stats_object_reusable_across_indexes(self, uniform_data):
        from repro.stats import QueryStats

        stats = QueryStats()
        w = Rect(0.4, 0.4, 0.6, 0.6)
        TwoLayerGrid.build(uniform_data, partitions_per_dim=8).window_query(w, stats)
        first = stats.rects_scanned
        OneLayerGrid.build(uniform_data, partitions_per_dim=8).window_query(w, stats)
        assert stats.rects_scanned > first  # accumulates, does not reset


class TestInsertHeavyWorkloads:
    @pytest.mark.parametrize("cls", ALL_GRIDS)
    def test_build_entirely_by_inserts(self, cls):
        data = generate_uniform_rects(800, area=1e-3, seed=171)
        bulk = cls.build(data, partitions_per_dim=8)
        incremental = cls.build(data.slice(0, 0), partitions_per_dim=8)
        for i in range(len(data)):
            incremental.insert(data.rect(i), i)
        w = Rect(0.2, 0.2, 0.7, 0.7)
        assert ids_set(incremental.window_query(w)) == ids_set(
            bulk.window_query(w)
        )
        assert incremental.replica_count == bulk.replica_count

    def test_interleaved_insert_delete_query(self):
        data = generate_uniform_rects(500, area=1e-3, seed=172)
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        alive = set(range(len(data)))
        rng = np.random.default_rng(173)
        for step in range(200):
            if step % 3 == 0 and alive:
                victim = int(rng.choice(sorted(alive)))
                assert index.delete(data.rect(victim), victim)
                alive.discard(victim)
            else:
                w = Rect(0.3, 0.3, 0.6, 0.6)
                got = ids_set(index.window_query(w))
                expected = ids_set(data.brute_force_window(w)) & alive
                assert got == expected
