"""Unit tests for the grid substrate: tile math and replication."""

import numpy as np
import pytest

from repro.datasets import RectDataset, generate_uniform_rects
from repro.errors import InvalidGridError
from repro.geometry import Rect
from repro.grid import (
    CLASS_A,
    CLASS_B,
    CLASS_C,
    CLASS_D,
    GridPartitioner,
    TileTable,
    group_rows,
    replicate,
)


class TestGridPartitioner:
    def test_rejects_zero_partitions(self):
        with pytest.raises(InvalidGridError):
            GridPartitioner(0, 4)

    def test_rejects_degenerate_domain(self):
        with pytest.raises(InvalidGridError):
            GridPartitioner(4, 4, domain=Rect(0, 0, 0, 1))

    def test_tile_sizes(self):
        g = GridPartitioner(4, 8)
        assert g.tile_w == pytest.approx(0.25)
        assert g.tile_h == pytest.approx(0.125)
        assert g.tile_count == 32

    def test_tile_ix_basic(self):
        g = GridPartitioner(4, 4)
        assert g.tile_ix(0.0) == 0
        assert g.tile_ix(0.24) == 0
        assert g.tile_ix(0.25) == 1  # half-open boundary
        assert g.tile_ix(0.999) == 3

    def test_tile_ix_clamping(self):
        g = GridPartitioner(4, 4)
        assert g.tile_ix(-5.0) == 0
        assert g.tile_ix(1.0) == 3  # domain max clamps to the last tile
        assert g.tile_ix(7.0) == 3

    def test_tile_id_roundtrip(self):
        g = GridPartitioner(5, 7)
        for iy in range(7):
            for ix in range(5):
                assert g.tile_coords(g.tile_id(ix, iy)) == (ix, iy)

    def test_tile_rect(self):
        g = GridPartitioner(4, 4)
        assert g.tile_rect(1, 2) == Rect(0.25, 0.5, 0.5, 0.75)

    def test_last_tile_rect_reaches_domain_edge(self):
        # 1/6 is not exact in binary: 6 * (1/6) rounds to just under 1.0,
        # which used to exclude boundary points from the last tile.
        g = GridPartitioner(6, 6)
        last = g.tile_rect(5, 5)
        assert last.xu == 1.0
        assert last.yu == 1.0

    def test_radius_zero_disk_at_domain_corner(self):
        # Regression: a radius-0 disk at (1.0, 0.0) must find the rect
        # touching that corner (the 1-ulp tile_rect gap dropped it).
        from repro.core import TwoLayerGrid
        from repro.datasets.dataset import RectDataset
        from repro.datasets.queries import DiskQuery

        data = RectDataset(
            np.array([0.9]), np.array([0.0]), np.array([1.0]), np.array([0.1])
        )
        index = TwoLayerGrid.build(data, partitions_per_dim=6)
        assert index.disk_query(DiskQuery(1.0, 0.0, 0.0)).tolist() == [0]

    def test_tile_range_for_window(self):
        g = GridPartitioner(4, 4)
        assert g.tile_range_for_window(Rect(0.1, 0.1, 0.6, 0.3)) == (0, 2, 0, 1)

    def test_tile_range_single_tile(self):
        g = GridPartitioner(4, 4)
        assert g.tile_range_for_window(Rect(0.3, 0.3, 0.4, 0.4)) == (1, 1, 1, 1)

    def test_tile_range_clamps_outside_window(self):
        g = GridPartitioner(4, 4)
        assert g.tile_range_for_window(Rect(-1, -1, 2, 2)) == (0, 3, 0, 3)

    def test_vectorised_matches_scalar(self):
        g = GridPartitioner(13, 13)
        xs = np.linspace(-0.2, 1.2, 101)
        vec = g.tile_ix_array(xs)
        for x, got in zip(xs, vec):
            assert got == g.tile_ix(float(x))

    def test_custom_domain(self):
        g = GridPartitioner(2, 2, domain=Rect(10, 20, 30, 40))
        assert g.tile_ix(19.9) == 0
        assert g.tile_ix(20.0) == 1
        assert g.tile_rect(1, 1) == Rect(20, 30, 30, 40)


class TestReplication:
    def test_single_tile_object(self):
        data = RectDataset.from_rects([Rect(0.1, 0.1, 0.2, 0.2)])
        rep = replicate(data, GridPartitioner(4, 4))
        assert rep.total == 1
        assert rep.class_codes[0] == CLASS_A

    def test_x_spanning_object(self):
        data = RectDataset.from_rects([Rect(0.1, 0.1, 0.3, 0.2)])
        rep = replicate(data, GridPartitioner(4, 4))
        assert rep.total == 2
        codes = sorted(rep.class_codes.tolist())
        assert codes == [CLASS_A, CLASS_C]

    def test_y_spanning_object(self):
        data = RectDataset.from_rects([Rect(0.1, 0.1, 0.2, 0.3)])
        rep = replicate(data, GridPartitioner(4, 4))
        assert sorted(rep.class_codes.tolist()) == [CLASS_A, CLASS_B]

    def test_quad_spanning_object(self):
        data = RectDataset.from_rects([Rect(0.2, 0.2, 0.3, 0.3)])
        rep = replicate(data, GridPartitioner(4, 4))
        assert rep.total == 4
        assert sorted(rep.class_codes.tolist()) == [CLASS_A, CLASS_B, CLASS_C, CLASS_D]

    def test_exactly_one_class_a_per_object(self):
        data = generate_uniform_rects(500, area=1e-2, seed=8)
        rep = replicate(data, GridPartitioner(8, 8))
        a_objs = rep.obj_ids[rep.class_codes == CLASS_A]
        assert sorted(a_objs.tolist()) == list(range(500))

    def test_replica_covers_all_intersecting_tiles(self):
        data = generate_uniform_rects(100, area=1e-2, seed=9)
        g = GridPartitioner(6, 6)
        rep = replicate(data, g)
        for i in range(len(data)):
            r = data.rect(i)
            tiles = set(rep.tile_ids[rep.obj_ids == i].tolist())
            expected = set()
            for iy in range(g.tile_iy(r.yl), g.tile_iy(r.yu) + 1):
                for ix in range(g.tile_ix(r.xl), g.tile_ix(r.xu) + 1):
                    expected.add(g.tile_id(ix, iy))
            assert tiles == expected

    def test_class_matches_start_tile(self):
        data = generate_uniform_rects(200, area=1e-2, seed=10)
        g = GridPartitioner(5, 5)
        rep = replicate(data, g)
        for k in range(rep.total):
            obj = int(rep.obj_ids[k])
            ix, iy = g.tile_coords(int(rep.tile_ids[k]))
            start_ix = g.tile_ix(float(data.xl[obj]))
            start_iy = g.tile_iy(float(data.yl[obj]))
            expected = 2 * (ix > start_ix) + (iy > start_iy)
            assert rep.class_codes[k] == expected

    def test_empty_dataset(self):
        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        rep = replicate(empty, GridPartitioner(4, 4))
        assert rep.total == 0

    def test_replication_ratio(self):
        data = RectDataset.from_rects([Rect(0.2, 0.2, 0.3, 0.3)])
        rep = replicate(data, GridPartitioner(4, 4))
        assert rep.replication_ratio(1) == 4.0

    def test_boundary_object_on_tile_edge(self):
        # Object ending exactly on a tile border is also assigned to the
        # next tile (closed-rect intersection semantics).
        data = RectDataset.from_rects([Rect(0.1, 0.1, 0.25, 0.2)])
        rep = replicate(data, GridPartitioner(4, 4))
        assert rep.total == 2


class TestTileTable:
    def test_empty(self):
        t = TileTable()
        assert len(t) == 0
        xl, yl, xu, yu, ids = t.columns()
        assert ids.shape == (0,)

    def test_append_then_columns(self):
        t = TileTable()
        t.append(0.1, 0.2, 0.3, 0.4, 7)
        t.append(0.5, 0.6, 0.7, 0.8, 9)
        xl, yl, xu, yu, ids = t.columns()
        assert ids.tolist() == [7, 9]
        assert xl.tolist() == [0.1, 0.5]

    def test_append_after_compact(self):
        t = TileTable(
            np.array([0.0]), np.array([0.0]), np.array([1.0]), np.array([1.0]),
            np.array([0], dtype=np.int64),
        )
        t.append(0.2, 0.2, 0.4, 0.4, 1)
        assert len(t) == 2
        assert t.columns()[4].tolist() == [0, 1]

    def test_nbytes_positive(self):
        t = TileTable()
        t.append(0, 0, 1, 1, 0)
        assert t.nbytes > 0


class TestGroupRows:
    def test_grouping(self):
        keys = np.array([3, 1, 3, 2, 1, 1], dtype=np.int64)
        groups = {k: rows.tolist() for k, rows in group_rows(keys)}
        assert set(groups) == {1, 2, 3}
        assert sorted(groups[1]) == [1, 4, 5]
        assert groups[2] == [3]

    def test_empty(self):
        assert list(group_rows(np.empty(0, dtype=np.int64))) == []
