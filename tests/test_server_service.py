"""Service behaviour: wire parity, micro-batching, backpressure, drain.

In-process tests drive a :class:`SpatialQueryService` inside one asyncio
loop; the end-to-end tests spawn ``python -m repro --serve`` and talk to
it with the stdlib client, including SIGTERM drain and ``--index`` boot.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys

import pytest

from repro.api import SpatialCollection
from repro.datasets import generate_uniform_rects
from repro.server import ServerConfig, SpatialQueryService
from repro.server.client import (
    OverloadedError,
    ServerError,
    SpatialClient,
)

from conftest import ids_set

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_collection(n=1200, seed=13):
    data = generate_uniform_rects(n, area=1e-5, seed=seed)
    return SpatialCollection.from_dataset(data, partitions_per_dim=16)


async def send(writer, req_id, verb, args=None):
    frame = {"id": req_id, "verb": verb}
    if args:
        frame["args"] = args
    writer.write((json.dumps(frame) + "\n").encode())
    await writer.drain()


async def recv(reader):
    line = await asyncio.wait_for(reader.readline(), 10.0)
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


async def call(reader, writer, req_id, verb, args=None):
    await send(writer, req_id, verb, args)
    frame = await recv(reader)
    assert frame["id"] == req_id
    return frame


def service_test(coro_fn, config=None, collection=None):
    """Run ``coro_fn(service, reader, writer)`` against a live service."""
    col = collection if collection is not None else make_collection()

    async def main():
        service = SpatialQueryService(
            col.index, col.data, config or ServerConfig()
        )
        await service.start()
        host, port = service.address
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await coro_fn(service, reader, writer)
        finally:
            writer.close()
            await service.shutdown()

    asyncio.run(main())


class TestWireParity:
    def test_all_query_verbs_match_in_process(self):
        col = make_collection()

        async def scenario(service, reader, writer):
            w = (0.3, 0.3, 0.5, 0.5)
            frame = await call(
                reader, writer, 1, "window",
                dict(zip(("xl", "yl", "xu", "yu"), w)),
            )
            assert frame["ok"]
            assert ids_set(frame["result"]["ids"]) == ids_set(col.window(*w))

            frame = await call(
                reader, writer, 2, "window",
                {**dict(zip(("xl", "yl", "xu", "yu"), w)),
                 "predicate": "within"},
            )
            assert ids_set(frame["result"]["ids"]) == ids_set(
                col.window(*w, predicate="within")
            )

            frame = await call(
                reader, writer, 3, "disk",
                {"cx": 0.5, "cy": 0.5, "radius": 0.08},
            )
            assert ids_set(frame["result"]["ids"]) == ids_set(
                col.disk(0.5, 0.5, 0.08)
            )

            frame = await call(
                reader, writer, 4, "knn", {"cx": 0.5, "cy": 0.5, "k": 9}
            )
            assert frame["result"]["ids"] == col.knn(0.5, 0.5, 9).tolist()

            frame = await call(
                reader, writer, 5, "count",
                dict(zip(("xl", "yl", "xu", "yu"), w)),
            )
            assert frame["result"]["count"] == col.count(*w)

            frame = await call(reader, writer, 6, "describe")
            local = col.describe()
            assert frame["result"]["objects"] == local["objects"]
            assert frame["result"]["replicas"] == local["replicas"]
            assert frame["result"]["class_counts"] == local["class_counts"]

            frame = await call(
                reader, writer, 7, "explain",
                {"kind": "window", **dict(zip(("xl", "yl", "xu", "yu"), w))},
            )
            local_plan = col.window(*w, explain=True).as_dict()
            assert frame["result"]["kind"] == local_plan["kind"]
            assert frame["result"]["result_count"] == local_plan["result_count"]
            assert frame["result"]["index"] == local_plan["index"]

            frame = await call(reader, writer, 8, "ping")
            assert frame["result"]["pong"] is True

        service_test(scenario, collection=col)

    def test_insert_delete_read_your_writes(self):
        async def scenario(service, reader, writer):
            probe = {"xl": 0.40, "yl": 0.40, "xu": 0.43, "yu": 0.43}
            frame = await call(
                reader, writer, 1, "insert",
                {"xl": 0.41, "yl": 0.41, "xu": 0.42, "yu": 0.42},
            )
            assert frame["ok"]
            new_id = frame["result"]["id"]
            assert frame["result"]["snapshot"] == 1
            frame = await call(reader, writer, 2, "window", probe)
            assert new_id in frame["result"]["ids"]
            frame = await call(reader, writer, 3, "delete", {"id": new_id})
            assert frame["result"]["found"] is True
            frame = await call(reader, writer, 4, "window", probe)
            assert new_id not in frame["result"]["ids"]
            frame = await call(reader, writer, 5, "delete", {"id": new_id})
            assert frame["result"]["found"] is False

        service_test(scenario)

    def test_structured_errors_over_the_wire(self):
        async def scenario(service, reader, writer):
            writer.write(b"this is not json\n")
            await writer.drain()
            frame = await recv(reader)
            assert frame["ok"] is False
            assert frame["error"]["code"] == "bad_request"
            assert frame["id"] is None

            frame = await call(reader, writer, 2, "window",
                               {"xl": 0.5, "yl": 0.5, "xu": 0.1, "yu": 0.6})
            assert frame["error"]["code"] == "invalid_query"

            await send(writer, 3, "teleport")
            frame = await recv(reader)
            assert frame["error"]["code"] == "unknown_verb"

            frame = await call(reader, writer, 4, "knn",
                               {"cx": 0.5, "cy": 0.5, "k": 0})
            assert frame["error"]["code"] == "invalid_query"

            # the connection survives all of the above
            frame = await call(reader, writer, 5, "ping")
            assert frame["ok"]

        service_test(scenario)


class TestBatchingAndBackpressure:
    def test_pipelined_requests_coalesce_into_batches(self):
        async def scenario(service, reader, writer):
            n = 24
            payload = b"".join(
                (json.dumps({
                    "id": i, "verb": "window",
                    "args": {"xl": 0.2, "yl": 0.2, "xu": 0.4, "yu": 0.4},
                }) + "\n").encode()
                for i in range(n)
            )
            writer.write(payload)
            await writer.drain()
            frames = [await recv(reader) for _ in range(n)]
            assert all(f["ok"] for f in frames)
            sizes = {f["server"]["batch_size"] for f in frames}
            assert max(sizes) > 1, "no micro-batch formed"
            # identical queries in one batch → identical results
            first = frames[0]["result"]["ids"]
            assert all(f["result"]["ids"] == first for f in frames)
            summary = service.registry.histogram("server.batch_size").summary()
            assert summary["max"] > 1

        service_test(
            scenario,
            config=ServerConfig(max_batch=32, coalesce_ms=25.0),
        )

    def test_overload_rejects_with_retry_hint(self):
        async def scenario(service, reader, writer):
            n = 40
            payload = b"".join(
                (json.dumps({
                    "id": i, "verb": "window",
                    "args": {"xl": 0.1, "yl": 0.1, "xu": 0.6, "yu": 0.6},
                }) + "\n").encode()
                for i in range(n)
            )
            writer.write(payload)
            await writer.drain()
            frames = [await recv(reader) for _ in range(n)]
            rejected = [f for f in frames if not f["ok"]]
            accepted = [f for f in frames if f["ok"]]
            assert rejected, "bounded queue never rejected"
            assert accepted, "everything was rejected"
            for f in rejected:
                assert f["error"]["code"] == "overloaded"
                assert f["error"]["retry_after_ms"] >= 1
            assert service.registry.counter("server.rejected").value == len(
                rejected
            )

        service_test(
            scenario,
            config=ServerConfig(
                queue_depth=4, max_batch=2, coalesce_ms=40.0
            ),
        )

    def test_draining_server_answers_shutting_down(self):
        async def scenario(service, reader, writer):
            service._draining = True
            frame = await call(reader, writer, 1, "ping")
            assert frame["ok"] is False
            assert frame["error"]["code"] == "shutting_down"
            service._draining = False

        service_test(scenario)

    def test_error_frames_echo_client_trace(self):
        """Every error branch echoes ``trace`` — the repro-verify RV205
        regression: drain and overload rejections used to drop it."""

        async def scenario(service, reader, writer):
            service._draining = True
            writer.write(
                (json.dumps({"id": 1, "verb": "ping", "trace": "tr-drain"})
                 + "\n").encode()
            )
            await writer.drain()
            frame = await recv(reader)
            assert frame["error"]["code"] == "shutting_down"
            assert frame["trace"] == "tr-drain"
            service._draining = False

        service_test(scenario)

    def test_overload_rejections_echo_client_trace(self):
        async def scenario(service, reader, writer):
            n = 40
            payload = b"".join(
                (json.dumps({
                    "id": i, "verb": "window", "trace": f"tr-{i}",
                    "args": {"xl": 0.1, "yl": 0.1, "xu": 0.6, "yu": 0.6},
                }) + "\n").encode()
                for i in range(n)
            )
            writer.write(payload)
            await writer.drain()
            frames = [await recv(reader) for _ in range(n)]
            rejected = [f for f in frames if not f["ok"]]
            assert rejected, "bounded queue never rejected"
            for f in rejected:
                assert f["error"]["code"] == "overloaded"
                assert f["trace"] == f"tr-{f['id']}"

        service_test(
            scenario,
            config=ServerConfig(
                queue_depth=4, max_batch=2, coalesce_ms=40.0
            ),
        )

    def test_stats_verb_exposes_server_metrics(self):
        async def scenario(service, reader, writer):
            for i in range(3):
                await call(reader, writer, i, "window",
                           {"xl": 0.2, "yl": 0.2, "xu": 0.3, "yu": 0.3})
            frame = await call(reader, writer, 99, "stats")
            metrics = frame["result"]["metrics"]
            assert metrics["server.requests"] >= 4
            assert metrics["server.requests.window"] == 3
            assert metrics["server.latency_ms.count"] >= 3
            assert metrics["server.connections"] == 1
            assert "server.batch_size.count" in metrics
            assert any(k.startswith("server.") for k in frame["result"]["spans"])

        service_test(scenario)


class TestEndToEndSubprocess:
    def _spawn(self, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(REPO_ROOT, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "--serve", "127.0.0.1:0", *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        line = proc.stdout.readline()
        m = re.search(r"serving on ([\d.]+):(\d+)", line)
        assert m, f"no announce line; stderr: {proc.stderr.read()}"
        return proc, m.group(1), int(m.group(2))

    def test_serve_matches_in_process_and_drains_on_sigterm(self):
        proc, host, port = self._spawn("--n", "1500", "--seed", "5")
        try:
            col = SpatialCollection.from_dataset(
                generate_uniform_rects(1500, area=1e-6, seed=5),
                partitions_per_dim=64,
            )
            with SpatialClient(host, port) as cli:
                assert cli.ping()["pong"] is True
                w = (0.2, 0.2, 0.45, 0.45)
                assert sorted(cli.window(*w)) == sorted(
                    col.window(*w).tolist()
                )
                assert sorted(cli.disk(0.5, 0.5, 0.1)) == sorted(
                    col.disk(0.5, 0.5, 0.1).tolist()
                )
                assert cli.knn(0.5, 0.5, 7) == col.knn(0.5, 0.5, 7).tolist()
                assert cli.count(*w) == col.count(*w)
                nid = cli.insert(0.31, 0.31, 0.32, 0.32)
                assert nid == len(col)
                assert nid in cli.window(0.30, 0.30, 0.33, 0.33)
                assert cli.delete(nid) is True
                plan = cli.explain("window", xl=w[0], yl=w[1], xu=w[2], yu=w[3])
                assert plan["kind"].startswith("window")
                stats = cli.stats()
                assert stats["metrics"]["server.requests"] > 0
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=15)
        assert proc.returncode == 0, err
        assert "drained and stopped" in out

    def test_serve_from_saved_index(self, tmp_path):
        col = make_collection(n=900, seed=21)
        path = str(tmp_path / "prebuilt.npz")
        col.save(path)
        proc, host, port = self._spawn("--index", path)
        try:
            with SpatialClient(host, port) as cli:
                d = cli.describe()
                assert d["objects"] == 900
                w = (0.25, 0.25, 0.5, 0.5)
                assert sorted(cli.window(*w)) == sorted(
                    col.window(*w).tolist()
                )
        finally:
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=15)
        assert proc.returncode == 0, err


class TestClientErrors:
    def test_client_maps_overloaded(self):
        col = make_collection(n=200)

        async def scenario(service, reader, writer):
            pass

        # exercise the sync client against a live service in a thread
        import threading

        started = threading.Event()
        stop = threading.Event()
        box = {}

        def serve():
            async def main():
                service = SpatialQueryService(
                    col.index, col.data, ServerConfig()
                )
                await service.start()
                box["addr"] = service.address
                started.set()
                while not stop.is_set():
                    await asyncio.sleep(0.01)
                await service.shutdown()

            asyncio.run(main())

        t = threading.Thread(target=serve)
        t.start()
        try:
            assert started.wait(5.0)
            host, port = box["addr"]
            with SpatialClient(host, port) as cli:
                assert cli.ping()["pong"] is True
                with pytest.raises(ServerError) as exc:
                    cli.call("window", {"xl": 1, "yl": 1, "xu": 0, "yu": 0})
                assert exc.value.code == "invalid_query"
                assert not isinstance(exc.value, OverloadedError)
        finally:
            stop.set()
            t.join()
