"""Unit tests for :mod:`repro.geometry.segment` and :mod:`repro.geometry.point`."""

import math

import pytest

from repro.errors import InvalidGeometryError
from repro.geometry import (
    Point,
    Rect,
    Segment,
    point_segment_distance,
    segment_intersects_rect,
    segments_intersect,
)
from repro.geometry.segment import on_segment, orientation


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation(0, 0, 1, 0, 1, 1) == 1

    def test_clockwise(self):
        assert orientation(0, 0, 1, 0, 1, -1) == -1

    def test_collinear(self):
        assert orientation(0, 0, 1, 1, 2, 2) == 0

    def test_on_segment_inside(self):
        assert on_segment(0.5, 0.5, 0, 0, 1, 1)

    def test_on_segment_outside(self):
        assert not on_segment(2, 2, 0, 0, 1, 1)


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect(0, 0, 1, 1, 0, 1, 1, 0)

    def test_parallel_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 0, 1, 1, 1)

    def test_shared_endpoint(self):
        assert segments_intersect(0, 0, 1, 1, 1, 1, 2, 0)

    def test_t_junction(self):
        assert segments_intersect(0, 0, 2, 0, 1, -1, 1, 0)

    def test_collinear_overlapping(self):
        assert segments_intersect(0, 0, 2, 0, 1, 0, 3, 0)

    def test_collinear_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 2, 0, 3, 0)

    def test_near_miss(self):
        assert not segments_intersect(0, 0, 1, 1, 0, 0.001, -1, 1)

    def test_degenerate_point_on_segment(self):
        assert segments_intersect(0.5, 0.5, 0.5, 0.5, 0, 0, 1, 1)

    def test_degenerate_point_off_segment(self):
        assert not segments_intersect(0.5, 0.6, 0.5, 0.6, 0, 0, 1, 1)

    def test_symmetric(self):
        args = (0.1, 0.2, 0.9, 0.8, 0.1, 0.8, 0.9, 0.2)
        assert segments_intersect(*args) == segments_intersect(*args[4:], *args[:4])


class TestPointSegmentDistance:
    def test_projection_inside(self):
        assert point_segment_distance(0.5, 1.0, 0, 0, 1, 0) == pytest.approx(1.0)

    def test_projection_clamped_to_endpoint(self):
        assert point_segment_distance(2, 1, 0, 0, 1, 0) == pytest.approx(math.sqrt(2))

    def test_on_segment_is_zero(self):
        assert point_segment_distance(0.5, 0.5, 0, 0, 1, 1) == pytest.approx(0.0)

    def test_degenerate_segment(self):
        assert point_segment_distance(1, 1, 0.5, 0.5, 0.5, 0.5) == pytest.approx(
            math.hypot(0.5, 0.5)
        )


class TestSegmentRect:
    def test_endpoint_inside(self):
        assert segment_intersects_rect(0.5, 0.5, 5, 5, Rect(0, 0, 1, 1))

    def test_passes_through(self):
        assert segment_intersects_rect(-1, 0.5, 2, 0.5, Rect(0, 0, 1, 1))

    def test_diagonal_through_corner_region(self):
        assert segment_intersects_rect(-0.5, 0.5, 0.5, 1.5, Rect(0, 0, 1, 1))

    def test_misses(self):
        assert not segment_intersects_rect(-1, -1, -0.5, 2, Rect(0, 0, 1, 1))

    def test_misses_diagonal(self):
        assert not segment_intersects_rect(1.5, 0, 3, 1.5, Rect(0, 0, 1, 1))

    def test_touches_edge(self):
        assert segment_intersects_rect(1, -1, 1, 2, Rect(0, 0, 1, 1))

    def test_axis_parallel_outside(self):
        assert not segment_intersects_rect(0, 1.1, 1, 1.1, Rect(0, 0, 1, 1))


class TestSegmentClass:
    def test_length(self):
        assert Segment(0, 0, 3, 4).length == pytest.approx(5.0)

    def test_mbr(self):
        assert Segment(1, 0, 0, 2).mbr() == Rect(0, 0, 1, 2)

    def test_intersects(self):
        assert Segment(0, 0, 1, 1).intersects(Segment(0, 1, 1, 0))

    def test_rejects_nan(self):
        with pytest.raises(InvalidGeometryError):
            Segment(float("nan"), 0, 1, 1)

    def test_distance_to_point(self):
        assert Segment(0, 0, 1, 0).distance_to_point(0.5, 2) == pytest.approx(2.0)


class TestPoint:
    def test_mbr_degenerate(self):
        p = Point(0.3, 0.7)
        assert p.mbr() == Rect(0.3, 0.7, 0.3, 0.7)

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_intersects_rect(self):
        assert Point(0.5, 0.5).intersects_rect(Rect(0, 0, 1, 1))
        assert not Point(1.5, 0.5).intersects_rect(Rect(0, 0, 1, 1))

    def test_intersects_disk_boundary(self):
        assert Point(1, 0).intersects_disk(0, 0, 1.0)
        assert not Point(1.001, 0).intersects_disk(0, 0, 1.0)

    def test_rejects_non_finite(self):
        with pytest.raises(InvalidGeometryError):
            Point(float("inf"), 0)
