"""repro-lint: every rule fires on its bad fixture, stays silent on good.

Fixtures live in ``tests/fixtures/lint`` and are linted under *virtual*
paths so each scoped rule (geometry / core / grid / server) sees a
module inside its package.  The final test asserts the repo's own
``src/repro`` tree lints clean — the same gate CI runs via
``python -m repro.analysis.lint src/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    default_rules,
    fix_unused_imports,
    github_annotation,
    lint_paths,
    lint_source,
    main,
)
from repro.analysis.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

RULE_BY_CODE = {cls.code: cls for cls in ALL_RULES}

#: virtual path per rule satisfying its scope; unscoped rules get a
#: neutral package that no scoped rule matches.
VIRTUAL_PATH = {
    "REP001": "src/repro/geometry/fixture.py",
    "REP004": "src/repro/core/fixture.py",
    "REP005": "src/repro/grid/fixture.py",
    "REP006": "src/repro/shard/fixture.py",
    "REP007": "src/repro/core/fixture.py",
    "REP105": "src/repro/core/fixture.py",
}
NEUTRAL_PATH = "src/repro/util/fixture.py"

#: finding count the bad fixture must produce under its own rule.
BAD_EXPECT = {
    "REP001": 1,  # best == 0.0
    "REP002": 3,  # time.sleep, open(), np.concatenate
    "REP003": 2,  # await under lock, time.sleep under lock
    "REP004": 2,  # operator kernel + ufunc-alias kernel
    "REP005": 1,  # window_query reaches only _store
    "REP006": 4,  # dict/list/set globals + a `global` statement
    "REP007": 2,  # np.load + np.memmap, no format helper in sight
    "REP101": 1,
    "REP102": 2,  # [] and dict()
    "REP103": 1,
    "REP104": 1,  # os imported, unused
    "REP105": 4,  # lookup params+return, Table.get params+return
}


def run_rule(code: str, source: str, path: "str | None" = None) -> list[Finding]:
    rule = RULE_BY_CODE[code]()
    return lint_source(path or VIRTUAL_PATH.get(code, NEUTRAL_PATH), source, [rule])


@pytest.mark.parametrize("code", sorted(RULE_BY_CODE))
def test_rule_fires_on_bad_fixture(code):
    source = (FIXTURES / f"{code.lower()}_bad.py").read_text()
    findings = run_rule(code, source)
    assert [f.code for f in findings] == [code] * BAD_EXPECT[code]
    assert all(f.line >= 1 and f.col >= 1 for f in findings)


@pytest.mark.parametrize("code", sorted(RULE_BY_CODE))
def test_rule_silent_on_good_fixture(code):
    source = (FIXTURES / f"{code.lower()}_good.py").read_text()
    assert run_rule(code, source) == []


@pytest.mark.parametrize("code", sorted(RULE_BY_CODE))
def test_bad_fixture_raises_no_foreign_scoped_findings(code):
    """Running *all* rules on a bad fixture only ever reports codes the
    fixture deliberately violates (the fixture's own rule chief among
    them) — rules don't misfire on each other's examples."""
    source = (FIXTURES / f"{code.lower()}_bad.py").read_text()
    path = VIRTUAL_PATH.get(code, NEUTRAL_PATH)
    findings = lint_source(path, source, default_rules())
    assert {f.code for f in findings if f.code == code}, code


class TestScoping:
    def test_scoped_rule_ignores_other_packages(self):
        source = (FIXTURES / "rep001_bad.py").read_text()
        assert run_rule("REP001", source, path="src/repro/server/fixture.py") == []

    def test_wall_clock_allowed_in_obs(self):
        source = (FIXTURES / "rep103_bad.py").read_text()
        assert run_rule("REP103", source, path="src/repro/obs/fixture.py") == []

    def test_unused_import_allowed_in_init(self):
        source = (FIXTURES / "rep104_bad.py").read_text()
        assert run_rule("REP104", source, path="src/repro/util/__init__.py") == []


class TestSuppression:
    BAD = "def t(b: float) -> bool:\n    return b == 0.0{comment}\n"
    PATH = "src/repro/geometry/fixture.py"

    def lint(self, comment: str = "", prefix: str = "") -> list[Finding]:
        source = prefix + self.BAD.format(comment=comment)
        return lint_source(self.PATH, source, default_rules())

    def test_unsuppressed_fires(self):
        assert [f.code for f in self.lint()] == ["REP001"]

    def test_line_disable(self):
        assert self.lint(comment="  # repro-lint: disable=REP001") == []

    def test_line_disable_all(self):
        assert self.lint(comment="  # repro-lint: disable=all") == []

    def test_wrong_code_does_not_suppress(self):
        findings = self.lint(comment="  # repro-lint: disable=REP104")
        assert [f.code for f in findings] == ["REP001"]

    def test_disable_on_other_line_does_not_suppress(self):
        findings = self.lint(prefix="x = 1  # repro-lint: disable=REP001\n")
        assert [f.code for f in findings] == ["REP001"]

    def test_file_disable(self):
        prefix = "# repro-lint: disable-file=REP001\n"
        assert self.lint(prefix=prefix) == []

    def test_file_disable_all(self):
        prefix = "# repro-lint: disable-file=all\n"
        assert self.lint(prefix=prefix) == []

    def test_multiple_codes_comma_separated(self):
        comment = "  # repro-lint: disable=REP104, REP001"
        assert self.lint(comment=comment) == []


class TestHarness:
    def test_syntax_error_reports_rep000(self):
        findings = lint_source("src/repro/core/broken.py", "def f(:\n")
        assert [f.code for f in findings] == ["REP000"]

    def test_findings_sorted_and_rendered(self):
        source = (FIXTURES / "rep102_bad.py").read_text()
        findings = run_rule("REP102", source)
        assert findings == sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.code)
        )
        rendered = findings[0].render()
        assert "REP102" in rendered and rendered.count(":") >= 3

    def test_every_rule_has_code_name_and_summary(self):
        codes = set()
        for cls in ALL_RULES:
            assert cls.code not in codes, f"duplicate code {cls.code}"
            codes.add(cls.code)
            assert cls.name and cls.summary()


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in ALL_RULES:
            assert cls.code in out

    def test_exit_one_on_findings(self, capsys):
        rc = main([str(FIXTURES / "rep101_bad.py")])
        assert rc == 1
        assert "REP101" in capsys.readouterr().out

    def test_exit_zero_on_clean_file(self, capsys):
        rc = main(["--select", "REP101", str(FIXTURES / "rep101_good.py")])
        assert rc == 0

    def test_select_unknown_code_errors(self):
        with pytest.raises(SystemExit):
            main(["--select", "REP999", str(FIXTURES)])


class TestFix:
    PATH = "src/repro/util/fixture.py"

    def fix(self, source: str) -> tuple[str, int]:
        return fix_unused_imports(self.PATH, source)

    def test_removes_whole_unused_statement(self):
        fixed, removed = self.fix("import os\n\nx = 1\n")
        assert removed == 1
        assert fixed == "\nx = 1\n"

    def test_keeps_surviving_aliases(self):
        fixed, removed = self.fix(
            "import sys, json\n\nprint(json.dumps(1))\n"
        )
        assert removed == 1
        assert fixed == "import json\n\nprint(json.dumps(1))\n"

    def test_collapses_multiline_from_import(self):
        source = (
            "from typing import (\n"
            "    Any,\n"
            "    Iterator,\n"
            ")\n"
            "\n"
            "def f() -> Any:\n"
            "    return 1\n"
        )
        fixed, removed = self.fix(source)
        assert removed == 1
        assert fixed.startswith("from typing import Any\n")
        assert "Iterator" not in fixed

    def test_preserves_asname_and_indent(self):
        source = (
            "def f():\n"
            "    import numpy as np, json as j\n"
            "    return np.zeros(1)\n"
        )
        fixed, removed = self.fix(source)
        assert removed == 1
        assert "    import numpy as np\n" in fixed

    def test_respects_line_waiver(self):
        source = "import os  # repro-lint: disable=REP104\n\nx = 1\n"
        assert self.fix(source) == (source, 0)

    def test_respects_file_waiver(self):
        source = "# repro-lint: disable-file=REP104\nimport os\n\nx = 1\n"
        assert self.fix(source) == (source, 0)

    def test_skips_init_modules(self):
        source = "import os\n"
        assert fix_unused_imports("src/repro/util/__init__.py", source) == (
            source,
            0,
        )

    def test_idempotent(self):
        source = "import os\nimport sys, json\n\nprint(json.dumps(1))\n"
        fixed, removed = self.fix(source)
        assert removed == 2
        again, more = self.fix(fixed)
        assert more == 0 and again == fixed

    def test_fix_output_lints_clean(self):
        source = "import os\nimport sys, json\n\nprint(json.dumps(1))\n"
        fixed, _ = self.fix(source)
        assert run_rule("REP104", fixed, path=self.PATH) == []

    def test_cli_fix_rewrites_file(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import os\nimport json\n\nprint(json.dumps(1))\n")
        rc = main(["--fix", "--select", "REP104", str(target)])
        assert rc == 0
        assert target.read_text() == "import json\n\nprint(json.dumps(1))\n"
        assert "removed 1 unused import" in capsys.readouterr().out


class TestGithubAnnotations:
    def test_format_and_escaping(self):
        finding = Finding("a.py", 3, 2, "REP104", "bad\nnews % 50")
        assert github_annotation(finding) == (
            "::error file=a.py,line=3,col=2,title=REP104"
            "::bad%0Anews %25 50"
        )

    def test_cli_github_flag_emits_annotations(self, capsys):
        rc = main(
            ["--github", "--select", "REP104",
             str(FIXTURES / "rep104_bad.py")]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "title=REP104" in out


def test_repo_source_tree_lints_clean():
    """The acceptance gate: the shipped tree has zero findings."""
    findings = lint_paths([str(REPO_SRC)])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_repo_source_tree_has_nothing_to_fix(tmp_path):
    """--fix over the shipped tree is a no-op (no unused imports)."""
    from repro.analysis.lint import iter_python_files

    for path in iter_python_files([str(REPO_SRC)]):
        source = path.read_text(encoding="utf-8")
        assert fix_unused_imports(path.as_posix(), source) == (source, 0), (
            path.as_posix()
        )
