"""Unit tests for linestrings, polygons and the refinement predicates."""

import math

import pytest

from repro.errors import InvalidGeometryError
from repro.geometry import (
    LineString,
    Point,
    Polygon,
    Rect,
    Segment,
    geometry_intersects_disk,
    geometry_intersects_window,
    geometry_mbr,
    mbr_side_inside_disk,
    mbr_side_inside_window,
)

UNIT_SQUARE_POLY = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])


class TestLineString:
    def test_needs_two_vertices(self):
        with pytest.raises(InvalidGeometryError):
            LineString([(0, 0)])

    def test_rejects_nan_vertex(self):
        with pytest.raises(InvalidGeometryError):
            LineString([(0, 0), (float("nan"), 1)])

    def test_mbr(self):
        ls = LineString([(0.1, 0.9), (0.5, 0.2), (0.3, 0.4)])
        assert ls.mbr() == Rect(0.1, 0.2, 0.5, 0.9)

    def test_length(self):
        assert LineString([(0, 0), (3, 4), (3, 5)]).length == pytest.approx(6.0)

    def test_distance_zero_when_point_touches_segment(self):
        """Degenerate touching case: the accumulated minimum hits exactly
        0.0 and the scan must short-circuit there (regression for the
        exact float == early-exit, now a <= test on a nonnegative
        distance)."""
        ls = LineString([(0, 0), (1, 0), (1, 1), (2, 1)])
        # on a vertex, in the middle of a segment, and on the last segment
        assert ls.distance_to_point(1.0, 0.0) == 0.0
        assert ls.distance_to_point(0.5, 0.0) == 0.0
        assert ls.distance_to_point(1.5, 1.0) == 0.0
        # a touching polyline intersects every disk centred on the touch
        assert ls.intersects_disk(0.5, 0.0, 0.0)
        # and a near-miss stays strictly positive
        assert ls.distance_to_point(0.5, 1e-9) > 0.0

    def test_vertices_roundtrip(self):
        pts = [(0.0, 0.0), (0.5, 0.7), (1.0, 0.1)]
        assert LineString(pts).vertices == pts

    def test_equality_and_hash(self):
        a = LineString([(0, 0), (1, 1)])
        b = LineString([(0, 0), (1, 1)])
        assert a == b and hash(a) == hash(b)

    def test_intersects_rect_crossing(self):
        ls = LineString([(-1, 0.5), (2, 0.5)])
        assert ls.intersects_rect(Rect(0, 0, 1, 1))

    def test_intersects_rect_mbr_hit_geometry_miss(self):
        # The polyline's MBR overlaps the window, the polyline does not:
        # exactly the case the refinement step exists for.
        ls = LineString([(0, 0), (1, 0), (1, 1)])
        window = Rect(0.1, 0.4, 0.5, 0.9)
        assert ls.mbr().intersects(window)
        assert not ls.intersects_rect(window)

    def test_distance_to_point(self):
        ls = LineString([(0, 0), (1, 0), (1, 1)])
        assert ls.distance_to_point(0.5, 0.5) == pytest.approx(0.5)

    def test_intersects_disk(self):
        ls = LineString([(0, 0), (1, 0)])
        assert ls.intersects_disk(0.5, 0.3, 0.3)
        assert not ls.intersects_disk(0.5, 0.3, 0.29)


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(InvalidGeometryError):
            Polygon([(0, 0), (1, 1)])

    def test_closed_ring_stripped(self):
        p = Polygon([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(p) == 3

    def test_area_unit_square(self):
        assert UNIT_SQUARE_POLY.area == pytest.approx(1.0)

    def test_area_triangle(self):
        assert Polygon([(0, 0), (1, 0), (0, 1)]).area == pytest.approx(0.5)

    def test_mbr(self):
        assert UNIT_SQUARE_POLY.mbr() == Rect(0, 0, 1, 1)

    def test_contains_point_inside(self):
        assert UNIT_SQUARE_POLY.contains_point(0.5, 0.5)

    def test_contains_point_outside(self):
        assert not UNIT_SQUARE_POLY.contains_point(1.5, 0.5)

    def test_contains_point_on_boundary(self):
        assert UNIT_SQUARE_POLY.contains_point(0.0, 0.5)

    def test_contains_point_concave(self):
        # A "C" shaped polygon: the notch is outside.
        c_shape = Polygon(
            [(0, 0), (3, 0), (3, 1), (1, 1), (1, 2), (3, 2), (3, 3), (0, 3)]
        )
        assert c_shape.contains_point(0.5, 1.5)
        assert not c_shape.contains_point(2.0, 1.5)

    def test_intersects_rect_edge_crossing(self):
        assert UNIT_SQUARE_POLY.intersects_rect(Rect(0.5, 0.5, 2, 2))

    def test_intersects_rect_rect_inside_polygon(self):
        assert UNIT_SQUARE_POLY.intersects_rect(Rect(0.4, 0.4, 0.6, 0.6))

    def test_intersects_rect_polygon_inside_rect(self):
        assert UNIT_SQUARE_POLY.intersects_rect(Rect(-1, -1, 2, 2))

    def test_intersects_rect_miss_in_concavity(self):
        c_shape = Polygon(
            [(0, 0), (3, 0), (3, 1), (1, 1), (1, 2), (3, 2), (3, 3), (0, 3)]
        )
        window = Rect(1.8, 1.2, 2.8, 1.8)  # inside the notch
        assert c_shape.mbr().intersects(window)
        assert not c_shape.intersects_rect(window)

    def test_distance_to_point_inside_zero(self):
        assert UNIT_SQUARE_POLY.distance_to_point(0.5, 0.5) == 0.0

    def test_distance_to_point_outside(self):
        assert UNIT_SQUARE_POLY.distance_to_point(2, 0.5) == pytest.approx(1.0)

    def test_intersects_polygon(self):
        other = Polygon([(0.5, 0.5), (1.5, 0.5), (1.5, 1.5), (0.5, 1.5)])
        assert UNIT_SQUARE_POLY.intersects_polygon(other)

    def test_intersects_polygon_nested(self):
        inner = Polygon([(0.4, 0.4), (0.6, 0.4), (0.5, 0.6)])
        assert UNIT_SQUARE_POLY.intersects_polygon(inner)
        assert inner.intersects_polygon(UNIT_SQUARE_POLY)

    def test_intersects_polygon_disjoint(self):
        other = Polygon([(2, 2), (3, 2), (3, 3)])
        assert not UNIT_SQUARE_POLY.intersects_polygon(other)


class TestGenericPredicates:
    def test_geometry_mbr_dispatch(self):
        assert geometry_mbr(Rect(0, 0, 1, 1)) == Rect(0, 0, 1, 1)
        assert geometry_mbr(Point(0.5, 0.5)) == Rect(0.5, 0.5, 0.5, 0.5)
        assert geometry_mbr(Segment(0, 1, 1, 0)) == Rect(0, 0, 1, 1)

    def test_window_dispatch_each_type(self):
        w = Rect(0, 0, 1, 1)
        assert geometry_intersects_window(Point(0.5, 0.5), w)
        assert geometry_intersects_window(Segment(-1, 0.5, 2, 0.5), w)
        assert geometry_intersects_window(LineString([(-1, 0.5), (2, 0.5)]), w)
        assert geometry_intersects_window(UNIT_SQUARE_POLY, w)
        assert geometry_intersects_window(Rect(0.5, 0.5, 2, 2), w)

    def test_window_dispatch_rejects_unknown(self):
        with pytest.raises(TypeError):
            geometry_intersects_window("not a geometry", Rect(0, 0, 1, 1))  # type: ignore

    def test_disk_dispatch_each_type(self):
        assert geometry_intersects_disk(Point(1, 0), 0, 0, 1.0)
        assert geometry_intersects_disk(Segment(0.5, -5, 0.5, 5), 0, 0, 1.0)
        assert geometry_intersects_disk(LineString([(0.5, -5), (0.5, 5)]), 0, 0, 1.0)
        assert geometry_intersects_disk(UNIT_SQUARE_POLY, -0.5, 0.5, 0.6)
        assert not geometry_intersects_disk(Rect(2, 2, 3, 3), 0, 0, 1.0)


class TestLemma5Window:
    def test_x_projection_covered(self):
        r = Rect(0.3, -1, 0.6, 2)
        assert mbr_side_inside_window(r, Rect(0, 0, 1, 1))

    def test_y_projection_covered(self):
        r = Rect(-1, 0.3, 2, 0.6)
        assert mbr_side_inside_window(r, Rect(0, 0, 1, 1))

    def test_neither_covered(self):
        r = Rect(-0.5, -0.5, 1.5, 1.5)
        assert not mbr_side_inside_window(r, Rect(0, 0, 1, 1))

    def test_fully_inside(self):
        assert mbr_side_inside_window(Rect(0.2, 0.2, 0.4, 0.4), Rect(0, 0, 1, 1))

    def test_certificate_is_sound_for_exact_geometries(self):
        # If the Lemma 5 test passes, the exact geometry must intersect.
        w = Rect(0.0, 0.0, 1.0, 1.0)
        ls = LineString([(0.2, -0.5), (0.4, 1.5)])
        if mbr_side_inside_window(ls.mbr(), w):
            assert ls.intersects_rect(w)


class TestLemma5Disk:
    def test_two_adjacent_corners_inside(self):
        r = Rect(-0.1, -0.1, 0.1, 0.1)
        assert mbr_side_inside_disk(r, 0.0, 0.0, 0.2)

    def test_one_corner_inside_is_not_enough(self):
        r = Rect(0.9, 0.9, 3.0, 3.0)
        assert not mbr_side_inside_disk(r, 0.0, 0.0, math.hypot(0.9, 0.9) + 0.01)

    def test_no_corner_inside(self):
        assert not mbr_side_inside_disk(Rect(2, 2, 3, 3), 0, 0, 1.0)

    def test_certificate_soundness(self):
        # Passing the test implies the MBR's owner intersects the disk:
        # check with the MBR itself as the geometry.
        r = Rect(0.5, -0.2, 1.5, 0.2)
        cx, cy, radius = 0.0, 0.0, 0.7
        if mbr_side_inside_disk(r, cx, cy, radius):
            assert geometry_intersects_disk(r, cx, cy, radius)
