"""Parity and regression tests for the packed CSR storage backend.

The packed backend (:class:`repro.grid.storage.PackedStore` + fused
query kernels) must be *observationally identical* to the legacy
per-tile-dict backend: same result-id sets for every query kind, same
:class:`~repro.stats.QueryStats` counters, same EXPLAIN accounting.
These tests build every index twice (``storage="packed"`` /
``storage="legacy"``) over randomized datasets and workloads and assert
exact equality — including under interleaved inserts and deletes, after
compaction, across persistence round-trips, and through the serving
layer's copy-on-write snapshots.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import ids_set

from repro.core import (
    ConvexPolygonRange,
    TwoLayerGrid,
    TwoLayerPlusGrid,
    convex_range_query,
    knn_query,
)
from repro.core.batch import evaluate_disk_tiles_based, evaluate_tiles_based
from repro.core.persistence import load_index, save_index
from repro.datasets import DiskQuery, RectDataset, generate_uniform_rects
from repro.geometry import Rect
from repro.grid import OneLayerGrid
from repro.grid.storage import (
    PackedStore,
    TileTable,
    packed_storage_default,
    ranges_to_rows,
    resolve_storage_mode,
)
from repro.obs.explain import explain_disk, explain_window
from repro.server.snapshot import SnapshotStore
from repro.stats import QueryStats

GRID = 16


@pytest.fixture(scope="module")
def data() -> RectDataset:
    return generate_uniform_rects(1500, area=1e-3, seed=7)


@pytest.fixture(scope="module")
def pair(data):
    """The same dataset under both storage backends."""
    return (
        TwoLayerGrid.build(data, partitions_per_dim=GRID, storage="packed"),
        TwoLayerGrid.build(data, partitions_per_dim=GRID, storage="legacy"),
    )


def windows(n: int, seed: int, lo: float = 0.02, hi: float = 0.35):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        w = rng.uniform(lo, hi)
        h = rng.uniform(lo, hi)
        x = rng.uniform(0.0, 1.0 - w)
        y = rng.uniform(0.0, 1.0 - h)
        out.append(Rect(x, y, x + w, y + h))
    return out


def assert_query_parity(run_packed, run_legacy, label=""):
    """Same ids AND identical QueryStats counters on both backends."""
    sp, sl = QueryStats(), QueryStats()
    got_p = run_packed(sp)
    got_l = run_legacy(sl)
    assert ids_set(got_p) == ids_set(got_l), label
    assert len(got_p) == len(got_l), f"{label}: duplicate count differs"
    assert sp.as_dict() == sl.as_dict(), label


class TestTwoLayerParity:
    def test_window_query(self, pair):
        packed, legacy = pair
        for i, w in enumerate(windows(40, seed=11)):
            assert_query_parity(
                lambda s, w=w: packed.window_query(w, s),
                lambda s, w=w: legacy.window_query(w, s),
                f"window {i}",
            )

    def test_window_query_boundary_aligned(self, pair):
        packed, legacy = pair
        # Windows snapped to tile borders — the adversarial case for the
        # region decomposition (single-row/column ranges, shared edges).
        t = 1.0 / GRID
        cases = [
            Rect(2 * t, 3 * t, 5 * t, 5 * t),
            Rect(0.0, 0.0, t, t),
            Rect(3 * t, 0.0, 3 * t, 1.0),  # degenerate vertical line
            Rect(0.0, 7 * t, 1.0, 7 * t),  # degenerate horizontal line
            Rect(0.0, 0.0, 1.0, 1.0),  # whole domain
        ]
        for w in cases:
            assert_query_parity(
                lambda s, w=w: packed.window_query(w, s),
                lambda s, w=w: legacy.window_query(w, s),
                repr(w),
            )

    def test_window_query_within(self, pair):
        packed, legacy = pair
        for w in windows(25, seed=13, lo=0.1, hi=0.5):
            assert_query_parity(
                lambda s, w=w: packed.window_query_within(w, s),
                lambda s, w=w: legacy.window_query_within(w, s),
            )

    def test_count_window(self, pair):
        packed, legacy = pair
        for w in windows(25, seed=17):
            assert packed.count_window(w) == legacy.count_window(w)

    def test_disk_query(self, pair):
        packed, legacy = pair
        rng = np.random.default_rng(19)
        for _ in range(30):
            q = DiskQuery(
                float(rng.uniform(0, 1)),
                float(rng.uniform(0, 1)),
                float(rng.uniform(0.01, 0.3)),
            )
            assert_query_parity(
                lambda s, q=q: packed.disk_query(q, s),
                lambda s, q=q: legacy.disk_query(q, s),
                repr(q),
            )

    def test_knn_query(self, pair, data):
        packed, legacy = pair
        rng = np.random.default_rng(23)
        for _ in range(10):
            cx, cy = float(rng.uniform(0, 1)), float(rng.uniform(0, 1))
            k = int(rng.integers(1, 40))
            sp, sl = QueryStats(), QueryStats()
            got_p = knn_query(packed, data, cx, cy, k, sp)
            got_l = knn_query(legacy, data, cx, cy, k, sl)
            assert np.array_equal(got_p, got_l)  # deterministic ranking
            assert sp.as_dict() == sl.as_dict()

    def test_convex_range_query(self, pair):
        packed, legacy = pair
        poly = ConvexPolygonRange(
            [(0.2, 0.1), (0.8, 0.3), (0.7, 0.9), (0.25, 0.7)]
        )
        assert_query_parity(
            lambda s: convex_range_query(packed, poly, s),
            lambda s: convex_range_query(legacy, poly, s),
        )

    def test_batch_evaluators(self, pair):
        packed, legacy = pair
        ws = windows(12, seed=29)
        for got_p, got_l in zip(
            evaluate_tiles_based(packed, ws), evaluate_tiles_based(legacy, ws)
        ):
            assert ids_set(got_p) == ids_set(got_l)
        qs = [DiskQuery(0.3, 0.4, 0.15), DiskQuery(0.7, 0.2, 0.08)]
        for got_p, got_l in zip(
            evaluate_disk_tiles_based(packed, qs),
            evaluate_disk_tiles_based(legacy, qs),
        ):
            assert ids_set(got_p) == ids_set(got_l)

    def test_introspection(self, pair):
        packed, legacy = pair
        assert packed.replica_count == legacy.replica_count
        assert packed.nonempty_tiles == legacy.nonempty_tiles
        assert packed.class_counts() == legacy.class_counts()
        assert packed._class_a_counts() == legacy._class_a_counts()
        assert packed.storage == "packed" and legacy.storage == "legacy"


class TestTwoLayerPlusParity:
    def test_window_query(self, data):
        packed = TwoLayerPlusGrid.build(
            data, partitions_per_dim=GRID, storage="packed"
        )
        legacy = TwoLayerPlusGrid.build(
            data, partitions_per_dim=GRID, storage="legacy"
        )
        for w in windows(25, seed=31):
            assert_query_parity(
                lambda s, w=w: packed.window_query(w, s),
                lambda s, w=w: legacy.window_query(w, s),
            )


class TestOneLayerParity:
    @pytest.mark.parametrize("dedup", ["refpoint", "hash", "active_border"])
    def test_window_query(self, data, dedup):
        packed = OneLayerGrid.build(
            data, partitions_per_dim=GRID, dedup=dedup, storage="packed"
        )
        legacy = OneLayerGrid.build(
            data, partitions_per_dim=GRID, dedup=dedup, storage="legacy"
        )
        for w in windows(25, seed=37):
            assert_query_parity(
                lambda s, w=w: packed.window_query(w, s),
                lambda s, w=w: legacy.window_query(w, s),
                dedup,
            )

    def test_disk_query(self, data):
        packed = OneLayerGrid.build(data, partitions_per_dim=GRID, storage="packed")
        legacy = OneLayerGrid.build(data, partitions_per_dim=GRID, storage="legacy")
        rng = np.random.default_rng(41)
        for _ in range(15):
            q = DiskQuery(
                float(rng.uniform(0, 1)),
                float(rng.uniform(0, 1)),
                float(rng.uniform(0.02, 0.25)),
            )
            assert_query_parity(
                lambda s, q=q: packed.disk_query(q, s),
                lambda s, q=q: legacy.disk_query(q, s),
            )


class TestMaintenanceParity:
    """Interleaved inserts and deletes keep the backends in lockstep."""

    @pytest.mark.parametrize("cls", [TwoLayerGrid, OneLayerGrid])
    def test_interleaved_insert_delete(self, cls):
        rng = np.random.default_rng(43)
        base = generate_uniform_rects(400, area=1e-3, seed=47)
        packed = cls.build(base, partitions_per_dim=8, storage="packed")
        legacy = cls.build(base, partitions_per_dim=8, storage="legacy")
        live = {i: base.rect(i) for i in range(len(base))}
        next_id = len(base)
        probe = windows(6, seed=53)
        for round_no in range(6):
            for _ in range(20):  # inserts land in the packed delta overlay
                w = float(rng.uniform(0.005, 0.1))
                h = float(rng.uniform(0.005, 0.1))
                x = float(rng.uniform(0, 1.0 - w))
                y = float(rng.uniform(0, 1.0 - h))
                rect = Rect(x, y, x + w, y + h)
                assert packed.insert(rect, next_id) == next_id
                legacy.insert(rect, next_id)
                live[next_id] = rect
                next_id += 1
            for _ in range(15):  # deletes tombstone the packed base
                victim = int(rng.choice(list(live)))
                rect = live.pop(victim)
                assert packed.delete(rect, victim)
                assert legacy.delete(rect, victim)
            assert packed.replica_count == legacy.replica_count
            for w in probe:
                assert_query_parity(
                    lambda s, w=w: packed.window_query(w, s),
                    lambda s, w=w: legacy.window_query(w, s),
                    f"round {round_no}",
                )
            if round_no == 3:
                # Folding the overlay + tombstones must not change results.
                packed.compact()
                assert not packed._tiles
                assert packed._store.n_dead == 0
        # Deleting an id that is not indexed reports False on both.
        ghost = Rect(0.4, 0.4, 0.41, 0.41)
        assert not packed.delete(ghost, 10**6)
        assert not legacy.delete(ghost, 10**6)


class TestExplainParity:
    """EXPLAIN must report identical accounting from the packed path."""

    # The hand-built 4x4 grid of tests/test_explain.py.
    HAND_RECTS = [
        Rect(0.05, 0.05, 0.10, 0.10),
        Rect(0.20, 0.05, 0.30, 0.10),
        Rect(0.05, 0.20, 0.10, 0.30),
        Rect(0.30, 0.30, 0.60, 0.60),
        Rect(0.80, 0.80, 0.85, 0.85),
        Rect(0.26, 0.26, 0.45, 0.45),
    ]
    WINDOWS = [
        Rect(0.26, 0.26, 0.62, 0.62),  # interior: class A only
        Rect(0.30, 0.05, 0.60, 0.30),  # first column: scans C
        Rect(0.05, 0.30, 0.30, 0.60),  # first row: scans B
        Rect(0.0, 0.0, 1.0, 1.0),  # whole domain
    ]

    @pytest.fixture(scope="class")
    def hand_pair(self):
        data = RectDataset.from_rects(self.HAND_RECTS)
        domain = Rect(0.0, 0.0, 1.0, 1.0)
        return (
            TwoLayerGrid.build(
                data, partitions_per_dim=4, domain=domain, storage="packed"
            ),
            TwoLayerGrid.build(
                data, partitions_per_dim=4, domain=domain, storage="legacy"
            ),
        )

    def test_window_plans_match(self, hand_pair):
        packed, legacy = hand_pair
        for w in self.WINDOWS:
            pp = explain_window(packed, w)
            pl = explain_window(legacy, w)
            pp.check()
            assert pp.tiles_by_class == pl.tiles_by_class
            assert pp.tiles_visited == pl.tiles_visited
            assert pp.primary_partitions == pl.primary_partitions
            assert pp.touched_partitions == pl.touched_partitions
            assert pp.touched_entries == pl.touched_entries
            assert pp.duplicates_avoided == pl.duplicates_avoided
            assert pp.duplicates_eliminated == pl.duplicates_eliminated
            assert pp.comparisons == pl.comparisons
            assert pp.stats == pl.stats
            assert ids_set(pp.result) == ids_set(pl.result)

    def test_interior_window_scans_class_a_only(self, hand_pair):
        packed, _ = hand_pair
        plan = explain_window(packed, self.WINDOWS[0])
        assert plan.tiles_by_class == {"A": 1}
        assert plan.duplicates_avoided == 3

    def test_disk_plans_match(self, hand_pair):
        packed, legacy = hand_pair
        q = DiskQuery(0.45, 0.45, 0.3)
        pp = explain_disk(packed, q)
        pl = explain_disk(legacy, q)
        assert pp.tiles_by_class == pl.tiles_by_class
        assert pp.stats == pl.stats
        assert ids_set(pp.result) == ids_set(pl.result)


class TestPersistenceParity:
    @pytest.mark.parametrize("save_storage", ["packed", "legacy"])
    @pytest.mark.parametrize("load_storage", ["packed", "legacy"])
    def test_roundtrip_across_backends(
        self, tmp_path, data, save_storage, load_storage
    ):
        index = TwoLayerGrid.build(
            data, partitions_per_dim=GRID, storage=save_storage
        )
        path = tmp_path / "idx.npz"
        save_index(index, path)
        loaded = load_index(path, storage=load_storage)
        assert loaded.storage == load_storage
        assert loaded.replica_count == index.replica_count
        for w in windows(8, seed=59):
            assert_query_parity(
                lambda s, w=w: loaded.window_query(w, s),
                lambda s, w=w: index.window_query(w, s),
            )

    def test_packed_save_after_updates(self, tmp_path):
        base = generate_uniform_rects(300, area=1e-3, seed=61)
        index = TwoLayerGrid.build(base, partitions_per_dim=8, storage="packed")
        index.insert(Rect(0.1, 0.1, 0.3, 0.2), 300)
        assert index.delete(base.rect(5), 5)
        path = tmp_path / "idx.npz"
        save_index(index, path)  # delta rows + tombstones flattened out
        loaded = load_index(path, storage="packed")
        assert loaded.replica_count == index.replica_count
        w = Rect(0.0, 0.0, 1.0, 1.0)
        assert ids_set(loaded.window_query(w)) == ids_set(index.window_query(w))


class TestSnapshotPackedBase:
    def test_base_shared_by_reference_across_versions(self):
        data = generate_uniform_rects(500, area=1e-3, seed=67)
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        store = SnapshotStore(index, data)
        base = store.current.index._store
        for k in range(10):
            store.insert(Rect(0.2, 0.2, 0.25, 0.25))
        # Ten published versions, zero base copies.
        assert store.current.index._store is base

    def test_cow_delete_forks_tombstones_only(self):
        data = generate_uniform_rects(500, area=1e-3, seed=71)
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        store = SnapshotStore(index, data)
        old = store.current
        w = Rect(0.0, 0.0, 1.0, 1.0)
        victim = int(old.index.window_query(w)[0])
        found, version = store.delete(victim)
        assert found and version == old.version + 1
        new = store.current
        # The column arrays are shared; only the dead bitmap was copied.
        assert new.index._store is not old.index._store
        assert new.index._store.xl is old.index._store.xl
        assert new.index._store.ids is old.index._store.ids
        # Snapshot isolation: the old version still sees the object.
        assert victim in ids_set(old.index.window_query(w))
        assert victim not in ids_set(new.index.window_query(w))

    def test_delete_of_delta_insert(self):
        data = generate_uniform_rects(200, area=1e-3, seed=73)
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        store = SnapshotStore(index, data)
        obj_id, _ = store.insert(Rect(0.5, 0.5, 0.55, 0.55))
        found, _ = store.delete(obj_id)
        assert found
        w = Rect(0.45, 0.45, 0.6, 0.6)
        assert obj_id not in ids_set(store.current.index.window_query(w))


class TestTileTableRegressions:
    def test_nbytes_does_not_mutate(self):
        """Regression: nbytes used to fold the pending tail as a side
        effect, breaking the published-snapshot purity invariant."""
        t = TileTable()
        t.append(0.1, 0.1, 0.2, 0.2, 0)
        t.append(0.3, 0.3, 0.4, 0.4, 1)
        before = t.nbytes
        assert len(t._pending) == 2  # still pending — no fold happened
        t._compact()
        assert t.nbytes == before  # pending tail was costed at folded size

    def test_delete_on_empty_reports_zero_without_compacting(self):
        t = TileTable()
        assert t.delete(42) == 0
        assert len(t) == 0
        t.append(0.1, 0.1, 0.2, 0.2, 7)
        assert t.delete(42) == 0  # id not present
        assert t.delete(7) == 1
        assert t.delete(7) == 0  # now empty again

    def test_tombstone_delete_never_rebuilds_base(self):
        data = generate_uniform_rects(300, area=1e-3, seed=79)
        index = TwoLayerGrid.build(data, partitions_per_dim=8, storage="packed")
        store = index._store
        xl = store.xl
        assert index.delete(data.rect(10), 10)
        assert index._store is store  # same object, no rebuild
        assert store.xl is xl  # columns untouched
        assert store.n_dead >= 1
        assert index.delete(data.rect(10), 10) is False  # already gone


class TestPackedStoreUnit:
    def test_ranges_to_rows(self):
        starts = np.array([0, 5, 5, 9], dtype=np.int64)
        ends = np.array([2, 8, 5, 10], dtype=np.int64)
        got = ranges_to_rows(starts, ends)
        assert got.tolist() == [0, 1, 5, 6, 7, 9]
        assert ranges_to_rows(starts[:0], ends[:0]).shape == (0,)

    def test_from_rows_presorted_is_zero_copy(self):
        keys = np.array([0, 0, 2, 5, 5, 5], dtype=np.int64)
        cols = [np.arange(6, dtype=np.float64) for _ in range(4)]
        ids = np.arange(6, dtype=np.int64)
        store = PackedStore.from_rows(8, 1, keys, *cols, ids)
        assert store.ids is ids  # adopted, not re-sorted
        assert store.offsets.tolist() == [0, 2, 2, 3, 3, 3, 6, 6, 6]
        assert store.group_columns(1) is None
        assert store.group_columns(0)[4].tolist() == [0, 1]

    def test_from_rows_unsorted_sorts_stably(self):
        keys = np.array([3, 1, 3, 0], dtype=np.int64)
        cols = [np.array([30.0, 10.0, 31.0, 0.0]) for _ in range(4)]
        ids = np.array([30, 10, 31, 0], dtype=np.int64)
        store = PackedStore.from_rows(4, 1, keys, *cols, ids)
        assert store.ids.tolist() == [0, 10, 30, 31]
        assert store.group_counts().tolist() == [1, 1, 0, 2]

    def test_mark_dead_dedups(self):
        keys = np.zeros(4, dtype=np.int64)
        cols = [np.zeros(4) for _ in range(4)]
        store = PackedStore.from_rows(1, 1, keys, *cols, np.arange(4))
        assert store.mark_dead(np.array([1, 2])) == 2
        assert store.mark_dead(np.array([2, 3])) == 1  # 2 already dead
        assert store.n_live == 1
        assert store.group_counts().tolist() == [1]

    def test_resolve_storage_mode(self, monkeypatch):
        assert resolve_storage_mode("packed") is True
        assert resolve_storage_mode("legacy") is False
        with pytest.raises(ValueError):
            resolve_storage_mode("mmap")
        monkeypatch.delenv("REPRO_PACKED", raising=False)
        assert packed_storage_default() is True
        monkeypatch.setenv("REPRO_PACKED", "0")
        assert resolve_storage_mode(None) is False
