"""Protocol model checker: the real scatter/gather/quarantine semantics
pass every bounded schedule; each seeded mutant is caught by the
property that guards against exactly its defect."""

from __future__ import annotations

import pytest

from repro.analysis.verify.model import (
    MUTANTS,
    ModelConfig,
    check_model,
    explore,
    single_failure_configs,
)

#: mutant -> the property that must convict it.
CONVICTING_PROPERTY = {
    "no_park": "P5",
    "no_epoch_stamp": "P2",
    "no_quarantine": "P3",
    "no_stale_timeout": "P6",
}


def test_correct_model_has_no_violations():
    assert check_model(thorough=False) == []


@pytest.mark.parametrize("mutant", MUTANTS)
def test_each_mutant_is_convicted(mutant):
    violations = check_model(mutant=mutant, thorough=False)
    assert violations, f"mutant {mutant!r} survived the model check"
    props = {v.prop for v in violations}
    assert CONVICTING_PROPERTY[mutant] in props, (
        f"{mutant!r} convicted by {props}, expected "
        f"{CONVICTING_PROPERTY[mutant]}"
    )


def test_mutant_catalogue_is_total():
    assert set(MUTANTS) == set(CONVICTING_PROPERTY)


def test_single_failure_configs_cover_every_schedule_class():
    configs = list(single_failure_configs(shards=2, writes=2, reads=2))
    base = [c for c in configs if not c.faulty]
    crashes = {c.crash for c in configs if c.crash is not None}
    skips = {c.skip_write for c in configs if c.skip_write is not None}
    losses = {c.lose_send for c in configs if c.lose_send is not None}
    assert len(base) == 1
    assert crashes == {0, 1}
    assert skips == {(0, 1), (0, 2), (1, 1), (1, 2)}
    assert losses == {(0, 1), (0, 2), (1, 1), (1, 2)}


def test_explore_reports_schedule_on_violation():
    cfg = ModelConfig(shards=2, writes=1, reads=1, mutant="no_epoch_stamp")
    violations = explore(cfg)
    assert violations
    head = violations[0]
    assert head.schedule, "violation must carry its witness schedule"
    assert head.config is cfg
