"""Sharded serving end-to-end: subprocess router + workers vs a twin.

Spawns ``python -m repro --serve --shards 2`` next to an identical
single-process server and checks scatter-gather parity on every verb,
replicated writes (uniform epoch vector), wire-trace propagation across
the router->worker hop, dead-worker degradation, SIGTERM drain, and —
the part that leaks in real deployments — that no ``/dev/shm`` segment
survives either a clean drain or a SIGKILL'd router.
"""

import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.server.client import ServerError, SpatialClient

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs POSIX shared memory"
)


def _shm_entries():
    return {e for e in os.listdir("/dev/shm") if e.startswith("psm_")}


def _spawn(*extra, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    if env_extra:
        env.update(env_extra)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "--serve",
            "127.0.0.1:0",
            "--n",
            "8000",
            "--seed",
            "11",
            "--partitions",
            "32",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    line = proc.stdout.readline()
    m = re.search(r"serving on ([\d.]+):(\d+)", line)
    assert m, f"no announce line; stderr: {proc.stderr.read()}"
    return proc, m.group(1), int(m.group(2))


def _reap(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10)
    proc.stdout.close()
    proc.stderr.close()


class TestShardedEndToEnd:
    def test_two_shard_router_full_lifecycle(self):
        shm_before = _shm_entries()
        single, h1, p1 = _spawn()
        sharded, h2, p2 = _spawn("--shards", "2")
        try:
            with SpatialClient(h1, p1) as c1, SpatialClient(h2, p2) as c2:
                self._check_parity(c1, c2, trials=25)
                self._check_writes(c1, c2)
                self._check_trace_hop(c2)
                self._check_dead_worker(c1, c2)
            sharded.send_signal(signal.SIGTERM)
            single.send_signal(signal.SIGTERM)
            assert sharded.wait(timeout=15) == 0, sharded.stderr.read()
            assert single.wait(timeout=15) == 0
        finally:
            _reap(sharded)
            _reap(single)
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and _shm_entries() - shm_before:
            time.sleep(0.1)
        assert not _shm_entries() - shm_before, "leaked shm after drain"

    def _check_parity(self, c1, c2, trials):
        rng = np.random.default_rng(3)
        for i in range(trials):
            xs = sorted(rng.uniform(0, 0.05, 2) + rng.uniform(0, 0.9))
            ys = sorted(rng.uniform(0, 0.05, 2) + rng.uniform(0, 0.9))
            w = (xs[0], ys[0], xs[1], ys[1])
            assert sorted(c1.window(*w)) == sorted(c2.window(*w)), i
            assert sorted(
                c1.window(*w, predicate="within")
            ) == sorted(c2.window(*w, predicate="within")), i
            assert c1.count(*w) == c2.count(*w), i
            cx, cy = rng.uniform(0, 1), rng.uniform(0, 1)
            r = rng.uniform(0.005, 0.08)
            assert sorted(c1.disk(cx, cy, r)) == sorted(c2.disk(cx, cy, r))
            assert c1.knn(cx, cy, 8) == c2.knn(cx, cy, 8), i

    def _check_writes(self, c1, c2):
        nid1 = c1.insert(0.5, 0.5, 0.5005, 0.5005)
        nid2 = c2.insert(0.5, 0.5, 0.5005, 0.5005)
        assert nid1 == nid2
        assert nid2 in c2.window(0.4999, 0.4999, 0.5006, 0.5006)
        assert c2.delete(nid2) is True
        assert nid2 not in c2.window(0.4999, 0.4999, 0.5006, 0.5006)
        c1.delete(nid1)
        sh = c2.stats()["shards"]
        assert sh["count"] == 2
        assert sh["dead"] == []
        # deterministic replication: every worker sits at the router's
        # version with no cross-process coordination
        assert sh["epochs"] == [sh["local_epoch"]] * 2 == [2, 2]
        rng = np.random.default_rng(4)
        for _ in range(10):
            xs = sorted(rng.uniform(0, 1, 2))
            ys = sorted(rng.uniform(0, 1, 2))
            w = (xs[0], ys[0], xs[1], ys[1])
            assert sorted(c1.window(*w)) == sorted(c2.window(*w))

    def _check_trace_hop(self, c2):
        c2.call(
            "window",
            {"xl": 0.1, "yl": 0.1, "xu": 0.6, "yu": 0.6},
            trace="e2e-trace-1",
        )
        assert c2.last_trace == "e2e-trace-1"
        phases = c2.last_server["phases"]
        assert "shard" in phases and "scatter_ms" in phases
        hits = [
            t
            for t in c2.traces(limit=10)["entries"]
            if t.get("trace") == "e2e-trace-1"
        ]
        assert hits and hits[0].get("shards"), hits

    def _check_dead_worker(self, c1, c2):
        pids = c2.stats()["shards"]["pids"]
        os.kill(pids[0], signal.SIGKILL)
        time.sleep(0.3)
        rng = np.random.default_rng(5)
        t0 = time.monotonic()
        degraded = False
        for _ in range(50):
            xs = sorted(rng.uniform(0, 1, 2))
            ys = sorted(rng.uniform(0, 1, 2))
            try:
                c2.window(xs[0], ys[0], xs[1], ys[1])
            except ServerError as exc:
                assert exc.code == "degraded", exc
                degraded = True
                break
        assert degraded, "killed worker never produced a degraded error"
        assert time.monotonic() - t0 < 10, "degradation took too long"
        assert c2.stats()["shards"]["dead"] == [0]
        # knn reroutes to the surviving worker and stays correct
        assert c2.knn(0.5, 0.5, 5) == c1.knn(0.5, 0.5, 5)

    def test_sanitizer_on_sharded_path(self):
        shm_before = _shm_entries()
        proc, host, port = _spawn(
            "--shards",
            "2",
            env_extra={"REPRO_SANITIZE": "1", "REPRO_SANITIZE_SAMPLE": "1"},
        )
        try:
            rng = np.random.default_rng(9)
            with SpatialClient(host, port) as cli:
                for _ in range(15):
                    xs = sorted(rng.uniform(0, 1, 2))
                    ys = sorted(rng.uniform(0, 1, 2))
                    cli.window(xs[0], ys[0], xs[1], ys[1])
                    cli.disk(
                        rng.uniform(0, 1),
                        rng.uniform(0, 1),
                        rng.uniform(0.01, 0.1),
                    )
                cli.insert(0.4, 0.4, 0.401, 0.401)
                for _ in range(5):
                    xs = sorted(rng.uniform(0, 1, 2))
                    ys = sorted(rng.uniform(0, 1, 2))
                    cli.window(
                        xs[0], ys[0], xs[1], ys[1], predicate="within"
                    )
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0, proc.stderr.read()
        finally:
            _reap(proc)
        assert not _shm_entries() - shm_before

    def test_router_sigkill_leaves_no_shm(self):
        # hard-crash path: the router never runs its unlink, so cleanup
        # falls to CPython's resource_tracker sidecar
        shm_before = _shm_entries()
        proc, host, port = _spawn("--shards", "2")
        try:
            with SpatialClient(host, port) as cli:
                pids = cli.stats()["shards"]["pids"]
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if not _shm_entries() - shm_before and not any(
                    _alive(pid) for pid in pids
                ):
                    break
                time.sleep(0.2)
            assert not _shm_entries() - shm_before, "router crash leaked shm"
            # orphaned workers notice the dead TCP link and exit
            assert not any(_alive(pid) for pid in pids), "orphaned workers"
        finally:
            _reap(proc)


class TestFileArenaServing:
    def test_shards_map_the_index_file_instead_of_shm(self, tmp_path):
        """Booting ``--serve --index <columnar> --shards K`` publishes the
        base as a file arena: workers mmap the archive itself, so no
        ``/dev/shm`` segment exists while the pristine base serves."""
        from repro.core import TwoLayerGrid
        from repro.core.persistence import save_collection
        from repro.datasets import generate_uniform_rects

        data = generate_uniform_rects(8000, area=1e-4, seed=11)
        index = TwoLayerGrid.build(data, partitions_per_dim=32)
        archive = str(tmp_path / "served.idx")
        save_collection(index, data, archive)

        shm_before = _shm_entries()
        sharded, h2, p2 = _spawn("--index", archive, "--shards", "2")
        single, h1, p1 = _spawn("--index", archive)
        try:
            with SpatialClient(h1, p1) as c1, SpatialClient(h2, p2) as c2:
                rng = np.random.default_rng(7)
                for _ in range(15):
                    xs = sorted(rng.uniform(0, 1, 2))
                    ys = sorted(rng.uniform(0, 1, 2))
                    w = (xs[0], ys[0], xs[1], ys[1])
                    assert sorted(c1.window(*w)) == sorted(c2.window(*w))
                    assert c1.count(*w) == c2.count(*w)
                    cx, cy = rng.uniform(0, 1), rng.uniform(0, 1)
                    r = rng.uniform(0.01, 0.1)
                    assert sorted(c1.disk(cx, cy, r)) == sorted(
                        c2.disk(cx, cy, r)
                    )
                # the read-only base needs no shm segment at all
                assert not _shm_entries() - shm_before, (
                    "file-arena boot created an shm segment"
                )
                assert c2.stats()["shards"]["count"] == 2
                # writes still work on top of the mapped base
                nid = c2.insert(0.5, 0.5, 0.5005, 0.5005)
                assert nid == len(data)
                assert nid in c2.window(0.4999, 0.4999, 0.5006, 0.5006)
            sharded.send_signal(signal.SIGTERM)
            single.send_signal(signal.SIGTERM)
            assert sharded.wait(timeout=15) == 0, sharded.stderr.read()
            assert single.wait(timeout=15) == 0
        finally:
            _reap(sharded)
            _reap(single)
        assert not _shm_entries() - shm_before, "leaked shm after drain"
        assert os.path.exists(archive), "serving must not consume the file"


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
