"""Tests for the quad-tree family (plain, two-layer, MXCIF)."""

import pytest

from repro.datasets import (
    RectDataset,
    generate_disk_queries,
    generate_uniform_rects,
    generate_window_queries,
)
from repro.errors import InvalidGridError
from repro.geometry import Rect
from repro.quadtree import MXCIFQuadTree, QuadTree, TwoLayerQuadTree
from repro.stats import QueryStats

from conftest import ids_set


@pytest.fixture(scope="module")
def data():
    return generate_uniform_rects(4000, area=1e-4, seed=61)


@pytest.fixture(scope="module")
def trees(data):
    return {
        "quad": QuadTree.build(data, capacity=100, max_depth=8),
        "two_layer_quad": TwoLayerQuadTree.build(data, capacity=100, max_depth=8),
        "mxcif": MXCIFQuadTree.build(data, max_depth=8),
    }


class TestConstruction:
    def test_capacity_validation(self):
        with pytest.raises(InvalidGridError):
            QuadTree(capacity=0)
        with pytest.raises(InvalidGridError):
            TwoLayerQuadTree(capacity=0)
        with pytest.raises(InvalidGridError):
            MXCIFQuadTree(max_depth=-1)

    def test_splitting_happened(self, trees, data):
        assert trees["quad"].leaf_count > 1
        assert trees["two_layer_quad"].leaf_count > 1

    def test_replication_at_least_n(self, trees, data):
        assert trees["quad"].replica_count >= len(data)
        assert trees["two_layer_quad"].replica_count >= len(data)

    def test_mxcif_no_replication(self, trees, data):
        assert trees["mxcif"].replica_count == len(data)

    def test_max_depth_caps_splitting(self):
        # All data at the same spot: capacity can never be satisfied, so
        # max_depth must stop the recursion.
        rects = [Rect(0.5, 0.5, 0.500001, 0.500001)] * 50
        tree = QuadTree.build(RectDataset.from_rects(rects), capacity=5, max_depth=3)
        assert tree.leaf_count <= 4**3

    def test_replicas_match_one_layer_semantics(self, data, trees):
        # Every object appears in every leaf whose region it intersects.
        tree = trees["quad"]
        w = Rect(0, 0, 1, 1)
        assert ids_set(tree.window_query(w)) == set(range(len(data)))


class TestWindowQueries:
    @pytest.mark.parametrize("name", ["quad", "two_layer_quad", "mxcif"])
    def test_matches_brute_force(self, data, trees, name):
        tree = trees[name]
        for w in generate_window_queries(data, 30, 1.0, seed=62):
            got = tree.window_query(w)
            assert len(got) == len(ids_set(got)), f"{name}: duplicates"
            assert ids_set(got) == ids_set(data.brute_force_window(w))

    @pytest.mark.parametrize("name", ["quad", "two_layer_quad", "mxcif"])
    def test_boundary_aligned_windows(self, data, trees, name):
        tree = trees[name]
        for w in [
            Rect(0.5, 0.25, 0.75, 0.5),    # aligned to quadrant splits
            Rect(0.0, 0.0, 0.5, 0.5),
            Rect(0.5, 0.5, 1.0, 1.0),
            Rect(0.25, 0.25, 0.25, 0.25),  # degenerate on a split corner
        ]:
            got = tree.window_query(w)
            assert len(got) == len(ids_set(got)), f"{name}: boundary duplicates"
            assert ids_set(got) == ids_set(data.brute_force_window(w))

    def test_two_layer_quad_never_checks_duplicates(self, data, trees):
        stats = QueryStats()
        for w in generate_window_queries(data, 20, 1.0, seed=63):
            trees["two_layer_quad"].window_query(w, stats)
        assert stats.dedup_checks == 0 and stats.duplicates_generated == 0

    def test_plain_quad_generates_duplicates(self, data, trees):
        stats = QueryStats()
        for w in generate_window_queries(data, 20, 1.0, seed=63):
            trees["quad"].window_query(w, stats)
        assert stats.duplicates_generated > 0

    def test_two_layer_scans_fewer_rects(self, data, trees):
        s_plain, s_two = QueryStats(), QueryStats()
        for w in generate_window_queries(data, 20, 1.0, seed=64):
            trees["quad"].window_query(w, s_plain)
            trees["two_layer_quad"].window_query(w, s_two)
        assert s_two.rects_scanned < s_plain.rects_scanned


class TestDiskQueries:
    def test_quad_disk_matches_brute_force(self, data, trees):
        for q in generate_disk_queries(data, 20, 1.0, seed=65):
            got = trees["quad"].disk_query(q)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == ids_set(data.brute_force_disk(q.cx, q.cy, q.radius))


class TestInserts:
    def test_quad_insert_and_split(self):
        tree = QuadTree(capacity=4, max_depth=6)
        for i in range(20):
            tree.insert(Rect(0.1 + i * 0.04, 0.1, 0.11 + i * 0.04, 0.11), i)
        assert len(tree) == 20
        assert tree.leaf_count > 1
        got = tree.window_query(Rect(0, 0, 1, 1))
        assert ids_set(got) == set(range(20))

    def test_two_layer_quad_insert(self):
        tree = TwoLayerQuadTree(capacity=4, max_depth=6)
        for i in range(20):
            tree.insert(Rect(0.1 + i * 0.04, 0.1, 0.11 + i * 0.04, 0.11), i)
        got = tree.window_query(Rect(0, 0, 1, 1))
        assert len(got) == len(ids_set(got))
        assert ids_set(got) == set(range(20))

    def test_mxcif_insert_at_covering_node(self):
        tree = MXCIFQuadTree(max_depth=6)
        # An object crossing the root split line stays at the root.
        tree.insert(Rect(0.4, 0.4, 0.6, 0.6), 0)
        # A small object nestles deep.
        tree.insert(Rect(0.1, 0.1, 0.11, 0.11), 1)
        assert len(tree._root.table) == 1
        got = tree.window_query(Rect(0, 0, 1, 1))
        assert ids_set(got) == {0, 1}
