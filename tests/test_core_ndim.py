"""Tests for the m-dimensional two-layer generalisation (Section IV-D)."""

import numpy as np
import pytest

from repro.errors import DatasetError, InvalidGridError, InvalidQueryError
from repro.core import NDimTwoLayerGrid
from repro.stats import QueryStats


def make_boxes(n, m, seed, extent=0.1):
    rng = np.random.default_rng(seed)
    lows = rng.random((n, m))
    highs = lows + rng.random((n, m)) * extent
    return lows, highs


class TestConstruction:
    def test_rejects_bad_shapes(self):
        with pytest.raises(DatasetError):
            NDimTwoLayerGrid(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_rejects_inverted_boxes(self):
        lows = np.array([[0.5, 0.5]])
        highs = np.array([[0.4, 0.6]])
        with pytest.raises(DatasetError):
            NDimTwoLayerGrid(lows, highs)

    def test_rejects_zero_partitions(self):
        lows, highs = make_boxes(5, 2, 0)
        with pytest.raises(InvalidGridError):
            NDimTwoLayerGrid(lows, highs, partitions_per_dim=0)

    def test_rejects_zero_dims(self):
        with pytest.raises(DatasetError):
            NDimTwoLayerGrid(np.zeros((3, 0)), np.zeros((3, 0)))

    def test_rejects_bad_domain(self):
        lows, highs = make_boxes(5, 2, 0)
        with pytest.raises(InvalidGridError):
            NDimTwoLayerGrid(lows, highs, domain=np.array([[0, 0], [1, 1]]))

    def test_2d_class_histogram_has_four_classes(self):
        lows, highs = make_boxes(2000, 2, 1, extent=0.3)
        idx = NDimTwoLayerGrid(lows, highs, partitions_per_dim=5)
        hist = idx.class_histogram()
        assert set(hist) == {0, 1, 2, 3}
        assert hist[0] == 2000  # class "A" (code 0): one entry per object

    def test_3d_has_up_to_eight_classes(self):
        lows, highs = make_boxes(3000, 3, 2, extent=0.4)
        idx = NDimTwoLayerGrid(lows, highs, partitions_per_dim=4)
        hist = idx.class_histogram()
        assert set(hist) <= set(range(8))
        assert hist[0] == 3000
        assert len(hist) == 8  # with boxes this large every class appears


class TestQueries:
    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_matches_brute_force(self, m):
        lows, highs = make_boxes(1500, m, m, extent=0.15)
        idx = NDimTwoLayerGrid(lows, highs, partitions_per_dim=5)
        rng = np.random.default_rng(100 + m)
        for _ in range(30):
            ql = rng.random(m) * 0.6
            qh = ql + rng.random(m) * 0.4
            got = idx.box_query(ql, qh)
            assert len(got) == len(set(got.tolist())), f"duplicates at m={m}"
            assert set(got.tolist()) == set(idx.brute_force(ql, qh).tolist())

    def test_query_beyond_domain(self):
        lows, highs = make_boxes(500, 2, 7)
        idx = NDimTwoLayerGrid(lows, highs, partitions_per_dim=4)
        got = idx.box_query(np.array([-1.0, -1.0]), np.array([2.0, 2.0]))
        assert set(got.tolist()) == set(range(500))

    def test_degenerate_point_query(self):
        lows, highs = make_boxes(500, 2, 8, extent=0.2)
        idx = NDimTwoLayerGrid(lows, highs, partitions_per_dim=4)
        q = np.array([0.5, 0.5])
        got = idx.box_query(q, q)
        assert set(got.tolist()) == set(idx.brute_force(q, q).tolist())

    def test_rejects_bad_query_shape(self):
        lows, highs = make_boxes(10, 2, 9)
        idx = NDimTwoLayerGrid(lows, highs)
        with pytest.raises(InvalidQueryError):
            idx.box_query(np.zeros(3), np.ones(3))

    def test_rejects_inverted_query(self):
        lows, highs = make_boxes(10, 2, 9)
        idx = NDimTwoLayerGrid(lows, highs)
        with pytest.raises(InvalidQueryError):
            idx.box_query(np.array([0.5, 0.5]), np.array([0.4, 0.6]))

    def test_empty_index(self):
        idx = NDimTwoLayerGrid(np.zeros((0, 2)), np.zeros((0, 2)))
        assert idx.box_query(np.zeros(2), np.ones(2)).shape[0] == 0

    def test_generalised_lemma_skips_classes(self):
        # For a query spanning several tiles, scanned entry count must be
        # below total replicas (classes were skipped), yet results exact.
        lows, highs = make_boxes(2000, 2, 10, extent=0.3)
        idx = NDimTwoLayerGrid(lows, highs, partitions_per_dim=5)
        stats = QueryStats()
        ql = np.array([0.2, 0.2])
        qh = np.array([0.9, 0.9])
        got = idx.box_query(ql, qh, stats)
        assert stats.rects_scanned < idx.replica_count
        assert set(got.tolist()) == set(idx.brute_force(ql, qh).tolist())

    def test_comparisons_at_most_one_per_dim_for_wide_queries(self):
        lows, highs = make_boxes(1000, 3, 11, extent=0.05)
        idx = NDimTwoLayerGrid(lows, highs, partitions_per_dim=4)
        stats = QueryStats()
        idx.box_query(np.array([0.1, 0.1, 0.1]), np.array([0.9, 0.9, 0.9]), stats)
        # Multi-tile span per dim -> <= m comparisons per scanned box.
        assert stats.comparisons <= 3 * stats.rects_scanned
