"""Tests for batch (Section VI) and parallel query processing."""

import numpy as np
import pytest

from repro.datasets import generate_window_queries
from repro.errors import InvalidQueryError
from repro.core import (
    TwoLayerGrid,
    evaluate_queries_based,
    evaluate_tiles_based,
    parallel_window_queries,
)
from repro.stats import QueryStats

from conftest import ids_set


@pytest.fixture(scope="module")
def index(uniform_data):
    return TwoLayerGrid.build(uniform_data, partitions_per_dim=16)


@pytest.fixture(scope="module")
def windows(uniform_data):
    return generate_window_queries(uniform_data, 60, 1.0, seed=51)


class TestBatchEquivalence:
    def test_queries_based_matches_single_queries(self, index, windows, uniform_data):
        results = evaluate_queries_based(index, windows)
        assert len(results) == len(windows)
        for w, got in zip(windows, results):
            assert ids_set(got) == ids_set(uniform_data.brute_force_window(w))

    def test_tiles_based_matches_queries_based(self, index, windows):
        qb = evaluate_queries_based(index, windows)
        tb = evaluate_tiles_based(index, windows)
        for a, b in zip(qb, tb):
            assert ids_set(a) == ids_set(b)

    def test_tiles_based_no_duplicates(self, index, windows):
        for got in evaluate_tiles_based(index, windows):
            assert len(got) == len(ids_set(got))

    def test_empty_batch(self, index):
        assert evaluate_tiles_based(index, []) == []
        assert evaluate_queries_based(index, []) == []

    def test_batch_with_empty_result_queries(self, index):
        from repro.geometry import Rect

        # A window over an empty corner of the map.
        windows = [Rect(0.001, 0.001, 0.0011, 0.0011)]
        (got,) = evaluate_tiles_based(index, windows)
        assert isinstance(got, np.ndarray)

    def test_tiles_based_visits_each_tile_once_per_query_overlap(
        self, index, windows
    ):
        # Subtask count == sum over queries of overlapped non-empty tiles.
        stats_tb = QueryStats()
        evaluate_tiles_based(index, windows, stats_tb)
        stats_qb = QueryStats()
        evaluate_queries_based(index, windows, stats_qb)
        assert stats_tb.partitions_visited == stats_qb.partitions_visited
        assert stats_tb.rects_scanned == stats_qb.rects_scanned


class TestDiskBatches:
    def test_disk_tiles_based_matches_queries_based(self, index, uniform_data):
        from repro.datasets import generate_disk_queries
        from repro.core import (
            evaluate_disk_queries_based,
            evaluate_disk_tiles_based,
        )

        queries = generate_disk_queries(uniform_data, 40, 1.0, seed=53)
        qb = evaluate_disk_queries_based(index, queries)
        tb = evaluate_disk_tiles_based(index, queries)
        for a, b, q in zip(qb, tb, queries):
            assert len(b) == len(ids_set(b)), "tiles-based disk duplicates"
            assert ids_set(a) == ids_set(b)
            assert ids_set(a) == ids_set(
                uniform_data.brute_force_disk(q.cx, q.cy, q.radius)
            )

    def test_disk_batch_empty(self, index):
        from repro.core import evaluate_disk_tiles_based

        assert evaluate_disk_tiles_based(index, []) == []

    def test_disk_batch_work_equivalence(self, index, uniform_data):
        from repro.datasets import generate_disk_queries
        from repro.core import (
            evaluate_disk_queries_based,
            evaluate_disk_tiles_based,
        )

        queries = generate_disk_queries(uniform_data, 20, 1.0, seed=54)
        s_q, s_t = QueryStats(), QueryStats()
        evaluate_disk_queries_based(index, queries, s_q)
        evaluate_disk_tiles_based(index, queries, s_t)
        assert s_q.rects_scanned == s_t.rects_scanned


class TestParallel:
    def test_counts_match_sequential(self, index, windows):
        expected = np.asarray(
            [len(ids) for ids in evaluate_queries_based(index, windows)]
        )
        for method in ("queries", "tiles"):
            for workers in (1, 2, 3):
                got = parallel_window_queries(
                    index, windows, workers=workers, method=method
                )
                assert np.array_equal(got, expected), (method, workers)

    def test_rejects_bad_method(self, index, windows):
        with pytest.raises(InvalidQueryError):
            parallel_window_queries(index, windows, workers=2, method="rows")

    def test_rejects_bad_workers(self, index, windows):
        with pytest.raises(InvalidQueryError):
            parallel_window_queries(index, windows, workers=0)

    def test_empty_batch(self, index):
        got = parallel_window_queries(index, [], workers=2)
        assert got.shape == (0,)

    def test_more_workers_than_queries(self, index, uniform_data):
        few = generate_window_queries(uniform_data, 3, 1.0, seed=52)
        got = parallel_window_queries(index, few, workers=4, method="tiles")
        expected = [len(ids) for ids in evaluate_queries_based(index, few)]
        assert got.tolist() == expected


class TestWorkerDeath:
    def test_worker_death_raises_parallel_execution_error(
        self, index, windows, monkeypatch
    ):
        """A worker killed mid-batch must surface ParallelExecutionError,
        not hang (multiprocessing.Pool silently respawns dead workers and
        leaves the map stuck forever).

        The shard function is monkeypatched *before* the pool forks, so
        the children inherit the suicidal version by module state while
        the parent pickles it by name.
        """
        import repro.core.parallel as par
        from repro.errors import ParallelExecutionError

        monkeypatch.setattr(par, "_run_query_shard", _exit_shard)
        pool = par.ParallelBatchEvaluator(index, workers=2)
        try:
            with pytest.raises(ParallelExecutionError, match="died mid-batch"):
                pool.run(windows, method="queries")
            # a broken pool refuses reuse instead of hanging
            with pytest.raises(ParallelExecutionError, match="broken"):
                pool.run(windows, method="queries")
        finally:
            pool.close()

    def test_worker_exception_wrapped(self, index, windows, monkeypatch):
        import repro.core.parallel as par
        from repro.errors import ParallelExecutionError

        monkeypatch.setattr(par, "_run_query_shard", _raise_shard)
        with par.ParallelBatchEvaluator(index, workers=2) as pool:
            with pytest.raises(ParallelExecutionError, match="ValueError"):
                pool.run(windows, method="queries")

    def test_close_is_idempotent_after_breakage(self, index, windows, monkeypatch):
        import repro.core.parallel as par
        from repro.errors import ParallelExecutionError

        monkeypatch.setattr(par, "_run_query_shard", _exit_shard)
        pool = par.ParallelBatchEvaluator(index, workers=2)
        with pytest.raises(ParallelExecutionError):
            pool.run(windows, method="queries")
        pool.close()
        pool.close()


def _exit_shard(payload):
    import os

    os._exit(1)


def _raise_shard(payload):
    raise ValueError("shard exploded")
