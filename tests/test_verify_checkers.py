"""repro-verify static rules: every RV1xx/RV2xx fires on its bad
fixture, stays silent on the good twin, and the shipped tree is clean.

Fixtures live in ``tests/fixtures/verify`` and may contain several
modules (``# module: <dotted>`` section markers) because the protocol
rules anchor on real module names — see the fixtures README.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.verify.base import collect_waivers
from repro.analysis.verify.callgraph import CallGraph, Program
from repro.analysis.verify.cli import RULES, main, verify_program
from repro.analysis.verify.concurrency import check_concurrency
from repro.analysis.verify.protocol_check import check_protocol

FIXTURES = Path(__file__).parent / "fixtures" / "verify"
REPO_SRC = Path(__file__).resolve().parents[1] / "src"

_MODULE_MARK = re.compile(r"#\s*module:\s*([\w.]+)\s*$")

#: static rules with a fixture pair (RV301/RV401 mutants live in code).
STATIC_CODES = sorted(c for c in RULES if c[2] in "12")

#: finding count the bad fixture must produce, all under its own code.
BAD_EXPECT = {
    "RV101": 2,  # opposite-order pair + transitive self-deadlock
    "RV102": 2,  # lexical time.sleep + transitive open() via _reload
    "RV103": 1,  # async -> sync _drain -> time.sleep
    "RV104": 1,  # _current assigned without the lock in sneak()
    "RV105": 1,  # xl written in place, no freeze, no version bump
    "RV201": 1,  # ping sent, never dispatched
    "RV202": 2,  # dead pong branch + documented-but-unsent pong
    "RV203": 2,  # batch omits epoch + reply satisfies no alternation
    "RV204": 3,  # insert/stats unhandled + dead knn branch
    "RV205": 1,  # encode_error with a real id and no trace=
}


def load_fixture(name: str) -> Program:
    """Split ``# module:`` sections into one in-memory Program."""
    sources: dict[str, list[str]] = {}
    current: "str | None" = None
    for line in (FIXTURES / name).read_text().splitlines():
        match = _MODULE_MARK.match(line.strip())
        if match:
            current = match.group(1)
            sources[current] = []
        elif current is not None:
            sources[current].append(line)
    assert sources, f"{name} has no '# module:' marker"
    return Program.from_sources(
        {
            dotted: (f"src/{dotted.replace('.', '/')}.py", "\n".join(body))
            for dotted, body in sources.items()
        }
    )


def run_static(program: Program):
    graph = CallGraph(program)
    return check_concurrency(program, graph) + check_protocol(program, graph)


@pytest.mark.parametrize("code", STATIC_CODES)
def test_rule_fires_on_bad_fixture(code):
    findings = run_static(load_fixture(f"{code.lower()}_bad.py"))
    assert sorted(f.code for f in findings) == [code] * BAD_EXPECT[code], (
        "\n".join(f.render() for f in findings)
    )
    assert all(f.line >= 1 and f.col >= 1 for f in findings)


@pytest.mark.parametrize("code", STATIC_CODES)
def test_rule_silent_on_good_fixture(code):
    findings = run_static(load_fixture(f"{code.lower()}_good.py"))
    assert findings == [], "\n".join(f.render() for f in findings)


class TestWaivers:
    SOURCE = (
        "def encode_error(req_id, code, message, trace=None):\n"
        "    return b''\n"
        "\n"
        "\n"
        "def reject(req, conn):\n"
        "    conn.send(encode_error(req.id, 'overloaded', 'full'))"
        "{comment}\n"
    )

    def verify_tree(self, tmp_path: Path, comment: str = "") -> list:
        pkg = tmp_path / "repro" / "server"
        pkg.mkdir(parents=True)
        (pkg / "service.py").write_text(self.SOURCE.format(comment=comment))
        return verify_program(
            tmp_path, run_model=False, run_explorer=False
        )

    def test_unwaived_finding_survives(self, tmp_path):
        findings = self.verify_tree(tmp_path)
        assert [f.code for f in findings] == ["RV205"]

    def test_line_waiver_suppresses(self, tmp_path):
        comment = "  # repro-verify: disable=RV205"
        assert self.verify_tree(tmp_path, comment) == []

    def test_wrong_code_does_not_suppress(self, tmp_path):
        comment = "  # repro-verify: disable=RV101"
        findings = self.verify_tree(tmp_path, comment)
        assert [f.code for f in findings] == ["RV205"]

    def test_file_waiver_suppresses(self, tmp_path):
        findings = self.verify_tree(
            tmp_path, "\n# repro-verify: disable-file=RV205"
        )
        assert findings == []

    def test_collect_waivers_parses_both_forms(self):
        waivers = collect_waivers(
            "x = 1  # repro-verify: disable=RV101, RV102\n"
            "# repro-verify: disable-file=RV205\n"
        )
        assert waivers.suppressed("RV101", 1)
        assert waivers.suppressed("RV102", 1)
        assert not waivers.suppressed("RV103", 1)
        assert waivers.suppressed("RV205", 99)


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_select_unknown_code_errors(self):
        with pytest.raises(SystemExit):
            main(["--select", "RV999"])

    def test_github_annotations_on_findings(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "server"
        pkg.mkdir(parents=True)
        (pkg / "service.py").write_text(
            "def encode_error(req_id, code, message, trace=None):\n"
            "    return b''\n"
            "\n"
            "\n"
            "def reject(req, conn):\n"
            "    conn.send(encode_error(req.id, 'overloaded', 'full'))\n"
        )
        rc = main(
            [str(tmp_path), "--github", "--skip-model", "--skip-explorer"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "::error file=" in out
        assert "title=RV205" in out


def test_repo_static_checks_clean():
    """The acceptance gate CI runs: zero unwaived RV1xx/RV2xx findings."""
    findings = verify_program(
        REPO_SRC, run_model=False, run_explorer=False
    )
    assert findings == [], "\n".join(f.render() for f in findings)
