"""Tests for the 2-layer grid index (the paper's primary contribution)."""

import numpy as np
import pytest

from repro.datasets import (
    DiskQuery,
    RectDataset,
    generate_disk_queries,
    generate_uniform_rects,
    generate_window_queries,
)
from repro.geometry import Rect
from repro.grid import CLASS_A, CLASS_B, CLASS_C, CLASS_D, OneLayerGrid
from repro.core import TwoLayerGrid
from repro.stats import QueryStats

from conftest import ids_set


@pytest.fixture(scope="module")
def uniform_index(uniform_data):
    return TwoLayerGrid.build(uniform_data, partitions_per_dim=16)


class TestConstruction:
    def test_replica_count_equals_one_layer(self, uniform_data):
        # Section VII-B: 1-layer and 2-layer store exactly the same entries.
        one = OneLayerGrid.build(uniform_data, partitions_per_dim=16)
        two = TwoLayerGrid.build(uniform_data, partitions_per_dim=16)
        assert one.replica_count == two.replica_count

    def test_class_a_count_equals_objects(self, uniform_data, uniform_index):
        counts = uniform_index.class_counts()
        assert counts["A"] == len(uniform_data)

    def test_class_counts_sum_to_replicas(self, uniform_index):
        counts = uniform_index.class_counts()
        assert sum(counts.values()) == uniform_index.replica_count

    def test_secondary_partitions_disjoint(self, uniform_data):
        # No (tile, object) pair may appear in two classes.
        index = TwoLayerGrid.build(uniform_data, partitions_per_dim=8)
        for iy in range(8):
            for ix in range(8):
                seen: set[int] = set()
                for code in (CLASS_A, CLASS_B, CLASS_C, CLASS_D):
                    table = index.tile_class_table(ix, iy, code)
                    if table is None:
                        continue
                    ids = set(table.columns()[4].tolist())
                    assert not (seen & ids)
                    seen |= ids

    def test_class_membership_definition(self, uniform_data):
        # Spot-check Section III's class definitions on real tables.
        index = TwoLayerGrid.build(uniform_data, partitions_per_dim=8)
        g = index.grid
        for (ix, iy, code) in [(2, 2, CLASS_A), (2, 2, CLASS_B), (2, 2, CLASS_C), (2, 2, CLASS_D)]:
            table = index.tile_class_table(ix, iy, code)
            if table is None:
                continue
            tile = g.tile_rect(ix, iy)
            xl, yl, xu, yu, ids = table.columns()
            before_x = xl < tile.xl
            before_y = yl < tile.yl
            if code == CLASS_A:
                assert not before_x.any() and not before_y.any()
            elif code == CLASS_B:
                assert not before_x.any() and before_y.all()
            elif code == CLASS_C:
                assert before_x.all() and not before_y.any()
            else:
                assert before_x.all() and before_y.all()


class TestWindowQueries:
    def test_matches_brute_force(self, uniform_data, uniform_index):
        for w in generate_window_queries(uniform_data, 40, 1.0, seed=11):
            got = uniform_index.window_query(w)
            assert len(got) == len(ids_set(got)), "two-layer produced a duplicate"
            assert ids_set(got) == ids_set(uniform_data.brute_force_window(w))

    def test_matches_brute_force_zipf(self, zipf_data):
        index = TwoLayerGrid.build(zipf_data, partitions_per_dim=16)
        for w in generate_window_queries(zipf_data, 40, 0.5, seed=12):
            got = index.window_query(w)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == ids_set(zipf_data.brute_force_window(w))

    def test_boundary_aligned_window(self, tiny_data):
        index = TwoLayerGrid.build(tiny_data, partitions_per_dim=4)
        for w in [
            Rect(0.25, 0.25, 0.5, 0.5),
            Rect(0.0, 0.0, 0.25, 0.25),
            Rect(0.25, 0.0, 0.75, 1.0),
            Rect(0.5, 0.5, 0.5, 0.5),
        ]:
            got = index.window_query(w)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == ids_set(tiny_data.brute_force_window(w))

    def test_window_beyond_domain(self, tiny_data):
        index = TwoLayerGrid.build(tiny_data, partitions_per_dim=4)
        assert ids_set(index.window_query(Rect(-2, -2, 3, 3))) == set(
            range(len(tiny_data))
        )

    def test_count_window(self, uniform_data, uniform_index):
        for w in generate_window_queries(uniform_data, 10, 1.0, seed=13):
            assert uniform_index.count_window(w) == len(
                uniform_data.brute_force_window(w)
            )

    def test_empty_index(self):
        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        index = TwoLayerGrid.build(empty, partitions_per_dim=4)
        assert index.window_query(Rect(0, 0, 1, 1)).shape[0] == 0


class TestNoDuplicateGeneration:
    def test_zero_dedup_work(self, uniform_data, uniform_index):
        # The headline claim: no duplicate is ever generated, hence no
        # dedup checks happen at all (contrast with OneLayerGrid).
        stats = QueryStats()
        for w in generate_window_queries(uniform_data, 30, 1.0, seed=14):
            uniform_index.window_query(w, stats)
        assert stats.dedup_checks == 0
        assert stats.duplicates_generated == 0

    def test_scans_fewer_rects_than_one_layer(self, uniform_data):
        one = OneLayerGrid.build(uniform_data, partitions_per_dim=16)
        two = TwoLayerGrid.build(uniform_data, partitions_per_dim=16)
        s1, s2 = QueryStats(), QueryStats()
        for w in generate_window_queries(uniform_data, 30, 1.0, seed=15):
            one.window_query(w, s1)
            two.window_query(w, s2)
        assert s2.rects_scanned < s1.rects_scanned
        assert s2.comparisons < s1.comparisons

    def test_corollary_1_comparisons_bound(self, uniform_data):
        # For multi-tile queries: at most 2 comparisons per scanned rect.
        index = TwoLayerGrid.build(uniform_data, partitions_per_dim=32)
        for w in generate_window_queries(uniform_data, 20, 1.0, seed=16):
            ix0, ix1, iy0, iy1 = index.grid.tile_range_for_window(w)
            if ix1 - ix0 < 1 or iy1 - iy0 < 1:
                continue
            stats = QueryStats()
            index.window_query(w, stats)
            assert stats.comparisons <= 2 * stats.rects_scanned


class TestDiskQueries:
    def test_matches_brute_force(self, uniform_data, uniform_index):
        for q in generate_disk_queries(uniform_data, 40, 1.0, seed=17):
            got = uniform_index.disk_query(q)
            assert len(got) == len(ids_set(got)), "disk query duplicate"
            assert ids_set(got) == ids_set(
                uniform_data.brute_force_disk(q.cx, q.cy, q.radius)
            )

    def test_matches_brute_force_various_radii(self, zipf_data):
        index = TwoLayerGrid.build(zipf_data, partitions_per_dim=16)
        for area in (0.01, 0.1, 1.0, 5.0):
            for q in generate_disk_queries(zipf_data, 10, area, seed=18):
                got = index.disk_query(q)
                assert len(got) == len(ids_set(got))
                assert ids_set(got) == ids_set(
                    zipf_data.brute_force_disk(q.cx, q.cy, q.radius)
                )

    def test_disk_centered_on_tile_corner(self, uniform_data, uniform_index):
        q = DiskQuery(0.25, 0.25, 0.2)  # centre on a tile corner
        got = uniform_index.disk_query(q)
        assert len(got) == len(ids_set(got))
        assert ids_set(got) == ids_set(uniform_data.brute_force_disk(0.25, 0.25, 0.2))

    def test_disk_covering_domain(self, tiny_data):
        index = TwoLayerGrid.build(tiny_data, partitions_per_dim=4)
        got = index.disk_query(DiskQuery(0.5, 0.5, 3.0))
        assert ids_set(got) == set(range(len(tiny_data)))

    def test_zero_radius_disk(self, tiny_data):
        index = TwoLayerGrid.build(tiny_data, partitions_per_dim=4)
        got = index.disk_query(DiskQuery(0.5, 0.5, 0.0))
        assert ids_set(got) == ids_set(tiny_data.brute_force_disk(0.5, 0.5, 0.0))

    def test_big_objects_on_disk_boundary(self):
        # Large rectangles maximise the class-B/D boundary-arc duplicates
        # the canonical-tile rule must suppress.
        data = generate_uniform_rects(800, area=5e-2, seed=19)
        index = TwoLayerGrid.build(data, partitions_per_dim=12)
        for q in generate_disk_queries(data, 40, 2.0, seed=19):
            got = index.disk_query(q)
            assert len(got) == len(ids_set(got)), "boundary-arc duplicate leaked"
            assert ids_set(got) == ids_set(data.brute_force_disk(q.cx, q.cy, q.radius))


class TestInserts:
    def test_insert_into_correct_classes(self):
        index = TwoLayerGrid.build(
            RectDataset.from_rects([Rect(0.9, 0.9, 0.95, 0.95)]), partitions_per_dim=4
        )
        new_id = index.insert(Rect(0.2, 0.2, 0.3, 0.3))  # spans 2x2 tiles
        assert new_id == 1
        found_codes = []
        for iy in range(4):
            for ix in range(4):
                for code in (CLASS_A, CLASS_B, CLASS_C, CLASS_D):
                    t = index.tile_class_table(ix, iy, code)
                    if t is not None and new_id in t.columns()[4].tolist():
                        found_codes.append(code)
        assert sorted(found_codes) == [CLASS_A, CLASS_B, CLASS_C, CLASS_D]

    def test_insert_then_query_no_duplicates(self, tiny_data):
        index = TwoLayerGrid.build(tiny_data, partitions_per_dim=4)
        new_id = index.insert(Rect(0.1, 0.1, 0.9, 0.9))
        got = index.window_query(Rect(0, 0, 1, 1))
        assert got.tolist().count(new_id) == 1

    def test_update_cost_accumulates(self, uniform_data):
        # Inserting the last 10% after loading 90% (Table VI's workload).
        n = len(uniform_data)
        split = int(n * 0.9)
        index = TwoLayerGrid.build(uniform_data.slice(0, split), partitions_per_dim=16)
        for i in range(split, n):
            index.insert(uniform_data.rect(i), i)
        assert len(index) == n
        w = Rect(0.3, 0.3, 0.7, 0.7)
        assert ids_set(index.window_query(w)) == ids_set(
            uniform_data.brute_force_window(w)
        )


class TestWithinPredicate:
    def test_matches_brute_force(self, uniform_data, uniform_index):
        for w in generate_window_queries(uniform_data, 25, 1.0, seed=181):
            got = uniform_index.window_query_within(w)
            mask = (
                (uniform_data.xl >= w.xl)
                & (uniform_data.xu <= w.xu)
                & (uniform_data.yl >= w.yl)
                & (uniform_data.yu <= w.yu)
            )
            truth = set(np.flatnonzero(mask).tolist())
            assert len(got) == len(ids_set(got)), "within duplicates"
            assert ids_set(got) == truth

    def test_within_subset_of_intersects(self, uniform_data, uniform_index):
        for w in generate_window_queries(uniform_data, 10, 1.0, seed=182):
            within = ids_set(uniform_index.window_query_within(w))
            intersects = ids_set(uniform_index.window_query(w))
            assert within <= intersects

    def test_boundary_aligned(self, tiny_data):
        index = TwoLayerGrid.build(tiny_data, partitions_per_dim=4)
        w = Rect(0.25, 0.25, 0.75, 0.75)
        got = index.window_query_within(w)
        mask = (
            (tiny_data.xl >= w.xl)
            & (tiny_data.xu <= w.xu)
            & (tiny_data.yl >= w.yl)
            & (tiny_data.yu <= w.yu)
        )
        assert ids_set(got) == set(np.flatnonzero(mask).tolist())

    def test_scans_only_class_a(self, uniform_data, uniform_index):
        # Exactly one scanned entry per object at most: scanned count is
        # bounded by the object count, never by the replica count.
        stats = QueryStats()
        uniform_index.window_query_within(Rect(0, 0, 1, 1), stats)
        assert stats.rects_scanned == len(uniform_data)

    def test_facade_within(self, uniform_data):
        from repro.api import SpatialCollection
        from repro.errors import InvalidQueryError as IQE

        col = SpatialCollection.from_dataset(uniform_data, partitions_per_dim=16)
        got = col.window(0.2, 0.2, 0.8, 0.8, predicate="within")
        assert ids_set(got) <= ids_set(col.window(0.2, 0.2, 0.8, 0.8))
        import pytest as _pytest

        with _pytest.raises(IQE):
            col.window(0, 0, 1, 1, predicate="touches")
        with _pytest.raises(IQE):
            col.window(0, 0, 1, 1, predicate="within", exact=True)
