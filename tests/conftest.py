"""Shared fixtures: small deterministic datasets and query workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    RectDataset,
    generate_uniform_rects,
    generate_zipf_rects,
)


@pytest.fixture(scope="session")
def uniform_data() -> RectDataset:
    """3K uniform rectangles with heavy tile replication (area 1e-3)."""
    return generate_uniform_rects(3000, area=1e-3, seed=101)


@pytest.fixture(scope="session")
def zipf_data() -> RectDataset:
    """3K zipfian rectangles (skewed distribution stress)."""
    return generate_zipf_rects(3000, area=1e-4, seed=102)


@pytest.fixture(scope="session")
def tiny_data() -> RectDataset:
    """A 10-rectangle dataset laid out by hand for exact assertions."""
    rects = np.array(
        [
            # xl,   yl,   xu,   yu
            [0.05, 0.05, 0.10, 0.10],  # 0: inside one tile
            [0.20, 0.20, 0.55, 0.30],  # 1: spans tiles in x
            [0.20, 0.20, 0.30, 0.55],  # 2: spans tiles in y
            [0.20, 0.20, 0.55, 0.55],  # 3: spans tiles in both
            [0.00, 0.00, 1.00, 1.00],  # 4: covers everything
            [0.50, 0.50, 0.50, 0.50],  # 5: degenerate point
            [0.25, 0.00, 0.25, 1.00],  # 6: vertical line on tile border
            [0.74, 0.74, 0.76, 0.76],  # 7: crosses a tile corner
            [0.99, 0.99, 1.00, 1.00],  # 8: at the domain's far corner
            [0.00, 0.40, 0.10, 0.45],  # 9: left edge
        ]
    )
    return RectDataset(rects[:, 0], rects[:, 1], rects[:, 2], rects[:, 3])


def ids_set(arr) -> set[int]:
    """Result array -> set of ids (helper used across test modules)."""
    return set(int(v) for v in arr)
