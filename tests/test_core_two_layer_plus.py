"""Tests for 2-layer⁺ (decomposed storage, Section IV-C)."""

import numpy as np
import pytest

from repro.datasets import generate_window_queries
from repro.geometry import Rect
from repro.grid import CLASS_A, CLASS_B, CLASS_C, CLASS_D
from repro.core import REQUIRED_TABLES, DecomposedTables, TwoLayerGrid, TwoLayerPlusGrid
from repro.core.decomposed import COMP_XL_LE, COMP_XU_GE, COMP_YL_LE, COMP_YU_GE
from repro.stats import QueryStats

from conftest import ids_set


@pytest.fixture(scope="module", params=["scan", "search_verify"])
def strategy(request):
    return request.param


class TestDecomposedTables:
    def _make(self, code):
        rng = np.random.default_rng(3)
        n = 50
        xl = rng.random(n)
        yl = rng.random(n)
        return DecomposedTables(xl, yl, xl + 0.1, yl + 0.1, np.arange(n), code), xl, yl

    def test_table_ii_required_tables(self):
        assert set(REQUIRED_TABLES[CLASS_A]) == {
            COMP_XL_LE, COMP_XU_GE, COMP_YL_LE, COMP_YU_GE,
        }
        assert set(REQUIRED_TABLES[CLASS_B]) == {COMP_XL_LE, COMP_XU_GE, COMP_YU_GE}
        assert set(REQUIRED_TABLES[CLASS_C]) == {COMP_XU_GE, COMP_YL_LE, COMP_YU_GE}
        assert set(REQUIRED_TABLES[CLASS_D]) == {COMP_XU_GE, COMP_YU_GE}

    def test_class_d_stores_only_two_tables(self):
        tables, _, _ = self._make(CLASS_D)
        assert tables.has_table(COMP_XU_GE) and tables.has_table(COMP_YU_GE)
        assert not tables.has_table(COMP_XL_LE) and not tables.has_table(COMP_YL_LE)

    def test_prefix_search_le(self):
        tables, xl, _ = self._make(CLASS_A)
        bound = 0.5
        got = set(tables.search(COMP_XL_LE, bound).tolist())
        assert got == set(np.flatnonzero(xl <= bound).tolist())

    def test_suffix_search_ge(self):
        tables, xl, _ = self._make(CLASS_A)
        bound = 0.5
        got = set(tables.search(COMP_XU_GE, bound).tolist())
        assert got == set(np.flatnonzero(xl + 0.1 >= bound).tolist())

    def test_search_bounds_below_and_above(self):
        tables, _, _ = self._make(CLASS_A)
        assert tables.search(COMP_XL_LE, -1.0).shape[0] == 0
        assert tables.search(COMP_XL_LE, 2.0).shape[0] == 50
        assert tables.search(COMP_XU_GE, 2.0).shape[0] == 0
        assert tables.search(COMP_XU_GE, -1.0).shape[0] == 50

    def test_nbytes_grows_with_tables(self):
        a, _, _ = self._make(CLASS_A)
        d, _, _ = self._make(CLASS_D)
        assert a.nbytes > d.nbytes


class TestTwoLayerPlusQueries:
    def test_matches_two_layer_exactly(self, uniform_data, strategy):
        two = TwoLayerGrid.build(uniform_data, partitions_per_dim=16)
        plus = TwoLayerPlusGrid.build(
            uniform_data, partitions_per_dim=16, multi_comparison_strategy=strategy
        )
        for w in generate_window_queries(uniform_data, 40, 1.0, seed=21):
            assert ids_set(plus.window_query(w)) == ids_set(two.window_query(w))

    def test_matches_brute_force_zipf(self, zipf_data, strategy):
        plus = TwoLayerPlusGrid.build(
            zipf_data, partitions_per_dim=16, multi_comparison_strategy=strategy
        )
        for w in generate_window_queries(zipf_data, 30, 0.5, seed=22):
            got = plus.window_query(w)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == ids_set(zipf_data.brute_force_window(w))

    def test_disk_query_inherited(self, uniform_data):
        from repro.datasets import generate_disk_queries

        plus = TwoLayerPlusGrid.build(uniform_data, partitions_per_dim=16)
        for q in generate_disk_queries(uniform_data, 15, 1.0, seed=23):
            got = plus.disk_query(q)
            assert ids_set(got) == ids_set(
                uniform_data.brute_force_disk(q.cx, q.cy, q.radius)
            )

    def test_rejects_unknown_strategy(self, uniform_data):
        with pytest.raises(ValueError):
            TwoLayerPlusGrid.build(
                uniform_data, partitions_per_dim=8, multi_comparison_strategy="magic"
            )

    def test_boundary_aligned_window(self, tiny_data, strategy):
        plus = TwoLayerPlusGrid.build(
            tiny_data, partitions_per_dim=4, multi_comparison_strategy=strategy
        )
        w = Rect(0.25, 0.25, 0.5, 0.5)
        got = plus.window_query(w)
        assert ids_set(got) == ids_set(tiny_data.brute_force_window(w))


class TestStorageCosts:
    def test_plus_uses_more_memory(self, uniform_data):
        # Fig. 7: 2-layer+ stores a second decomposed copy per tile.
        two = TwoLayerGrid.build(uniform_data, partitions_per_dim=16)
        plus = TwoLayerPlusGrid.build(uniform_data, partitions_per_dim=16)
        assert plus.nbytes > two.nbytes

    def test_replica_count_unchanged(self, uniform_data):
        two = TwoLayerGrid.build(uniform_data, partitions_per_dim=16)
        plus = TwoLayerPlusGrid.build(uniform_data, partitions_per_dim=16)
        assert plus.replica_count == two.replica_count


class TestInsertsInvalidateDecomposition:
    def test_insert_then_query_sees_new_object(self, tiny_data):
        plus = TwoLayerPlusGrid.build(tiny_data, partitions_per_dim=4)
        new_id = plus.insert(Rect(0.6, 0.6, 0.62, 0.62))
        got = plus.window_query(Rect(0.55, 0.55, 0.65, 0.65))
        assert new_id in ids_set(got)

    def test_insert_spanning_many_tiles(self, tiny_data):
        plus = TwoLayerPlusGrid.build(tiny_data, partitions_per_dim=4)
        new_id = plus.insert(Rect(0.05, 0.05, 0.95, 0.95))
        got = plus.window_query(Rect(0, 0, 1, 1))
        assert got.tolist().count(new_id) == 1

    def test_insert_matches_brute_force_afterwards(self, uniform_data):
        n = len(uniform_data)
        split = n - 100
        plus = TwoLayerPlusGrid.build(uniform_data.slice(0, split), partitions_per_dim=8)
        for i in range(split, n):
            plus.insert(uniform_data.rect(i), i)
        for w in generate_window_queries(uniform_data, 10, 1.0, seed=24):
            assert ids_set(plus.window_query(w)) == ids_set(
                uniform_data.brute_force_window(w)
            )


class TestSearchStats:
    def test_single_comparison_tiles_use_binary_search(self, uniform_data):
        # For a wide query, edge tiles need one comparison; the plus index
        # answers them in O(log n) comparisons instead of O(n).
        two = TwoLayerGrid.build(uniform_data, partitions_per_dim=16)
        plus = TwoLayerPlusGrid.build(uniform_data, partitions_per_dim=16)
        w = Rect(0.1, 0.1, 0.9, 0.9)
        s_two, s_plus = QueryStats(), QueryStats()
        two.window_query(w, s_two)
        plus.window_query(w, s_plus)
        assert s_plus.comparisons < s_two.comparisons
