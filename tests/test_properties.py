"""Property-based tests (hypothesis) for the core invariants.

The central invariant of the whole paper: **every index answers every
range query with exactly the brute-force result set and no duplicates**,
for arbitrary rectangle collections and arbitrary query ranges —
including adversarial ones lying exactly on partition boundaries, which
hypothesis is good at finding.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.block import BlockIndex
from repro.datasets import DiskQuery, RectDataset
from repro.geometry import Rect, reference_point
from repro.grid import GridPartitioner, OneLayerGrid, replicate
from repro.core import NDimTwoLayerGrid, TwoLayerGrid, TwoLayerPlusGrid
from repro.quadtree import MXCIFQuadTree, QuadTree, TwoLayerQuadTree
from repro.rtree import RStarTree, RTree

# Coordinates snapped to a coarse lattice maximise boundary collisions
# with tile borders (1/8, 1/4, ...), the adversarial case for SOP.
coord = st.integers(0, 32).map(lambda v: v / 32.0)


@st.composite
def rect_strategy(draw):
    x1, x2 = draw(coord), draw(coord)
    y1, y2 = draw(coord), draw(coord)
    return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


@st.composite
def dataset_strategy(draw):
    rects = draw(st.lists(rect_strategy(), min_size=1, max_size=40))
    return RectDataset.from_rects(rects)


window = rect_strategy()


def check_index(index, data: RectDataset, w: Rect) -> None:
    got = index.window_query(w)
    assert len(got) == len(set(got.tolist())), f"{type(index).__name__} duplicates"
    assert set(got.tolist()) == set(data.brute_force_window(w).tolist()), (
        type(index).__name__
    )


@settings(max_examples=120, deadline=None)
@given(data=dataset_strategy(), w=window, grid=st.integers(1, 9))
def test_grid_indexes_equal_brute_force(data, w, grid):
    for cls in (OneLayerGrid, TwoLayerGrid, TwoLayerPlusGrid):
        check_index(cls.build(data, partitions_per_dim=grid), data, w)


@settings(max_examples=60, deadline=None)
@given(data=dataset_strategy(), w=window)
def test_tree_indexes_equal_brute_force(data, w):
    check_index(QuadTree.build(data, capacity=8, max_depth=4), data, w)
    check_index(TwoLayerQuadTree.build(data, capacity=8, max_depth=4), data, w)
    check_index(MXCIFQuadTree.build(data, max_depth=4), data, w)
    check_index(RTree.build(data, fanout=4), data, w)
    check_index(RStarTree.build(data, fanout=4), data, w)
    check_index(BlockIndex.build(data, levels=4), data, w)


@settings(max_examples=80, deadline=None)
@given(
    data=dataset_strategy(),
    cx=coord,
    cy=coord,
    radius=st.integers(0, 16).map(lambda v: v / 16.0),
    grid=st.integers(1, 9),
)
def test_two_layer_disk_equals_brute_force(data, cx, cy, radius, grid):
    index = TwoLayerGrid.build(data, partitions_per_dim=grid)
    q = DiskQuery(cx, cy, radius)
    got = index.disk_query(q)
    assert len(got) == len(set(got.tolist())), "disk duplicates"
    assert set(got.tolist()) == set(data.brute_force_disk(cx, cy, radius).tolist())


@settings(max_examples=80, deadline=None)
@given(data=dataset_strategy(), grid=st.integers(1, 9))
def test_replication_class_a_unique(data, grid):
    """Every object has exactly one class-A replica (Section III)."""
    rep = replicate(data, GridPartitioner(grid, grid))
    a_objs = rep.obj_ids[rep.class_codes == 0]
    assert sorted(a_objs.tolist()) == list(range(len(data)))


@settings(max_examples=80, deadline=None)
@given(data=dataset_strategy(), grid=st.integers(1, 9))
def test_replication_covers_intersections(data, grid):
    """An object is replicated to a tile iff its MBR intersects it."""
    g = GridPartitioner(grid, grid)
    rep = replicate(data, g)
    by_obj: dict[int, set[int]] = {}
    for tid, oid in zip(rep.tile_ids.tolist(), rep.obj_ids.tolist()):
        by_obj.setdefault(oid, set()).add(tid)
    for i in range(len(data)):
        r = data.rect(i)
        expected = {
            g.tile_id(ix, iy)
            for iy in range(g.tile_iy(r.yl), g.tile_iy(r.yu) + 1)
            for ix in range(g.tile_ix(r.xl), g.tile_ix(r.xu) + 1)
        }
        assert by_obj[i] == expected


@settings(max_examples=100, deadline=None)
@given(r=rect_strategy(), w=rect_strategy(), grid=st.integers(1, 9))
def test_reference_point_lies_in_exactly_one_tile(r, w, grid):
    """The dedup soundness of [9]: the reference point is in one tile."""
    if not r.intersects(w):
        return
    g = GridPartitioner(grid, grid)
    px, py = reference_point(r, w)
    owners = [
        (ix, iy)
        for iy in range(g.ny)
        for ix in range(g.nx)
        if g.tile_ix(px) == ix and g.tile_iy(py) == iy
    ]
    assert len(owners) == 1


@settings(max_examples=100, deadline=None)
@given(a=rect_strategy(), b=rect_strategy())
def test_rect_algebra_properties(a, b):
    # Intersection commutes and is contained in both operands.
    ab = a.intersection(b)
    ba = b.intersection(a)
    assert (ab is None) == (ba is None)
    if ab is not None:
        assert ab == ba
        assert a.contains(ab) and b.contains(ab)
        assert a.intersects(b)
    # Union contains both operands.
    u = a.union(b)
    assert u.contains(a) and u.contains(b)
    # Intersects is symmetric and consistent with overlap_area.
    assert a.intersects(b) == b.intersects(a)
    if a.overlap_area(b) > 0:
        assert a.intersects(b)


@settings(max_examples=60, deadline=None)
@given(
    boxes=st.lists(
        st.tuples(coord, coord, coord, coord).map(
            lambda t: (
                (min(t[0], t[2]), min(t[1], t[3])),
                (max(t[0], t[2]), max(t[1], t[3])),
            )
        ),
        min_size=1,
        max_size=30,
    ),
    k=st.integers(1, 5),
)
def test_ndim_equals_brute_force_2d(boxes, k):
    lows = np.asarray([b[0] for b in boxes])
    highs = np.asarray([b[1] for b in boxes])
    idx = NDimTwoLayerGrid(lows, highs, partitions_per_dim=k)
    got = idx.box_query(np.array([0.25, 0.25]), np.array([0.75, 0.75]))
    assert len(got) == len(set(got.tolist()))
    assert set(got.tolist()) == set(
        idx.brute_force(np.array([0.25, 0.25]), np.array([0.75, 0.75])).tolist()
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 1000),
    grid=st.integers(2, 10),
    wx=coord,
    wy=coord,
)
def test_refinement_modes_agree_on_random_linestrings(seed, grid, wx, wy):
    """All three refinement modes return the same exact result set."""
    import numpy as np

    from repro.core import RefinementEngine, TwoLayerGrid
    from repro.geometry import LineString

    rng = np.random.default_rng(seed)
    geoms = []
    for _ in range(25):
        x, y = rng.random(2) * 0.8
        n_pts = int(rng.integers(2, 5))
        pts = [(x + rng.random() * 0.2, y + rng.random() * 0.2) for _ in range(n_pts)]
        geoms.append(LineString(pts))
    data = RectDataset.from_geometries(geoms)
    index = TwoLayerGrid.build(data, partitions_per_dim=grid)
    engine = RefinementEngine(index, data)
    w = Rect(wx, wy, min(wx + 0.3, 1.0), min(wy + 0.3, 1.0))
    results = {
        mode: set(engine.window(w, mode).tolist())
        for mode in ("simple", "refavoid", "refavoid_plus")
    }
    assert results["simple"] == results["refavoid"] == results["refavoid_plus"]
    # And every certified result genuinely intersects the window.
    from repro.geometry import geometry_intersects_window

    for oid in results["simple"]:
        assert geometry_intersects_window(geoms[oid], w)
