"""Tests for BLOCK and the simulated distributed engine."""

import numpy as np
import pytest

from repro.block import BlockIndex
from repro.datasets import (
    RectDataset,
    generate_disk_queries,
    generate_uniform_rects,
    generate_window_queries,
)
from repro.distributed import SimulatedSpatialCluster
from repro.errors import InvalidGridError, InvalidQueryError
from repro.geometry import Rect

from conftest import ids_set


@pytest.fixture(scope="module")
def data():
    return generate_uniform_rects(3000, area=1e-4, seed=81)


@pytest.fixture(scope="module")
def block(data):
    return BlockIndex.build(data, levels=7)


@pytest.fixture(scope="module")
def cluster(data):
    return SimulatedSpatialCluster(data, partitions_per_dim=4)


class TestBlockPlacement:
    def test_levels_validation(self):
        with pytest.raises(InvalidGridError):
            BlockIndex(levels=0)

    def test_unique_placement(self, block, data):
        assert block.replica_count == len(data)

    def test_level_assignment_by_size(self):
        index = BlockIndex(levels=5)
        index.insert(Rect(0.0, 0.0, 0.6, 0.6), 0)   # bigger than level-1 cells
        index.insert(Rect(0.0, 0.0, 0.01, 0.01), 1)  # tiny -> deepest level
        assert len(index._grids[0]) + len(index._grids[1]) >= 1
        assert any(len(t) for t in index._grids[4].values())

    def test_big_object_lands_at_root_level(self):
        index = BlockIndex(levels=5)
        index.insert(Rect(0.0, 0.0, 1.0, 1.0), 0)
        assert sum(len(t) for t in index._grids[0].values()) == 1


class TestBlockQueries:
    def test_window_matches_brute_force(self, block, data):
        for w in generate_window_queries(data, 30, 1.0, seed=82):
            got = block.window_query(w)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == ids_set(data.brute_force_window(w))

    def test_disk_matches_brute_force(self, block, data):
        for q in generate_disk_queries(data, 20, 1.0, seed=83):
            got = block.disk_query(q)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == ids_set(data.brute_force_disk(q.cx, q.cy, q.radius))

    def test_boundary_objects_found(self):
        # Object whose lower corner is one cell left of the window.
        index = BlockIndex(levels=4)
        index.insert(Rect(0.49, 0.49, 0.52, 0.52), 0)
        got = index.window_query(Rect(0.51, 0.51, 0.6, 0.6))
        assert ids_set(got) == {0}

    def test_empty_index(self):
        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        index = BlockIndex.build(empty)
        assert index.window_query(Rect(0, 0, 1, 1)).shape[0] == 0


class TestSimulatedCluster:
    def test_results_match_brute_force(self, cluster, data):
        for w in generate_window_queries(data, 15, 1.0, seed=84):
            out = cluster.window_query(w)
            assert ids_set(out.ids) == ids_set(data.brute_force_window(w))

    def test_latency_includes_job_overhead(self, cluster, data):
        (w,) = generate_window_queries(data, 1, 0.1, seed=85)
        out = cluster.window_query(w)
        assert out.latency_s >= cluster.job_overhead_s
        assert out.tasks >= 1
        assert out.compute_s >= 0.0

    def test_threads_reduce_latency_but_not_below_overhead(self, cluster, data):
        (w,) = generate_window_queries(data, 1, 1.0, seed=86)
        lat1 = cluster.window_query(w, threads=1).latency_s
        lat8 = cluster.window_query(w, threads=8).latency_s
        assert lat8 <= lat1
        assert lat8 >= cluster.job_overhead_s

    def test_rejects_bad_threads(self, cluster, data):
        (w,) = generate_window_queries(data, 1, 0.1, seed=87)
        with pytest.raises(InvalidQueryError):
            cluster.window_query(w, threads=0)

    def test_throughput_consistent_with_published_envelope(self, cluster, data):
        # [24]: at most several hundred range queries per minute.
        ws = generate_window_queries(data, 10, 0.1, seed=88)
        qps = cluster.throughput(list(ws), threads=1)
        assert qps < 10  # i.e. < 600 queries/minute

    def test_validation(self, data):
        with pytest.raises(InvalidGridError):
            SimulatedSpatialCluster(data, partitions_per_dim=0)
        with pytest.raises(InvalidGridError):
            SimulatedSpatialCluster(data, job_overhead_s=-1.0)
