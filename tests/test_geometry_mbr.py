"""Unit tests for :mod:`repro.geometry.mbr`."""

import math

import pytest

from repro.errors import InvalidRectError
from repro.geometry import (
    Rect,
    max_dist_point_rect,
    min_dist_point_rect,
    reference_point,
)


class TestRectConstruction:
    def test_basic_fields(self):
        r = Rect(0.1, 0.2, 0.3, 0.5)
        assert (r.xl, r.yl, r.xu, r.yu) == (0.1, 0.2, 0.3, 0.5)

    def test_degenerate_point_allowed(self):
        r = Rect(0.5, 0.5, 0.5, 0.5)
        assert r.area == 0.0
        assert r.width == 0.0

    def test_degenerate_line_allowed(self):
        r = Rect(0.1, 0.5, 0.9, 0.5)
        assert r.height == 0.0
        assert r.width == pytest.approx(0.8)

    def test_inverted_x_rejected(self):
        with pytest.raises(InvalidRectError):
            Rect(0.5, 0.0, 0.4, 1.0)

    def test_inverted_y_rejected(self):
        with pytest.raises(InvalidRectError):
            Rect(0.0, 0.5, 1.0, 0.4)

    def test_nan_rejected(self):
        with pytest.raises(InvalidRectError):
            Rect(float("nan"), 0.0, 1.0, 1.0)

    def test_inf_rejected(self):
        with pytest.raises(InvalidRectError):
            Rect(0.0, 0.0, float("inf"), 1.0)

    def test_from_points(self):
        r = Rect.from_points([(0.3, 0.9), (0.1, 0.2), (0.5, 0.4)])
        assert r == Rect(0.1, 0.2, 0.5, 0.9)

    def test_from_points_empty_rejected(self):
        with pytest.raises(InvalidRectError):
            Rect.from_points([])

    def test_frozen(self):
        r = Rect(0, 0, 1, 1)
        with pytest.raises(AttributeError):
            r.xl = 5.0  # type: ignore[misc]


class TestRectMeasures:
    def test_area(self):
        assert Rect(0, 0, 2, 3).area == 6

    def test_margin_is_half_perimeter(self):
        assert Rect(0, 0, 2, 3).margin == 5

    def test_center(self):
        assert Rect(0, 0, 2, 4).center() == (1.0, 2.0)

    def test_corners_count_and_membership(self):
        corners = list(Rect(0, 0, 1, 2).corners())
        assert len(corners) == 4
        assert (0.0, 0.0) in corners and (1.0, 2.0) in corners


class TestRectPredicates:
    def test_intersects_overlapping(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(0.5, 0.5, 2, 2))

    def test_intersects_touching_edge(self):
        # Closed-interval semantics: a shared edge counts.
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_intersects_touching_corner(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_disjoint_x(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.01, 0, 2, 1))

    def test_disjoint_y(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(0, 1.01, 1, 2))

    def test_contains_inner(self):
        assert Rect(0, 0, 1, 1).contains(Rect(0.2, 0.2, 0.8, 0.8))

    def test_contains_itself(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains(r)

    def test_not_contains_overlapping(self):
        assert not Rect(0, 0, 1, 1).contains(Rect(0.5, 0.5, 1.5, 0.8))

    def test_contains_point_inside_and_boundary(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0.5, 0.5)
        assert r.contains_point(0.0, 1.0)
        assert not r.contains_point(1.0001, 0.5)

    def test_covers_in_dim(self):
        w = Rect(0, 0, 1, 1)
        r = Rect(0.2, -0.5, 0.8, 1.5)
        assert w.covers_in_dim(r, "x")
        assert not w.covers_in_dim(r, "y")

    def test_covers_in_dim_bad_dim(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).covers_in_dim(Rect(0, 0, 1, 1), "z")


class TestRectOps:
    def test_intersection(self):
        got = Rect(0, 0, 1, 1).intersection(Rect(0.5, 0.5, 2, 2))
        assert got == Rect(0.5, 0.5, 1, 1)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection_touching_is_degenerate(self):
        got = Rect(0, 0, 1, 1).intersection(Rect(1, 0, 2, 1))
        assert got is not None and got.width == 0.0

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)

    def test_enlargement_zero_when_contained(self):
        assert Rect(0, 0, 2, 2).enlargement(Rect(0.5, 0.5, 1, 1)) == 0.0

    def test_enlargement_positive(self):
        assert Rect(0, 0, 1, 1).enlargement(Rect(2, 0, 3, 1)) == pytest.approx(2.0)

    def test_overlap_area(self):
        assert Rect(0, 0, 1, 1).overlap_area(Rect(0.5, 0.5, 2, 2)) == pytest.approx(0.25)

    def test_overlap_area_disjoint(self):
        assert Rect(0, 0, 1, 1).overlap_area(Rect(3, 3, 4, 4)) == 0.0

    def test_as_tuple_roundtrip(self):
        r = Rect(0.1, 0.2, 0.3, 0.4)
        assert Rect(*[r.as_tuple()[i] for i in (0, 1, 2, 3)]) == r


class TestReferencePoint:
    def test_result_inside_intersection(self):
        r = Rect(0.2, 0.2, 0.8, 0.8)
        w = Rect(0.5, 0.1, 1.0, 0.6)
        px, py = reference_point(r, w)
        assert (px, py) == (0.5, 0.2)

    def test_window_inside_rect(self):
        r = Rect(0, 0, 1, 1)
        w = Rect(0.3, 0.4, 0.5, 0.6)
        assert reference_point(r, w) == (0.3, 0.4)

    def test_disjoint_raises(self):
        with pytest.raises(InvalidRectError):
            reference_point(Rect(0, 0, 0.1, 0.1), Rect(0.5, 0.5, 1, 1))

    def test_reference_point_is_point_of_both(self):
        r = Rect(0.2, 0.3, 0.9, 0.7)
        w = Rect(0.4, 0.1, 0.6, 0.5)
        px, py = reference_point(r, w)
        assert r.contains_point(px, py) and w.contains_point(px, py)


class TestPointRectDistances:
    def test_min_dist_inside_is_zero(self):
        assert min_dist_point_rect(0.5, 0.5, Rect(0, 0, 1, 1)) == 0.0

    def test_min_dist_left(self):
        assert min_dist_point_rect(-1.0, 0.5, Rect(0, 0, 1, 1)) == pytest.approx(1.0)

    def test_min_dist_corner(self):
        assert min_dist_point_rect(2, 2, Rect(0, 0, 1, 1)) == pytest.approx(math.sqrt(2))

    def test_max_dist_from_center(self):
        assert max_dist_point_rect(0.5, 0.5, Rect(0, 0, 1, 1)) == pytest.approx(
            math.hypot(0.5, 0.5)
        )

    def test_max_dist_outside(self):
        assert max_dist_point_rect(-1, 0, Rect(0, 0, 1, 1)) == pytest.approx(
            math.hypot(2, 1)
        )

    def test_min_le_max(self):
        r = Rect(0.2, 0.3, 0.6, 0.9)
        for p in [(-1, -1), (0.5, 0.5), (2, 0.1)]:
            assert min_dist_point_rect(*p, r) <= max_dist_point_rect(*p, r)
