"""Deterministic interleaving explorer: exhaustive snapshot publish/read
and write-replication coverage, plus proof both seeded mutants are
caught."""

from __future__ import annotations

from repro.analysis.verify.schedule import (
    EagerWorkerLoop,
    TornPublishStore,
    all_interleavings,
    default_worker_loop,
    explore_replication,
    explore_snapshot_store,
    interleaving_count,
    make_scripted_store,
    replication_frames,
)
from repro.geometry.mbr import Rect
from repro.server.snapshot import SnapshotStore
from repro.shard.worker import _WorkerLoop

OPS = [
    ("insert", Rect(0.4, 0.4, 0.5, 0.5)),
    ("delete", 3),
    ("insert", Rect(0.1, 0.6, 0.2, 0.7)),
    ("delete", 100),  # miss: version must not advance
    ("delete", 3),  # repeat miss on a tombstone
]


class TestInterleavings:
    def test_exhaustive_and_order_preserving(self):
        merges = list(all_interleavings("ab", "xy"))
        assert len(merges) == interleaving_count(2, 2) == 6
        assert len(set(merges)) == 6
        for merge in merges:
            assert [c for c in merge if c in "ab"] == ["a", "b"]
            assert [c for c in merge if c in "xy"] == ["x", "y"]

    def test_three_way_count(self):
        merges = list(all_interleavings("ab", "c", "de"))
        assert len(merges) == interleaving_count(2, 1, 2) == 30


class TestSnapshotExplorer:
    def test_real_store_passes_exhaustively(self):
        store, rects = make_scripted_store()
        report = explore_snapshot_store(store, rects, OPS)
        assert report.ok, report.violations[0]
        assert report.schedules == len(OPS)
        assert report.probes > len(OPS)

    def test_yield_point_hook_is_removed_after_exploration(self):
        store, rects = make_scripted_store()
        explore_snapshot_store(store, rects, OPS[:1])
        assert "_yield_point" not in store.__dict__
        assert SnapshotStore._yield_point("tag") is None

    def test_torn_publish_mutant_is_caught(self):
        store, rects = make_scripted_store()
        data = store.current.data
        torn = TornPublishStore(store.current.index, data)
        report = explore_snapshot_store(
            torn, rects, [("insert", Rect(0.4, 0.4, 0.5, 0.5))]
        )
        assert not report.ok
        assert any(
            "torn or inconsistent" in v or "never committed" in v
            for v in report.violations
        ), report.violations


class TestReplicationExplorer:
    def test_real_worker_passes_all_schedules(self):
        report = explore_replication(default_worker_loop)
        assert report.ok, report.violations[0]
        frames = replication_frames([], writes=2, reads=2)
        per_replica = interleaving_count(len(frames[0]), len(frames[1]))
        assert report.schedules == per_replica * 2

    def test_eager_mutant_answers_at_wrong_epoch(self):
        def make_eager() -> _WorkerLoop:
            store, _ = make_scripted_store()
            return EagerWorkerLoop(store.current.index, store.current.data)

        report = explore_replication(make_eager)
        assert not report.ok
        assert any("epoch" in v for v in report.violations), (
            report.violations
        )
