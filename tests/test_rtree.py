"""Tests for the R-tree package: splits, STR packing, trees, queries."""

import numpy as np
import pytest

from repro.datasets import (
    RectDataset,
    generate_disk_queries,
    generate_uniform_rects,
    generate_window_queries,
    generate_zipf_rects,
)
from repro.errors import InvalidGridError
from repro.geometry import Rect
from repro.rtree import RStarTree, RTree, quadratic_split, rstar_split, str_pack
from repro.rtree.node import Node, area, margin, overlap, union_bounds

from conftest import ids_set


class TestNodeHelpers:
    def test_union_bounds(self):
        assert union_bounds((0, 0, 1, 1), (2, -1, 3, 0.5)) == (0, -1, 3, 1)

    def test_area_margin(self):
        assert area((0, 0, 2, 3)) == 6
        assert margin((0, 0, 2, 3)) == 5

    def test_overlap(self):
        assert overlap((0, 0, 1, 1), (0.5, 0.5, 2, 2)) == pytest.approx(0.25)
        assert overlap((0, 0, 1, 1), (2, 2, 3, 3)) == 0.0

    def test_node_matrix_and_mbr(self):
        node = Node(leaf=True, level=0)
        node.add((0.1, 0.2, 0.3, 0.4), 0)
        node.add((0.0, 0.5, 0.2, 0.9), 1)
        assert node.matrix().shape == (2, 4)
        assert node.mbr() == (0.0, 0.2, 0.3, 0.9)
        assert node.id_array().tolist() == [0, 1]

    def test_node_cache_invalidation(self):
        node = Node(leaf=True, level=0)
        node.add((0, 0, 1, 1), 0)
        _ = node.matrix()
        node.add((2, 2, 3, 3), 1)
        assert node.matrix().shape == (2, 4)
        assert node.id_array().tolist() == [0, 1]


class TestSplitAlgorithms:
    def _entries(self, seed, n=20):
        rng = np.random.default_rng(seed)
        xy = rng.random((n, 2))
        return [
            (float(x), float(y), float(x) + 0.05, float(y) + 0.05) for x, y in xy
        ]

    @pytest.mark.parametrize("split", [quadratic_split, rstar_split])
    def test_partition_is_complete_and_disjoint(self, split):
        bounds = self._entries(1)
        a, b = split(bounds, list(range(len(bounds))), min_fill=6)
        assert sorted(a + b) == list(range(len(bounds)))

    @pytest.mark.parametrize("split", [quadratic_split, rstar_split])
    def test_min_fill_respected(self, split):
        bounds = self._entries(2, n=17)
        a, b = split(bounds, list(range(17)), min_fill=6)
        assert len(a) >= 6 and len(b) >= 6

    def test_rstar_split_separates_clusters(self):
        # Two spatially distinct clusters must end up in different groups.
        left = [(0.0 + i * 0.01, 0.0, 0.01 + i * 0.01, 0.01) for i in range(9)]
        right = [(0.9 + i * 0.01, 0.9, 0.91 + i * 0.01, 0.91) for i in range(8)]
        bounds = left + right
        a, b = rstar_split(bounds, list(range(17)), min_fill=6)
        groups = [set(a), set(b)]
        left_ids = set(range(9))
        assert left_ids in groups or (set(range(9, 17)) in groups)


class TestSTRPacking:
    def test_root_covers_everything(self):
        data = generate_uniform_rects(1000, area=1e-5, seed=71)
        root = str_pack(data, fanout=16)
        mbr = root.mbr()
        assert mbr[0] <= data.xl.min() and mbr[2] >= data.xu.max()

    def test_fanout_respected(self):
        data = generate_uniform_rects(1000, area=1e-5, seed=71)
        root = str_pack(data, fanout=16)
        stack = [root]
        while stack:
            node = stack.pop()
            assert len(node) <= 16
            if not node.leaf:
                assert len(node) >= 1
                stack.extend(node.payloads)

    def test_all_ids_present_once(self):
        data = generate_uniform_rects(500, area=1e-5, seed=72)
        root = str_pack(data, fanout=8)
        seen: list[int] = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node.leaf:
                seen.extend(int(i) for i in node.payloads)
            else:
                stack.extend(node.payloads)
        assert sorted(seen) == list(range(500))

    def test_empty_dataset(self):
        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        root = str_pack(empty, fanout=16)
        assert root.leaf and len(root) == 0


@pytest.fixture(scope="module")
def data():
    return generate_uniform_rects(3000, area=1e-4, seed=73)


@pytest.fixture(scope="module")
def rtree(data):
    return RTree.build(data)


@pytest.fixture(scope="module")
def rstar(data):
    return RStarTree.build(data)


class TestQueries:
    def test_fanout_validation(self):
        with pytest.raises(InvalidGridError):
            RTree(fanout=2)

    @pytest.mark.parametrize("tree_name", ["rtree", "rstar"])
    def test_window_matches_brute_force(self, data, tree_name, request):
        tree = request.getfixturevalue(tree_name)
        for w in generate_window_queries(data, 30, 1.0, seed=74):
            got = tree.window_query(w)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == ids_set(data.brute_force_window(w))

    @pytest.mark.parametrize("tree_name", ["rtree", "rstar"])
    def test_disk_matches_brute_force(self, data, tree_name, request):
        tree = request.getfixturevalue(tree_name)
        for q in generate_disk_queries(data, 20, 1.0, seed=75):
            got = tree.disk_query(q)
            assert ids_set(got) == ids_set(data.brute_force_disk(q.cx, q.cy, q.radius))

    def test_empty_tree(self):
        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        tree = RTree.build(empty)
        assert tree.window_query(Rect(0, 0, 1, 1)).shape[0] == 0

    def test_height_is_logarithmic(self, rtree, data):
        import math

        expected = max(1, math.ceil(math.log(len(data), 16)))
        assert rtree.height <= expected + 1


class TestDynamicInserts:
    def test_insert_preserves_correctness(self):
        data = generate_zipf_rects(1500, area=1e-4, seed=76)
        tree = RTree.build(data.slice(0, 1000))
        for i in range(1000, 1500):
            tree.insert(data.rect(i), i)
        for w in generate_window_queries(data, 20, 1.0, seed=77):
            assert ids_set(tree.window_query(w)) == ids_set(
                data.brute_force_window(w)
            )

    def test_insert_only_build_rstar(self):
        data = generate_uniform_rects(800, area=1e-4, seed=78)
        tree = RStarTree.build(data)
        assert len(tree) == 800
        for w in generate_window_queries(data, 15, 1.0, seed=79):
            assert ids_set(tree.window_query(w)) == ids_set(
                data.brute_force_window(w)
            )

    def test_root_split_grows_height(self):
        tree = RTree(fanout=4)
        for i in range(30):
            tree.insert(Rect(i * 0.03, 0.0, i * 0.03 + 0.01, 0.01), i)
        assert tree.height >= 2
        assert ids_set(tree.window_query(Rect(0, 0, 1, 1))) == set(range(30))

    def test_rstar_forced_reinsert_triggers(self):
        # Small fanout + clustered inserts exercise the reinsert path.
        tree = RStarTree(fanout=6)
        rng = np.random.default_rng(80)
        rects = []
        for i in range(200):
            x, y = rng.random(2) * 0.1
            r = Rect(x, y, x + 0.01, y + 0.01)
            rects.append(r)
            tree.insert(r, i)
        got = tree.window_query(Rect(0, 0, 1, 1))
        assert ids_set(got) == set(range(200))

    def test_node_counts_reported(self, rtree, rstar):
        assert rtree.node_count > 1
        assert rstar.node_count > 1
