"""Tests for generalised convex range queries (Section IV-E extension)."""

import math

import numpy as np
import pytest

from repro.datasets import generate_uniform_rects, generate_zipf_rects
from repro.errors import InvalidQueryError
from repro.geometry import Rect
from repro.core import (
    ConvexPolygonRange,
    HalfPlaneStripRange,
    TwoLayerGrid,
    convex_range_query,
)
from repro.stats import QueryStats

from conftest import ids_set


@pytest.fixture(scope="module")
def data():
    return generate_uniform_rects(3000, area=1e-4, seed=121)


@pytest.fixture(scope="module")
def index(data):
    return TwoLayerGrid.build(data, partitions_per_dim=16)


def brute(data, q) -> set[int]:
    mask = q.intersects_rects(data.xl, data.yl, data.xu, data.yu)
    return set(np.flatnonzero(mask).tolist())


def regular_polygon(cx, cy, r, k, phase=0.0):
    return [
        (cx + r * math.cos(phase + 2 * math.pi * i / k),
         cy + r * math.sin(phase + 2 * math.pi * i / k))
        for i in range(k)
    ]


class TestConvexPolygonRange:
    def test_rejects_concave(self):
        with pytest.raises(InvalidQueryError):
            ConvexPolygonRange([(0, 0), (1, 0), (0.2, 0.2), (0, 1)])

    def test_accepts_triangle(self):
        q = ConvexPolygonRange([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9)])
        assert q.bounding_box() == Rect(0.1, 0.1, 0.9, 0.9)

    def test_classify_rect(self):
        q = ConvexPolygonRange(regular_polygon(0.5, 0.5, 0.4, 8))
        assert q.classify_rect(Rect(0.45, 0.45, 0.55, 0.55)) == 1   # inside
        assert q.classify_rect(Rect(0.0, 0.0, 0.05, 0.05)) == -1    # outside
        assert q.classify_rect(Rect(0.0, 0.4, 0.5, 0.6)) == 0       # partial

    @pytest.mark.parametrize("k", [3, 4, 5, 6, 8])
    def test_matches_brute_force(self, data, index, k):
        rng = np.random.default_rng(k)
        for _ in range(8):
            cx, cy = rng.uniform(0.25, 0.75, 2)
            q = ConvexPolygonRange(
                regular_polygon(cx, cy, rng.uniform(0.05, 0.3), k, rng.uniform(0, 6))
            )
            got = convex_range_query(index, q)
            assert len(got) == len(ids_set(got)), f"duplicates (k={k})"
            assert ids_set(got) == brute(data, q)

    def test_zipf_data(self):
        data = generate_zipf_rects(2000, area=1e-4, seed=122)
        index = TwoLayerGrid.build(data, partitions_per_dim=16)
        q = ConvexPolygonRange(regular_polygon(0.15, 0.15, 0.12, 6))
        got = convex_range_query(index, q)
        assert len(got) == len(ids_set(got))
        assert ids_set(got) == brute(data, q)

    def test_rectangle_as_polygon_equals_window_query(self, data, index):
        w = Rect(0.3, 0.3, 0.6, 0.55)
        q = ConvexPolygonRange([(w.xl, w.yl), (w.xu, w.yl), (w.xu, w.yu), (w.xl, w.yu)])
        got = convex_range_query(index, q)
        assert ids_set(got) == ids_set(index.window_query(w))

    def test_big_objects_boundary_dedup(self):
        # Large objects stress the class-B/D canonical-tile rule.
        data = generate_uniform_rects(600, area=5e-2, seed=123)
        index = TwoLayerGrid.build(data, partitions_per_dim=12)
        q = ConvexPolygonRange(regular_polygon(0.5, 0.5, 0.35, 5, phase=0.7))
        got = convex_range_query(index, q)
        assert len(got) == len(ids_set(got)), "boundary duplicate leaked"
        assert ids_set(got) == brute(data, q)

    def test_scans_fewer_rects_than_full_grid(self, data, index):
        q = ConvexPolygonRange(regular_polygon(0.5, 0.5, 0.2, 6))
        stats = QueryStats()
        convex_range_query(index, q, stats)
        assert 0 < stats.rects_scanned < index.replica_count


class TestHalfPlaneStripRange:
    def test_needs_half_planes(self):
        with pytest.raises(InvalidQueryError):
            HalfPlaneStripRange([])

    def test_single_half_plane(self, data, index):
        # Everything left of x = 0.4: half-plane 1*x + 0*y <= 0.4.
        q = HalfPlaneStripRange([(1.0, 0.0, 0.4)])
        got = convex_range_query(index, q)
        assert len(got) == len(ids_set(got))
        assert ids_set(got) == brute(data, q)
        assert ids_set(got) == ids_set(
            data.brute_force_window(Rect(0.0, 0.0, 0.4, 1.0))
        )

    def test_diagonal_strip(self, data, index):
        # A diagonal band: x + y <= 1.2 and -(x + y) <= -0.8.
        q = HalfPlaneStripRange([(1.0, 1.0, 1.2), (-1.0, -1.0, -0.8)])
        got = convex_range_query(index, q)
        assert len(got) == len(ids_set(got))
        assert ids_set(got) == brute(data, q)

    def test_random_strips_match_brute_force(self, data, index):
        rng = np.random.default_rng(124)
        for _ in range(15):
            hp = []
            for _ in range(int(rng.integers(1, 4))):
                a, b = rng.normal(size=2)
                x0, y0 = rng.uniform(0.2, 0.8, 2)
                hp.append((a, b, a * x0 + b * y0))
            q = HalfPlaneStripRange(hp)
            got = convex_range_query(index, q)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == brute(data, q)

    def test_empty_region(self, data, index):
        q = HalfPlaneStripRange([(1.0, 0.0, -5.0)])  # x <= -5: nothing
        assert convex_range_query(index, q).shape[0] == 0

    def test_whole_domain(self, data, index):
        q = HalfPlaneStripRange([(1.0, 0.0, 10.0)])
        assert ids_set(convex_range_query(index, q)) == set(range(len(data)))
