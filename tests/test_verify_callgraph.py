"""Call-graph substrate: resolution through imports, self, attr types,
the bounded name-match fallback, and the traversal helpers."""

from __future__ import annotations

from repro.analysis.verify.callgraph import (
    CallGraph,
    Program,
    dotted_name,
    terminal_name,
)

import ast


def build(**modules: str) -> tuple[Program, CallGraph]:
    program = Program.from_sources(
        {
            dotted: (f"src/{dotted.replace('.', '/')}.py", source)
            for dotted, source in modules.items()
        }
    )
    return program, CallGraph(program)


def targets_of(graph: CallGraph, caller: str) -> set[str]:
    out: set[str] = set()
    for site in graph.calls.get(caller, ()):
        out |= set(site.targets)
    return out


class TestNameHelpers:
    def test_dotted_name(self):
        node = ast.parse("a.b.c(1)").body[0].value.func
        assert dotted_name(node) == "a.b.c"
        assert dotted_name(ast.parse("f()").body[0].value.func) == "f"
        assert dotted_name(ast.parse("x[0]()").body[0].value.func) is None

    def test_terminal_name_unwraps_subscripts(self):
        node = ast.parse("self.tiles[0]").body[0].value
        assert terminal_name(node) == "tiles"


class TestResolution:
    def test_cross_module_import(self):
        _, graph = build(
            **{
                "repro.a": "def helper():\n    return 1\n",
                "repro.b": (
                    "from repro.a import helper\n"
                    "def run():\n    return helper()\n"
                ),
            }
        )
        assert targets_of(graph, "repro.b.run") == {"repro.a.helper"}

    def test_relative_import_anchoring(self):
        _, graph = build(
            **{
                "repro.pkg.a": "def helper():\n    return 1\n",
                "repro.pkg.b": (
                    "from .a import helper\n"
                    "def run():\n    return helper()\n"
                ),
            }
        )
        assert targets_of(graph, "repro.pkg.b.run") == {"repro.pkg.a.helper"}

    def test_self_method_through_mro(self):
        _, graph = build(
            **{
                "repro.m": (
                    "class Base:\n"
                    "    def step(self):\n        return 1\n"
                    "class Child(Base):\n"
                    "    def run(self):\n        return self.step()\n"
                ),
            }
        )
        assert targets_of(graph, "repro.m.Child.run") == {"repro.m.Base.step"}

    def test_self_attr_type_chain(self):
        _, graph = build(
            **{
                "repro.m": (
                    "class Store:\n"
                    "    def insert(self):\n        return 1\n"
                    "class Owner:\n"
                    "    def __init__(self):\n"
                    "        self.store = Store()\n"
                    "    def run(self):\n        return self.store.insert()\n"
                ),
            }
        )
        assert targets_of(graph, "repro.m.Owner.run") == {
            "repro.m.Store.insert"
        }

    def test_class_call_resolves_to_init(self):
        _, graph = build(
            **{
                "repro.m": (
                    "class Store:\n"
                    "    def __init__(self):\n        self.rows = []\n"
                    "def make():\n    return Store()\n"
                ),
            }
        )
        assert targets_of(graph, "repro.m.make") == {
            "repro.m.Store.__init__"
        }

    def test_fallback_is_marked_ambiguous_and_capped(self):
        program, graph = build(
            **{
                "repro.m": (
                    "class A:\n    def flush(self):\n        return 1\n"
                    "class B:\n    def flush(self):\n        return 2\n"
                    "def run(x):\n    return x.flush()\n"
                ),
            }
        )
        sites = [
            s
            for s in graph.calls["repro.m.run"]
            if s.raw and s.raw.endswith("flush")
        ]
        assert len(sites) == 1 and sites[0].ambiguous
        assert set(sites[0].targets) == {
            "repro.m.A.flush",
            "repro.m.B.flush",
        }


class TestTraversal:
    MODULES = {
        "repro.m": (
            "def a():\n    return b()\n"
            "def b():\n    return c()\n"
            "def c():\n    return 1\n"
            "def island():\n    return 2\n"
        ),
    }

    def test_reachable(self):
        _, graph = build(**self.MODULES)
        assert graph.reachable(["repro.m.a"]) == {
            "repro.m.a",
            "repro.m.b",
            "repro.m.c",
        }

    def test_find_path_returns_chain(self):
        _, graph = build(**self.MODULES)
        path = graph.find_path("repro.m.a", lambda q: q.endswith(".c"))
        assert path == ["repro.m.a", "repro.m.b", "repro.m.c"]
        assert (
            graph.find_path("repro.m.island", lambda q: q.endswith(".c"))
            is None
        )
