"""Unit tests for the observability toolkit (tracing, metrics, exporters)."""

import io
import json
import tracemalloc

import numpy as np
import pytest

from repro.errors import ObsError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    tracing,
)
from repro.obs.export import (
    format_metrics_table,
    format_span_tree,
    jsonl_events,
    to_prometheus_text,
    write_jsonl,
)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("hits").inc(-1)

    def test_gauge_sets_any_value(self):
        g = Gauge("load")
        g.set(3.5)
        assert g.value == 3.5
        g.set(-1.0)
        assert g.value == -1.0


class TestHistogram:
    def test_percentiles_on_known_data(self):
        h = Histogram("latency")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.count == 100
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(95) == pytest.approx(np.percentile(np.arange(1, 101), 95))

    def test_running_aggregates_are_exact_past_capacity(self):
        h = Histogram("x", capacity=8)
        for v in range(100):
            h.observe(float(v))
        # count/sum/min/max track every observation, not just the ring.
        assert h.count == 100
        assert h.min == 0.0
        assert h.max == 99.0
        assert h.mean == pytest.approx(sum(range(100)) / 100)

    def test_summary_keys(self):
        h = Histogram("x")
        h.observe(2.0)
        assert set(h.summary()) == {
            "count", "mean", "min", "max", "p50", "p95", "p99",
        }

    def test_empty_histogram_percentile_raises(self):
        h = Histogram("x")
        with pytest.raises(ObsError, match="no samples"):
            h.percentile(50)
        summary = h.summary()
        assert summary["count"] == 0
        assert "p50" not in summary

    def test_reset_empties_histogram(self):
        h = Histogram("x")
        h.observe(1.0)
        h.observe(2.0)
        assert h.percentile(50) > 0.0
        h.reset()
        assert h.count == 0
        with pytest.raises(ObsError, match="no samples"):
            h.percentile(99)

    def test_percentile_range_validation(self):
        h = Histogram("x")
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_collect_expands_histograms_and_sources(self):
        reg = MetricsRegistry()
        reg.counter("queries").inc(3)
        reg.histogram("lat").observe(1.0)
        reg.register_source("src", lambda: {"k": 7})
        snapshot = reg.collect()
        assert snapshot["queries"] == 3
        assert snapshot["lat.p50"] == 1.0
        assert snapshot["src.k"] == 7

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.histogram("h").observe(1.0)
        reg.reset()
        assert reg.counter("a").value == 0
        assert reg.histogram("h").count == 0


class TestTracer:
    def test_span_tree_aggregates_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("query.window"):
                with tracer.span("filter.scan"):
                    pass
        root = tracer.find("query.window")
        assert root.calls == 3
        scan = tracer.find("query.window/filter.scan")
        assert scan.calls == 3
        assert root.total_s >= scan.total_s >= 0.0
        # One node per (parent, name) no matter how many queries ran.
        assert len(tracer.spans) == 1

    def test_self_time_excludes_children(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        a = tracer.find("a")
        assert a.self_s == pytest.approx(
            a.total_s - tracer.find("a/b").total_s
        )

    def test_phase_totals_flat_paths(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        totals = tracer.phase_totals()
        assert set(totals) == {"a", "a/b"}

    def test_format_tree_renders_all_spans(self):
        tracer = Tracer()
        with tracer.span("query.window"):
            with tracer.span("dedup"):
                pass
        text = tracer.format_tree()
        assert "query.window" in text
        assert "dedup" in text
        assert "calls" in text

    def test_reset_clears(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.spans == {}

    def test_module_span_is_shared_noop_when_disabled(self):
        assert tracing.active() is None
        s1 = tracing.span("anything")
        s2 = tracing.span("else")
        assert s1 is s2  # one shared singleton, zero allocations

    def test_activate_restores_previous(self):
        outer = Tracer()
        inner = Tracer()
        with tracing.activate(outer):
            assert tracing.active() is outer
            with tracing.activate(inner):
                assert tracing.active() is inner
            assert tracing.active() is outer
        assert tracing.active() is None

    def test_enable_disable(self):
        tracer = tracing.enable()
        try:
            assert tracing.active() is tracer
            with tracing.span("x"):
                pass
            assert tracer.find("x").calls == 1
        finally:
            tracing.disable()
        assert tracing.active() is None

    def test_disabled_span_loop_allocates_nothing(self):
        """The disabled-tracer hot path must not allocate per span."""
        assert tracing.active() is None

        def loop(n):
            for _ in range(n):
                with tracing.span("query.window"):
                    with tracing.span("filter.scan"):
                        pass

        loop(10)  # warm up (interned strings, bytecode caches)
        tracemalloc.start()
        loop(1000)
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert current == 0, f"disabled span path leaked {current} bytes"


class TestExporters:
    def _populated(self):
        tracer = Tracer()
        with tracer.span("query.window"):
            with tracer.span("filter.scan"):
                pass
        reg = MetricsRegistry()
        reg.counter("queries").inc(2)
        reg.histogram("lat.ms").observe(1.5)
        return tracer, reg

    def test_jsonl_events_roundtrip(self):
        tracer, reg = self._populated()
        records = jsonl_events(tracer, reg, meta={"run": "t1"})
        assert all(r["run"] == "t1" for r in records)
        paths = {r["path"] for r in records if r["type"] == "span"}
        assert {"query.window", "query.window/filter.scan"} <= paths
        buffer = io.StringIO()
        n = write_jsonl(records, buffer)
        assert n == len(records)
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == n
        assert all(json.loads(line) for line in lines)

    def test_write_jsonl_to_path(self, tmp_path):
        target = tmp_path / "events.jsonl"
        n = write_jsonl([{"a": 1}, {"b": 2}], str(target))
        assert n == 2
        assert len(target.read_text().strip().splitlines()) == 2

    def test_prometheus_text(self):
        _tracer, reg = self._populated()
        text = to_prometheus_text(reg)
        assert "# TYPE repro_queries counter" in text
        assert "repro_queries 2" in text
        # Histogram as a summary with quantile labels (name sanitised).
        assert '# TYPE repro_lat_ms summary' in text
        assert 'repro_lat_ms{quantile="0.5"}' in text
        assert "repro_lat_ms_count 1" in text

    def test_metrics_table_uses_reporting_style(self):
        _tracer, reg = self._populated()
        table = format_metrics_table(reg)
        assert "=== metrics ===" in table
        assert "queries" in table
        assert "lat.ms.p50" in table

    def test_format_span_tree_alias(self):
        tracer, _reg = self._populated()
        assert format_span_tree(tracer) == tracer.format_tree()
