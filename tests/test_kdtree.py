"""Tests for the kd-tree SOP family (plain and two-layer)."""

import numpy as np
import pytest

from repro.datasets import (
    RectDataset,
    generate_uniform_rects,
    generate_window_queries,
    generate_zipf_rects,
)
from repro.errors import InvalidGridError
from repro.geometry import Rect
from repro.kdtree import KDTree, TwoLayerKDTree
from repro.stats import QueryStats

from conftest import ids_set


@pytest.fixture(scope="module")
def data():
    return generate_uniform_rects(4000, area=1e-4, seed=141)


@pytest.fixture(scope="module")
def trees(data):
    return {
        "kd": KDTree.build(data, leaf_capacity=100, max_depth=12),
        "two_layer_kd": TwoLayerKDTree.build(data, leaf_capacity=100, max_depth=12),
    }


class TestConstruction:
    def test_validation(self):
        with pytest.raises(InvalidGridError):
            KDTree(leaf_capacity=0)
        with pytest.raises(InvalidGridError):
            TwoLayerKDTree(max_depth=-1)

    def test_splitting_happened(self, trees):
        assert trees["kd"].leaf_count > 1
        assert trees["two_layer_kd"].leaf_count > 1

    def test_median_splits_adapt_to_skew(self):
        # Zipf data: leaf regions near the hot corner must be smaller.
        data = generate_zipf_rects(4000, area=0, seed=142)
        tree = KDTree.build(data, leaf_capacity=64)
        sizes = []
        stack = [tree._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                sizes.append((node.xu - node.xl) * (node.yu - node.yl))
            else:
                stack.extend([node.low, node.high])
        assert max(sizes) > 16 * min(sizes)  # strongly non-uniform regions

    def test_replication_counts(self, trees, data):
        assert trees["kd"].replica_count >= len(data)
        assert trees["two_layer_kd"].replica_count >= len(data)

    def test_degenerate_identical_rects_stop_splitting(self):
        rects = [Rect(0.5, 0.5, 0.50001, 0.50001)] * 100
        tree = KDTree.build(RectDataset.from_rects(rects), leaf_capacity=5)
        got = tree.window_query(Rect(0, 0, 1, 1))
        assert ids_set(got) == set(range(100))


class TestWindowQueries:
    @pytest.mark.parametrize("name", ["kd", "two_layer_kd"])
    def test_matches_brute_force(self, data, trees, name):
        tree = trees[name]
        for w in generate_window_queries(data, 30, 1.0, seed=143):
            got = tree.window_query(w)
            assert len(got) == len(ids_set(got)), f"{name}: duplicates"
            assert ids_set(got) == ids_set(data.brute_force_window(w))

    @pytest.mark.parametrize("name", ["kd", "two_layer_kd"])
    def test_window_on_split_lines(self, data, trees, name):
        # Windows whose edges sit exactly on split coordinates: take the
        # split values from the built tree itself.
        tree = trees[name]
        splits_x, splits_y = [], []
        stack = [tree._root]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                (splits_x if node.axis == 0 else splits_y).append(node.split)
                stack.extend([node.low, node.high])
        sx = splits_x[0] if splits_x else 0.5
        sy = splits_y[0] if splits_y else 0.5
        w = Rect(sx, sy, min(sx + 0.2, 1.0), min(sy + 0.2, 1.0))
        got = tree.window_query(w)
        assert len(got) == len(ids_set(got)), f"{name}: split-line duplicates"
        assert ids_set(got) == ids_set(data.brute_force_window(w))

    def test_zipf_correctness(self):
        data = generate_zipf_rects(3000, area=1e-4, seed=144)
        kd = KDTree.build(data, leaf_capacity=64)
        tkd = TwoLayerKDTree.build(data, leaf_capacity=64)
        for w in generate_window_queries(data, 25, 0.5, seed=144):
            truth = ids_set(data.brute_force_window(w))
            assert ids_set(kd.window_query(w)) == truth
            got = tkd.window_query(w)
            assert len(got) == len(ids_set(got))
            assert ids_set(got) == truth

    def test_empty_tree(self):
        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        assert KDTree.build(empty).window_query(Rect(0, 0, 1, 1)).shape[0] == 0
        assert TwoLayerKDTree.build(empty).window_query(Rect(0, 0, 1, 1)).shape[0] == 0


class TestDuplicateAccounting:
    def test_two_layer_never_checks_duplicates(self, data, trees):
        stats = QueryStats()
        for w in generate_window_queries(data, 20, 1.0, seed=145):
            trees["two_layer_kd"].window_query(w, stats)
        assert stats.dedup_checks == 0 and stats.duplicates_generated == 0

    def test_plain_kd_generates_duplicates(self, trees):
        big = generate_uniform_rects(3000, area=1e-3, seed=146)
        tree = KDTree.build(big, leaf_capacity=64)
        stats = QueryStats()
        for w in generate_window_queries(big, 20, 1.0, seed=146):
            tree.window_query(w, stats)
        assert stats.duplicates_generated > 0

    def test_two_layer_scans_fewer(self, trees, data):
        s1, s2 = QueryStats(), QueryStats()
        for w in generate_window_queries(data, 20, 1.0, seed=147):
            trees["kd"].window_query(w, s1)
            trees["two_layer_kd"].window_query(w, s2)
        assert s2.rects_scanned <= s1.rects_scanned
        assert s2.comparisons < s1.comparisons


class TestDiskQueries:
    def test_two_layer_kd_disk_matches_brute_force(self, data):
        from repro.datasets import generate_disk_queries

        tree = TwoLayerKDTree.build(data, leaf_capacity=100, max_depth=12)
        for q in generate_disk_queries(data, 30, 1.0, seed=149):
            got = tree.disk_query(q)
            assert len(got) == len(ids_set(got)), "kd disk duplicates"
            assert ids_set(got) == ids_set(
                data.brute_force_disk(q.cx, q.cy, q.radius)
            )

    def test_disk_covering_everything(self, data):
        from repro.datasets import DiskQuery

        tree = TwoLayerKDTree.build(data, leaf_capacity=100)
        got = tree.disk_query(DiskQuery(0.5, 0.5, 2.0))
        assert ids_set(got) == set(range(len(data)))

    def test_zero_radius(self, data):
        from repro.datasets import DiskQuery

        tree = TwoLayerKDTree.build(data, leaf_capacity=100)
        got = tree.disk_query(DiskQuery(0.5, 0.5, 0.0))
        assert ids_set(got) == ids_set(data.brute_force_disk(0.5, 0.5, 0.0))


class TestInserts:
    @pytest.mark.parametrize("cls", [KDTree, TwoLayerKDTree])
    def test_insert_and_split(self, cls):
        tree = cls(leaf_capacity=4, max_depth=10)
        rng = np.random.default_rng(148)
        rects = []
        for i in range(60):
            x, y = rng.random(2) * 0.9
            r = Rect(x, y, x + 0.02, y + 0.02)
            rects.append(r)
            tree.insert(r, i)
        assert tree.leaf_count > 1
        got = tree.window_query(Rect(0, 0, 1, 1))
        assert ids_set(got) == set(range(60))
        w = Rect(0.2, 0.2, 0.6, 0.6)
        truth = {i for i, r in enumerate(rects) if r.intersects(w)}
        assert ids_set(tree.window_query(w)) == truth
