"""Tests for the bench harness utilities and the ``python -m repro`` CLI."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import (
    Timed,
    fmt,
    print_series,
    print_table,
    throughput,
    time_call,
    total_time,
)
from repro.bench.workloads import (
    bench_query_count,
    bench_scale,
    disk_workload,
    synthetic_dataset,
    tiger_dataset,
    window_workload,
)
from repro.geometry import Point, LineString, Polygon, geometry_from_wkt, geometry_to_wkt


class TestRunner:
    def test_timed_qps(self):
        t = Timed(seconds=2.0, queries=100)
        assert t.qps == 50.0
        assert t.avg_ms == 20.0

    def test_timed_zero_guard(self):
        # A zero-second clock reading means "no throughput measured",
        # not infinite speed (inf poisons downstream arithmetic/JSON).
        assert Timed(seconds=0.0, queries=10).qps == 0.0
        assert Timed(seconds=-1.0, queries=10).qps == 0.0
        # An average over zero queries is undefined, never 0.0 ms.
        with pytest.raises(ValueError):
            Timed(seconds=1.0, queries=0).avg_ms

    def test_timed_regular_values_unaffected(self):
        t = Timed(seconds=0.5, queries=250)
        assert t.qps == 500.0
        assert t.avg_ms == 2.0

    def test_profiled_throughput(self):
        from repro.bench import profiled_throughput
        from repro.core.two_layer import TwoLayerGrid
        from repro.datasets import generate_uniform_rects
        from repro.geometry.mbr import Rect

        index = TwoLayerGrid.build(
            generate_uniform_rects(500, seed=3), partitions_per_dim=8
        )
        windows = [Rect(0.1 * i, 0.1, 0.1 * i + 0.2, 0.4) for i in range(5)]
        timed, phases = profiled_throughput(index.window_query, windows)
        assert timed.queries == 5
        assert "query.window" in phases
        assert "query.window/filter.scan" in phases
        assert all(v >= 0.0 for v in phases.values())

    def test_time_call(self):
        result, seconds = time_call(lambda: 41 + 1)
        assert result == 42 and seconds >= 0.0

    def test_throughput_runs_everything(self):
        seen = []
        timed = throughput(seen.append, [1, 2, 3])
        assert seen == [1, 2, 3]
        assert timed.queries == 3

    def test_total_time(self):
        calls = []
        assert total_time([lambda: calls.append(1), lambda: calls.append(2)]) >= 0
        assert calls == [1, 2]


class TestReporting:
    def test_fmt_variants(self):
        assert fmt(12345.6) == "12,346"
        assert fmt(3.14159) == "3.14"
        assert fmt(0.00012345) == "0.0001234"
        assert fmt(0.0) == "0"
        assert fmt("text") == "text"

    def test_print_table(self, capsys):
        print_table("T", ["a", "b"], [[1, 2.5], ["x", 40000.0]])
        out = capsys.readouterr().out
        assert "=== T ===" in out
        assert "40,000" in out

    def test_print_series(self, capsys):
        print_series("S", "x", [1, 2], {"m1": [10, 20], "m2": [30, 40]})
        out = capsys.readouterr().out
        assert "m1" in out and "m2" in out and "=== S ===" in out

    def test_print_table_empty_rows(self, capsys):
        print_table("E", ["only"], [])
        assert "=== E ===" in capsys.readouterr().out


class TestWorkloads:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "123")
        assert bench_scale() == 0.001
        assert bench_query_count() == 123

    def test_datasets_cached(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.00005")
        tiger_dataset.cache_clear()
        a = tiger_dataset("ROADS")
        b = tiger_dataset("ROADS")
        assert a is b
        tiger_dataset.cache_clear()

    def test_workload_keys(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.00005")
        tiger_dataset.cache_clear()
        window_workload.cache_clear()
        disk_workload.cache_clear()
        ws = window_workload("ROADS", 0.1, 10)
        assert len(ws) == 10
        ds = disk_workload("synthetic:500:1e-8:uniform", 0.1, 5)
        assert len(ds) == 5
        with pytest.raises(KeyError):
            window_workload("MARS", 0.1, 5)
        tiger_dataset.cache_clear()
        window_workload.cache_clear()
        disk_workload.cache_clear()

    def test_synthetic_dataset_cache(self):
        a = synthetic_dataset(100, 1e-8, "uniform")
        assert len(a) == 100


class TestCli:
    def test_self_check_passes(self, capsys):
        from repro.__main__ import main

        code = main(["--n", "2000", "--queries", "20", "--skip-slow"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all indexes agree" in out

    def test_cli_reports_methods(self, capsys):
        from repro.__main__ import main

        main(["--n", "1000", "--queries", "10", "--skip-slow"])
        out = capsys.readouterr().out
        for name in ("2-layer", "1-layer", "quad-tree", "R-tree", "BLOCK"):
            assert name in out


# -- WKT property tests ------------------------------------------------------

coord = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@settings(max_examples=150, deadline=None)
@given(x=coord, y=coord)
def test_point_wkt_roundtrip_property(x, y):
    p = Point(x, y)
    assert geometry_from_wkt(geometry_to_wkt(p)) == p


@settings(max_examples=100, deadline=None)
@given(
    pts=st.lists(st.tuples(coord, coord), min_size=2, max_size=12),
)
def test_linestring_wkt_roundtrip_property(pts):
    ls = LineString(pts)
    assert geometry_from_wkt(geometry_to_wkt(ls)) == ls


@settings(max_examples=100, deadline=None)
@given(
    pts=st.lists(st.tuples(coord, coord), min_size=3, max_size=10).filter(
        lambda ps: len(set(ps)) >= 3 and ps[0] != ps[-1]
    ),
)
def test_polygon_wkt_roundtrip_property(pts):
    poly = Polygon(pts)
    got = geometry_from_wkt(geometry_to_wkt(poly))
    assert got == poly
