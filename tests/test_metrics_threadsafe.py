"""Thread-safety hammer for the metrics instruments and registry.

The serving layer records metrics from the event loop thread while
``stats`` requests, exporters and writer threads read and write the same
instruments concurrently.  These tests drive every record path from many
threads with concurrent ``collect`` calls and assert the *exact* final
aggregates — lost updates or torn ring reads fail deterministically.
"""

import threading

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

N_THREADS = 8
N_OPS = 2_000


def hammer(fn, threads=N_THREADS):
    barrier = threading.Barrier(threads)
    errors = []

    def run(k):
        barrier.wait()
        try:
            fn(k)
        except Exception as exc:  # propagated to the main thread
            errors.append(exc)

    ts = [threading.Thread(target=run, args=(k,)) for k in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert not errors, errors[0]


class TestInstrumentHammer:
    def test_counter_inc_is_atomic(self):
        counter = Counter("hits")
        hammer(lambda k: [counter.inc() for _ in range(N_OPS)])
        assert counter.value == N_THREADS * N_OPS

    def test_gauge_inc_dec_balance(self):
        gauge = Gauge("in_flight")

        def churn(k):
            for _ in range(N_OPS):
                gauge.inc()
                gauge.dec()

        hammer(churn)
        assert gauge.value == 0.0

    def test_histogram_observe_exact_aggregates(self):
        hist = Histogram("latency", capacity=64)

        def observe(k):
            for i in range(N_OPS):
                hist.observe(k + 1)

        hammer(observe)
        assert hist.count == N_THREADS * N_OPS
        assert hist.total == sum(
            (k + 1) * N_OPS for k in range(N_THREADS)
        )
        assert hist.min == 1.0
        assert hist.max == float(N_THREADS)

    def test_histogram_summary_under_concurrent_observe(self):
        """summary() while observers run must never tear: every field is
        internally consistent and every ring sample is a value some
        thread actually observed."""
        hist = Histogram("latency", capacity=32)
        stop = threading.Event()
        bad = []

        def snapshotter():
            while not stop.is_set():
                s = hist.summary()
                if s["count"] and not (s["min"] <= s["mean"] <= s["max"]):
                    bad.append(s)
                    return
                if "p50" in s and not (1.0 <= s["p50"] <= N_THREADS):
                    bad.append(s)
                    return

        snap = threading.Thread(target=snapshotter)
        snap.start()
        try:
            hammer(lambda k: [hist.observe(k + 1) for _ in range(N_OPS)])
        finally:
            stop.set()
            snap.join()
        assert not bad, f"torn summary: {bad[0]}"
        assert hist.summary()["count"] == N_THREADS * N_OPS


class TestRegistryHammer:
    def test_get_or_create_race_returns_one_instance(self):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def create(k):
            c = registry.counter("shared")
            with lock:
                seen.append(c)
            c.inc()

        hammer(create)
        assert all(c is seen[0] for c in seen)
        assert registry.counter("shared").value == N_THREADS

    def test_collect_during_heavy_recording(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        bad = []

        def collector():
            while not stop.is_set():
                snap = registry.collect()
                c = snap.get("reqs", 0)
                h = snap.get("lat.count", 0)
                if c < 0 or h < 0 or h > N_THREADS * N_OPS:
                    bad.append(snap)
                    return

        def record(k):
            counter = registry.counter("reqs")
            hist = registry.histogram("lat")
            for i in range(N_OPS):
                counter.inc()
                hist.observe(i % 7)

        col = threading.Thread(target=collector)
        col.start()
        try:
            hammer(record)
        finally:
            stop.set()
            col.join()
        assert not bad
        final = registry.collect()
        assert final["reqs"] == N_THREADS * N_OPS
        assert final["lat.count"] == N_THREADS * N_OPS

    def test_wrong_kind_still_raises_under_lock(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
