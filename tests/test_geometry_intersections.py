"""Tests for exact geometry-geometry intersection (join refinement)."""

from hypothesis import given, settings, strategies as st

from repro.geometry import (
    LineString,
    Point,
    Polygon,
    Rect,
    Segment,
    geometry_intersects_geometry as gig,
)

SQUARE = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])


class TestPolygonPolygon:
    def test_crossing(self):
        other = Polygon([(0.5, 0.5), (2, 0.5), (2, 2), (0.5, 2)])
        assert gig(SQUARE, other) and gig(other, SQUARE)

    def test_containment_both_directions(self):
        inner = Polygon([(0.4, 0.4), (0.6, 0.4), (0.5, 0.6)])
        assert gig(SQUARE, inner) and gig(inner, SQUARE)

    def test_disjoint(self):
        far = Polygon([(2, 2), (3, 2), (3, 3)])
        assert not gig(SQUARE, far)

    def test_touching_corner(self):
        corner = Polygon([(1, 1), (2, 1), (2, 2)])
        assert gig(SQUARE, corner)

    def test_mbr_overlap_geometry_miss(self):
        # Two triangles whose MBRs overlap but whose geometries are
        # separated by a diagonal gap: the case join refinement exists for.
        lower = Polygon([(0, 0), (0.45, 0), (0, 0.45)])     # below x+y=0.45
        upper = Polygon([(0.45, 0.45), (0.1, 0.45), (0.45, 0.1)])  # above x+y=0.55
        assert lower.mbr().intersects(upper.mbr())
        assert not gig(lower, upper)

    def test_triangles_touching_along_shared_hypotenuse(self):
        lower = Polygon([(0, 0), (0.45, 0), (0, 0.45)])
        touching = Polygon([(0.45, 0), (0, 0.45), (0.45, 0.45)])
        assert gig(lower, touching)  # closed semantics: shared edge counts


class TestLineStringCombos:
    def test_crossing_linestrings(self):
        assert gig(LineString([(0, 0), (1, 1)]), LineString([(0, 1), (1, 0)]))

    def test_parallel_disjoint(self):
        assert not gig(
            LineString([(0, 0), (1, 0)]), LineString([(0, 0.1), (1, 0.1)])
        )

    def test_linestring_inside_polygon(self):
        inside = LineString([(0.2, 0.2), (0.3, 0.3)])
        assert gig(inside, SQUARE) and gig(SQUARE, inside)

    def test_linestring_crossing_polygon_edge(self):
        crossing = LineString([(-0.5, 0.5), (0.5, 0.5)])
        assert gig(crossing, SQUARE)

    def test_linestring_outside_polygon(self):
        outside = LineString([(2, 2), (3, 3)])
        assert not gig(outside, SQUARE)

    def test_segment_vs_linestring(self):
        assert gig(Segment(0, 1, 1, 0), LineString([(0, 0), (1, 1)]))
        assert not gig(Segment(5, 5, 6, 6), LineString([(0, 0), (1, 1)]))


class TestPointCombos:
    def test_point_in_polygon(self):
        assert gig(Point(0.5, 0.5), SQUARE)
        assert not gig(Point(1.5, 0.5), SQUARE)

    def test_point_on_linestring(self):
        assert gig(Point(0.5, 0.5), LineString([(0, 0), (1, 1)]))
        assert not gig(Point(0.5, 0.6), LineString([(0, 0), (1, 1)]))

    def test_point_point(self):
        assert gig(Point(0.3, 0.3), Point(0.3, 0.3))
        assert not gig(Point(0.3, 0.3), Point(0.3, 0.30001))

    def test_point_in_rect(self):
        assert gig(Point(0.5, 0.5), Rect(0, 0, 1, 1))


class TestRectCombos:
    def test_rect_rect(self):
        assert gig(Rect(0, 0, 1, 1), Rect(0.5, 0.5, 2, 2))
        assert not gig(Rect(0, 0, 1, 1), Rect(2, 2, 3, 3))

    def test_rect_polygon(self):
        assert gig(Rect(0.4, 0.4, 0.6, 0.6), SQUARE)
        assert gig(SQUARE, Rect(-1, -1, 2, 2))  # rect contains polygon

    def test_rect_linestring(self):
        assert gig(Rect(0, 0, 1, 1), LineString([(-1, 0.5), (2, 0.5)]))
        assert not gig(Rect(0, 0, 1, 1), LineString([(2, 2), (3, 3)]))


class TestSymmetryProperty:
    geom = st.sampled_from(
        [
            Point(0.5, 0.5),
            Segment(0.2, 0.2, 0.8, 0.8),
            LineString([(0.1, 0.9), (0.5, 0.5), (0.9, 0.9)]),
            Polygon([(0.3, 0.3), (0.7, 0.3), (0.5, 0.7)]),
            Rect(0.25, 0.25, 0.75, 0.75),
            Polygon([(0.8, 0.1), (0.95, 0.1), (0.9, 0.25)]),
            Point(0.05, 0.05),
        ]
    )

    @settings(max_examples=60, deadline=None)
    @given(a=geom, b=geom)
    def test_symmetric(self, a, b):
        assert gig(a, b) == gig(b, a)

    @settings(max_examples=40, deadline=None)
    @given(a=geom)
    def test_reflexive(self, a):
        assert gig(a, a)
