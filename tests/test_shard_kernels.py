"""Banded kernel parity: shard unions must equal the global result.

The whole sharded design rests on one algebraic fact — tile ownership
partitions the result space, so concatenating per-band results
reproduces the global answer with no dedup pass.  These tests check
that fact over every verb, on the packed fast path, with telemetry
stats threaded, and across the write path (delta overlay + tombstones
via SnapshotStore forks).
"""

import numpy as np
import pytest

from repro.core.knn import knn_query
from repro.core.two_layer import TwoLayerGrid
from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.geometry.mbr import Rect
from repro.grid.base import GridPartitioner
from repro.stats import QueryStats
from repro.server.snapshot import SnapshotStore
from repro.shard.banded import BandedTwoLayerGrid
from repro.shard.partition import bands_for_range, plan_bands

NX = NY = 16
DOMAIN = Rect(0.0, 0.0, 1.0, 1.0)
SHARDS = 4


def make_data(n=4000, seed=21):
    rng = np.random.default_rng(seed)
    cx = rng.uniform(0, 1, n)
    cy = rng.uniform(0, 1, n)
    w = rng.uniform(1e-4, 0.05, n)
    h = rng.uniform(1e-4, 0.05, n)
    return RectDataset(
        np.clip(cx - w, 0, 1),
        np.clip(cy - h, 0, 1),
        np.clip(cx + w, 0, 1) + 1e-9,
        np.clip(cy + h, 0, 1) + 1e-9,
    )


def make_global(data):
    grid = GridPartitioner(NX, NY, DOMAIN)
    index = TwoLayerGrid(grid, storage="packed")
    index._bulk_load(data)
    index._build_fast_q()
    return index


def make_shards(index):
    bands = plan_bands(index._store.offsets[::4], SHARDS)
    shards = []
    for band in bands:
        s = BandedTwoLayerGrid(index.grid, band, storage="packed")
        s._store = index._store
        s._n_objects = index._n_objects
        s._fast_q = index._fast_q
        s._tile_row_bounds = index._tile_row_bounds
        shards.append(s)
    return bands, shards


@pytest.fixture(scope="module")
def setup():
    data = make_data()
    index = make_global(data)
    bands, shards = make_shards(index)
    return data, index, bands, shards


def union(parts):
    return sorted(int(i) for part in parts for i in part)


class TestReadParity:
    def test_window_union_equals_global(self, setup):
        data, index, bands, shards = setup
        rng = np.random.default_rng(1)
        for _ in range(120):
            xs = sorted(rng.uniform(0, 1, 2))
            ys = sorted(rng.uniform(0, 1, 2))
            win = Rect(xs[0], ys[0], xs[1], ys[1])
            ref = sorted(index.window_query(win).tolist())
            assert union(s.window_query(win) for s in shards) == ref

    def test_within_union_equals_global(self, setup):
        data, index, bands, shards = setup
        rng = np.random.default_rng(2)
        for _ in range(60):
            xs = sorted(rng.uniform(0, 1, 2))
            ys = sorted(rng.uniform(0, 1, 2))
            win = Rect(xs[0], ys[0], xs[1], ys[1])
            ref = sorted(index.window_query_within(win).tolist())
            assert union(s.window_query_within(win) for s in shards) == ref

    def test_count_sums_to_global(self, setup):
        data, index, bands, shards = setup
        rng = np.random.default_rng(3)
        for _ in range(60):
            xs = sorted(rng.uniform(0, 1, 2))
            ys = sorted(rng.uniform(0, 1, 2))
            win = Rect(xs[0], ys[0], xs[1], ys[1])
            assert sum(s.count_window(win) for s in shards) == index.count_window(
                win
            )

    def test_disk_union_equals_global(self, setup):
        data, index, bands, shards = setup
        rng = np.random.default_rng(4)
        for _ in range(60):
            q = DiskQuery(
                rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0.01, 0.2)
            )
            ref = sorted(index.disk_query(q).tolist())
            assert union(s.disk_query(q) for s in shards) == ref

    def test_unrouted_shards_return_empty(self, setup):
        data, index, bands, shards = setup
        rng = np.random.default_rng(5)
        for _ in range(60):
            xs = sorted(rng.uniform(0, 1, 2))
            ys = sorted(rng.uniform(0, 1, 2))
            win = Rect(xs[0], ys[0], xs[1], ys[1])
            ix0, ix1, iy0, iy1 = index.grid.tile_range_for_window(win)
            routed = set(bands_for_range(bands, NX, ix0, ix1, iy0, iy1))
            for k, s in enumerate(shards):
                if k not in routed:
                    assert s.window_query(win).shape[0] == 0

    def test_band_order_concat_preserves_global_order(self, setup):
        # bands ascend in tile (= CSR row) order, so band-ordered concat
        # on the stats-free fast path reproduces the global row order
        data, index, bands, shards = setup
        rng = np.random.default_rng(6)
        for _ in range(40):
            xs = sorted(rng.uniform(0, 1, 2))
            ys = sorted(rng.uniform(0, 1, 2))
            win = Rect(xs[0], ys[0], xs[1], ys[1])
            ref = index.window_query(win).tolist()
            got = [i for s in shards for i in s.window_query(win).tolist()]
            assert got == ref

    def test_stats_threaded_parity_and_accounting(self, setup):
        data, index, bands, shards = setup
        win = Rect(0.2, 0.2, 0.7, 0.7)
        ref_stats = QueryStats()
        ref = sorted(index.window_query(win, ref_stats).tolist())
        parts = []
        shard_comparisons = 0
        for s in shards:
            st = QueryStats()
            parts.append(s.window_query(win, st))
            shard_comparisons += st.comparisons
        assert union(parts) == ref
        # banded scans compare only owned rows: the per-shard work sums
        # to no more than the global scan (tiles straddle nothing)
        assert 0 < shard_comparisons <= ref_stats.comparisons

    def test_knn_global_view_matches(self, setup):
        data, index, bands, shards = setup
        rng = np.random.default_rng(7)
        for trial in range(25):
            px, py = rng.uniform(0, 1), rng.uniform(0, 1)
            ref = list(knn_query(index, data, px, py, 12))
            view = shards[trial % SHARDS].global_view()
            assert list(knn_query(view, data, px, py, 12)) == ref


class TestWriteParity:
    def test_replicated_writes_keep_union_parity(self):
        data = make_data(n=1500, seed=31)
        index = make_global(data)
        bands, shards = make_shards(index)
        g_store = SnapshotStore(make_global(data), data)
        s_stores = [SnapshotStore(s, data) for s in shards]

        rng = np.random.default_rng(8)
        for i in range(30):
            if i % 3 == 2:
                victim = int(rng.integers(0, len(data)))
                ref = g_store.delete(victim)
                assert all(st.delete(victim) == ref for st in s_stores)
            else:
                x, y = rng.uniform(0, 0.95, 2)
                rect = Rect(x, y, x + 0.01, y + 0.01)
                ref = g_store.insert(rect)
                # deterministic replication: identical (id, version)
                assert all(st.insert(rect) == ref for st in s_stores)

        g = g_store.current
        reps = [st.current for st in s_stores]
        assert all(r.version == g.version for r in reps)
        for _ in range(60):
            xs = sorted(rng.uniform(0, 1, 2))
            ys = sorted(rng.uniform(0, 1, 2))
            win = Rect(xs[0], ys[0], xs[1], ys[1])
            ref = sorted(g.index.window_query(win).tolist())
            assert union(r.index.window_query(win) for r in reps) == ref
            q = DiskQuery(
                rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0.02, 0.15)
            )
            refd = sorted(g.index.disk_query(q).tolist())
            assert union(r.index.disk_query(q) for r in reps) == refd

    def test_snapshot_fork_preserves_band(self):
        data = make_data(n=400, seed=41)
        index = make_global(data)
        bands, shards = make_shards(index)
        store = SnapshotStore(shards[1], data)
        store.insert(Rect(0.5, 0.5, 0.51, 0.51))
        forked = store.current.index
        assert isinstance(forked, BandedTwoLayerGrid)
        assert forked.band == bands[1]
