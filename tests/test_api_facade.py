"""Tests for the high-level facade, auto-tuning, Hilbert packing and the
selectivity estimator."""

import numpy as np
import pytest

from repro.api import SpatialCollection
from repro.datasets import (
    RectDataset,
    generate_uniform_rects,
    generate_window_queries,
    generate_zipf_rects,
)
from repro.errors import DatasetError, InvalidGridError, InvalidQueryError
from repro.geometry import LineString, Rect
from repro.core import SelectivityEstimator, TwoLayerGrid, suggest_partitions
from repro.rtree import RTree, hilbert_index

from conftest import ids_set


@pytest.fixture(scope="module")
def data():
    return generate_uniform_rects(20_000, area=1e-6, seed=151)


@pytest.fixture(scope="module")
def collection(data):
    return SpatialCollection.from_dataset(data)


class TestTuning:
    def test_reasonable_for_sizes(self):
        for n in (100, 10_000, 1_000_000):
            data = generate_uniform_rects(n, area=1e-8, seed=1)
            p = suggest_partitions(data)
            assert 1 <= p <= 4096
            # More data -> never fewer partitions.
        small = suggest_partitions(generate_uniform_rects(1000, area=1e-8, seed=1))
        big = suggest_partitions(generate_uniform_rects(100_000, area=1e-8, seed=1))
        assert big > small

    def test_big_objects_coarsen_grid(self):
        tiny = suggest_partitions(generate_uniform_rects(50_000, area=1e-10, seed=2))
        huge = suggest_partitions(generate_uniform_rects(50_000, area=1e-2, seed=2))
        assert huge < tiny  # avoid replication blow-up

    def test_point_data_unbounded_by_replication(self):
        points = generate_uniform_rects(50_000, area=0.0, seed=3)
        assert suggest_partitions(points) == int(np.sqrt(50_000 / 48))

    def test_empty_dataset_rejected(self):
        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        with pytest.raises(DatasetError):
            suggest_partitions(empty)

    def test_suggested_granularity_in_plateau(self, data):
        # Throughput at the suggestion must be within 3x of a swept best.
        import time

        queries = generate_window_queries(data, 150, 0.1, seed=152)

        def qps(p):
            index = TwoLayerGrid.build(data, partitions_per_dim=p)
            t0 = time.perf_counter()
            for w in queries:
                index.window_query(w)
            return len(queries) / (time.perf_counter() - t0)

        suggested = qps(suggest_partitions(data))
        best = max(qps(p) for p in (8, 16, 32, 64, 128))
        # Generous factor: this is a timing test and CI machines are noisy
        # (Fig. 7's plateau claim is what it guards, not exact ratios).
        assert suggested > best / 5.0


class TestSelectivityEstimator:
    def test_uniform_data_accuracy(self, data):
        index = TwoLayerGrid.build(data, partitions_per_dim=32)
        est = SelectivityEstimator(index, avg_extent=data.average_extents())
        for w in generate_window_queries(data, 25, 0.5, seed=153):
            truth = len(data.brute_force_window(w))
            guess = est.estimate_window(w)
            assert truth / 3 <= guess <= truth * 3, (truth, guess)

    def test_total_objects(self, data):
        index = TwoLayerGrid.build(data, partitions_per_dim=32)
        est = SelectivityEstimator(index)
        assert est.total_objects == len(data)

    def test_selectivity_bounded(self, data):
        index = TwoLayerGrid.build(data, partitions_per_dim=32)
        est = SelectivityEstimator(index)
        assert est.estimate_selectivity(Rect(-1, -1, 2, 2)) <= 1.0
        assert est.estimate_selectivity(Rect(0.0001, 0.0001, 0.0002, 0.0002)) < 0.01

    def test_empty_region_estimates_zero(self, data):
        index = TwoLayerGrid.build(data, partitions_per_dim=32)
        est = SelectivityEstimator(index)
        # Far outside the domain: no overlapping tiles.
        w = Rect(5.0, 5.0, 6.0, 6.0)
        assert est.estimate_window(w) == 0.0

    def test_zipf_data_keeps_order_of_magnitude(self):
        data = generate_zipf_rects(20_000, area=1e-8, seed=154)
        index = TwoLayerGrid.build(data, partitions_per_dim=64)
        est = SelectivityEstimator(index, avg_extent=data.average_extents())
        for w in generate_window_queries(data, 20, 1.0, seed=154):
            truth = len(data.brute_force_window(w))
            guess = est.estimate_window(w)
            assert truth / 10 <= max(guess, 1) <= truth * 10


class TestHilbert:
    def test_bijective_on_grid(self):
        order = 5
        n = 1 << order
        gx, gy = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        ranks = hilbert_index((gx.ravel() + 0.5) / n, (gy.ravel() + 0.5) / n, order)
        assert sorted(ranks.tolist()) == list(range(n * n))

    def test_curve_is_continuous(self):
        order = 4
        n = 1 << order
        gx, gy = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        ranks = hilbert_index((gx.ravel() + 0.5) / n, (gy.ravel() + 0.5) / n, order)
        pos = {
            int(r): (int(x), int(y))
            for r, x, y in zip(ranks, gx.ravel(), gy.ravel())
        }
        for k in range(n * n - 1):
            (x1, y1), (x2, y2) = pos[k], pos[k + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_order_validation(self):
        with pytest.raises(InvalidGridError):
            hilbert_index(np.array([0.5]), np.array([0.5]), order=0)

    def test_hilbert_packed_tree_correct(self):
        data = generate_zipf_rects(3000, area=1e-5, seed=155)
        tree = RTree.build(data, packing="hilbert")
        for w in generate_window_queries(data, 20, 1.0, seed=155):
            assert ids_set(tree.window_query(w)) == ids_set(
                data.brute_force_window(w)
            )

    def test_unknown_packing_rejected(self, data):
        with pytest.raises(InvalidGridError):
            RTree.build(data, packing="morton")

    def test_hilbert_leaves_are_compact(self):
        # Hilbert locality must produce leaves of the same order of
        # compactness as STR's (total leaf margin within a small factor),
        # i.e. the curve ordering really groups spatial neighbours.
        data = generate_zipf_rects(5000, area=0.0, seed=156)

        def total_leaf_margin(tree):
            from repro.rtree.node import margin

            total = 0.0
            stack = [tree._root]
            while stack:
                node = stack.pop()
                if node.leaf:
                    total += margin(node.mbr())
                else:
                    stack.extend(node.payloads)
            return total

        hil = total_leaf_margin(RTree.build(data, packing="hilbert"))
        st = total_leaf_margin(RTree.build(data, packing="str"))
        assert st / 3.0 <= hil <= st * 3.0


class TestSpatialCollection:
    def test_auto_tuned_build(self, collection):
        assert collection.describe()["partitions_per_dim"] >= 1

    def test_window_and_count(self, collection, data):
        got = collection.window(0.3, 0.3, 0.4, 0.4)
        truth = ids_set(data.brute_force_window(Rect(0.3, 0.3, 0.4, 0.4)))
        assert ids_set(got) == truth
        assert collection.count(0.3, 0.3, 0.4, 0.4) == len(truth)

    def test_estimate_close_to_count(self, collection):
        count = collection.count(0.2, 0.2, 0.5, 0.5)
        est = collection.estimate(0.2, 0.2, 0.5, 0.5)
        assert count / 3 <= est <= count * 3

    def test_disk(self, collection, data):
        got = collection.disk(0.5, 0.5, 0.05)
        assert ids_set(got) == ids_set(data.brute_force_disk(0.5, 0.5, 0.05))

    def test_polygon(self, collection, data):
        got = collection.polygon([(0.1, 0.1), (0.5, 0.1), (0.3, 0.5)])
        assert len(got) > 0

    def test_knn(self, collection):
        got = collection.knn(0.5, 0.5, 7)
        assert got.shape[0] == 7

    def test_join(self, collection):
        other = SpatialCollection.from_dataset(
            generate_uniform_rects(2000, area=1e-4, seed=157)
        )
        pairs = collection.join(other)
        assert pairs.ndim == 2 and pairs.shape[1] == 2

    def test_insert_delete_cycle(self, data):
        col = SpatialCollection.from_dataset(data.slice(0, 1000))
        nid = col.insert(Rect(0.42, 0.42, 0.43, 0.43))
        assert nid in col.window(0.41, 0.41, 0.44, 0.44).tolist()
        assert col.delete(nid)
        assert nid not in col.window(0.41, 0.41, 0.44, 0.44).tolist()
        assert not col.delete(10_000_000)

    def test_exact_pipeline_with_geometries(self):
        geoms = [
            LineString([(0.1, 0.1), (0.2, 0.15)]),
            LineString([(0.15, 0.3), (0.18, 0.45), (0.3, 0.5)]),
            LineString([(0.8, 0.8), (0.9, 0.9)]),
        ]
        col = SpatialCollection.from_geometries(geoms, partitions_per_dim=8)
        exact = col.window(0.0, 0.0, 0.5, 0.5, exact=True)
        assert ids_set(exact) == {0, 1}
        near = col.disk(0.15, 0.12, 0.05, exact=True)
        assert 0 in ids_set(near)

    def test_insert_requires_geometry_when_exact(self):
        col = SpatialCollection.from_geometries(
            [LineString([(0.1, 0.1), (0.2, 0.2)])], partitions_per_dim=4
        )
        with pytest.raises(InvalidQueryError):
            col.insert(Rect(0.5, 0.5, 0.6, 0.6))
        nid = col.insert(
            Rect(0.5, 0.5, 0.6, 0.6), LineString([(0.5, 0.5), (0.6, 0.6)])
        )
        assert nid == 1

    def test_from_rects(self):
        col = SpatialCollection.from_rects(
            [Rect(0, 0, 0.1, 0.1), Rect(0.5, 0.5, 0.6, 0.6)], partitions_per_dim=4
        )
        assert len(col) == 2


class TestNonUnitDomains:
    """Real data arrives in metres/degrees, not the unit square."""

    @pytest.fixture(scope="class")
    def metric_data(self):
        base = generate_uniform_rects(5000, area=1e-6, seed=158)
        # Scale into a 50km x 20km metric extent with offsets.
        return RectDataset(
            base.xl * 50_000 + 300_000,
            base.yl * 20_000 + 4_000_000,
            base.xu * 50_000 + 300_000,
            base.yu * 20_000 + 4_000_000,
        )

    def test_auto_domain_covers_data(self, metric_data):
        col = SpatialCollection.from_dataset(metric_data)
        domain = col.index.grid.domain
        mbr = metric_data.mbr()
        assert domain.contains(mbr)

    def test_queries_correct_in_metric_space(self, metric_data):
        col = SpatialCollection.from_dataset(metric_data)
        w = (320_000.0, 4_005_000.0, 330_000.0, 4_010_000.0)
        got = col.window(*w)
        truth = ids_set(metric_data.brute_force_window(Rect(*w)))
        assert ids_set(got) == truth

    def test_objects_spread_across_tiles(self, metric_data):
        # The point of auto-domain: data must not pile into edge tiles.
        col = SpatialCollection.from_dataset(metric_data)
        assert col.index.nonempty_tiles > col.index.grid.nx

    def test_disk_and_knn_in_metric_space(self, metric_data):
        col = SpatialCollection.from_dataset(metric_data)
        got = col.disk(325_000.0, 4_010_000.0, 2_000.0)
        truth = ids_set(
            metric_data.brute_force_disk(325_000.0, 4_010_000.0, 2_000.0)
        )
        assert ids_set(got) == truth
        near = col.knn(325_000.0, 4_010_000.0, 5)
        assert near.shape[0] == 5

    def test_empty_collection_defaults_to_unit_domain(self):
        empty = RectDataset(np.empty(0), np.empty(0), np.empty(0), np.empty(0))
        col = SpatialCollection.from_dataset(empty)
        assert col.index.grid.domain == Rect(0.0, 0.0, 1.0, 1.0)


class TestSaveLoad:
    def test_round_trip_preserves_queries(self, tmp_path):
        data = generate_uniform_rects(3_000, area=1e-5, seed=77)
        col = SpatialCollection.from_dataset(data, partitions_per_dim=16)
        path = str(tmp_path / "col.npz")
        col.save(path)
        loaded = SpatialCollection.load(path)

        assert len(loaded) == len(col)
        assert loaded.describe()["class_counts"] == col.describe()["class_counts"]
        for w in ((0.2, 0.2, 0.4, 0.4), (0.0, 0.0, 1.0, 1.0)):
            assert ids_set(loaded.window(*w)) == ids_set(col.window(*w))
        assert loaded.knn(0.5, 0.5, 7).tolist() == col.knn(0.5, 0.5, 7).tolist()
        assert ids_set(loaded.disk(0.5, 0.5, 0.1)) == ids_set(
            col.disk(0.5, 0.5, 0.1)
        )

    def test_loaded_collection_accepts_updates(self, tmp_path):
        data = generate_uniform_rects(500, area=1e-5, seed=78)
        col = SpatialCollection.from_dataset(data, partitions_per_dim=8)
        path = str(tmp_path / "col.npz")
        col.save(path)
        loaded = SpatialCollection.load(path)
        new_id = loaded.insert(Rect(0.31, 0.31, 0.32, 0.32))
        assert new_id == 500
        assert new_id in ids_set(loaded.window(0.30, 0.30, 0.33, 0.33))
        assert loaded.delete(new_id)

    def test_exact_path_is_respected(self, tmp_path):
        """Saving to ``foo.bin`` must create ``foo.bin``, not ``foo.bin.npz``."""
        data = generate_uniform_rects(200, area=1e-5, seed=79)
        col = SpatialCollection.from_dataset(data, partitions_per_dim=8)
        path = tmp_path / "snapshot.bin"
        col.save(str(path))
        assert path.exists()
        assert not (tmp_path / "snapshot.bin.npz").exists()
        assert len(SpatialCollection.load(str(path))) == 200

    def test_geometry_collections_refused(self, tmp_path):
        rects = [Rect(0.1, 0.1, 0.2, 0.2)]
        geoms = [LineString([(0.1, 0.1), (0.2, 0.2)])]
        data = RectDataset.from_rects(rects, geometries=geoms)
        col = SpatialCollection.from_dataset(data, partitions_per_dim=4)
        with pytest.raises(DatasetError, match="exact geometries"):
            col.save(str(tmp_path / "geo.npz"))

    def test_index_only_archive_refused(self, tmp_path):
        from repro.core.persistence import save_index

        data = generate_uniform_rects(300, area=1e-5, seed=80)
        col = SpatialCollection.from_dataset(data, partitions_per_dim=8)
        path = str(tmp_path / "index_only.npz")
        save_index(col.index, path)
        with pytest.raises(DatasetError, match="no dataset columns"):
            SpatialCollection.load(path)
