"""Snapshot isolation: COW semantics and reader/writer interleaving.

The load-bearing assertions: a reader holding a snapshot sees that
version forever (writes never mutate published state), and a batched
read executed against one snapshot matches exactly one pre- or
post-update version — never a torn mix.
"""

import threading

import numpy as np
import pytest

from repro.datasets import generate_uniform_rects
from repro.errors import IndexStateError
from repro.geometry import Rect
from repro.core import TwoLayerGrid, TwoLayerPlusGrid, evaluate_tiles_based
from repro.server.snapshot import SnapshotStore

from conftest import ids_set


def make_store(n=800, seed=31):
    data = generate_uniform_rects(n, area=1e-4, seed=seed)
    index = TwoLayerGrid.build(data, partitions_per_dim=16)
    return SnapshotStore(index, data)


class TestCowSemantics:
    def test_insert_is_invisible_to_held_snapshot(self):
        store = make_store()
        before = store.current
        rect = Rect(0.4, 0.4, 0.45, 0.45)
        obj_id, version = store.insert(rect)
        after = store.current
        assert version == 1 and after.version == 1 and before.version == 0
        window = Rect(0.39, 0.39, 0.46, 0.46)
        assert obj_id not in ids_set(before.index.window_query(window))
        assert obj_id in ids_set(after.index.window_query(window))
        assert len(before.data) == len(after.data) - 1

    def test_delete_is_invisible_to_held_snapshot(self):
        store = make_store()
        before = store.current
        victim = 0
        rect = before.data.rect(victim)
        window = Rect(rect.xl, rect.yl, rect.xu, rect.yu)
        assert victim in ids_set(before.index.window_query(window))
        found, version = store.delete(victim)
        assert found and version == 1
        assert victim in ids_set(before.index.window_query(window))
        assert victim not in ids_set(store.current.index.window_query(window))

    def test_insert_matches_in_place_index(self):
        """COW insert lands the object in exactly the tiles/classes the
        facade's in-place insert would use."""
        store = make_store()
        rect = Rect(0.21, 0.33, 0.58, 0.41)  # spans several tiles
        obj_id, _ = store.insert(rect)
        snap = store.current

        reference = TwoLayerGrid.build(
            generate_uniform_rects(800, area=1e-4, seed=31),
            partitions_per_dim=16,
        )
        ref_id = reference.insert(rect)
        assert ref_id == obj_id
        assert reference.replica_count == snap.index.replica_count
        assert reference.class_counts() == snap.index.class_counts()
        for w in (rect, Rect(0.0, 0.0, 1.0, 1.0), Rect(0.2, 0.3, 0.3, 0.45)):
            assert ids_set(reference.window_query(w)) == ids_set(
                snap.index.window_query(w)
            )

    def test_delete_then_reinsert_round_trip(self):
        store = make_store()
        rect = store.current.data.rect(3)
        store.delete(3)
        found_again, _ = store.delete(3)
        assert not found_again  # idempotent: entries already gone
        obj_id, _ = store.insert(rect)
        assert obj_id == len(store.current.data) - 1

    def test_out_of_range_delete(self):
        store = make_store()
        assert store.delete(-1) == (False, 0)
        assert store.delete(10_000) == (False, 0)
        assert store.current.version == 0

    def test_untouched_tiles_are_shared_not_copied(self):
        store = make_store()
        before = store.current
        store.insert(Rect(0.91, 0.91, 0.92, 0.92))
        after = store.current
        shared = sum(
            1
            for tid, tables in after.index._tiles.items()
            if before.index._tiles.get(tid) is tables
        )
        # one small rect touches O(1) tiles; everything else is shared
        assert shared >= len(before.index._tiles) - 4

    def test_plus_grid_refused(self):
        data = generate_uniform_rects(100, area=1e-4, seed=1)
        plus = TwoLayerPlusGrid.build(data, partitions_per_dim=8)
        with pytest.raises(IndexStateError):
            SnapshotStore(plus, data)

    def test_mismatched_lengths_refused(self):
        data = generate_uniform_rects(100, area=1e-4, seed=1)
        index = TwoLayerGrid.build(data, partitions_per_dim=8)
        short = data.slice(0, 50)
        with pytest.raises(IndexStateError):
            SnapshotStore(index, short)


class TestPublishedColumnsFrozen:
    """Published snapshot columns are read-only: a reader (or a buggy
    writer reaching around the COW constructors) that tries an in-place
    mutation must fail loudly instead of corrupting pinned versions."""

    def test_initial_snapshot_data_is_immutable(self):
        store = make_store(n=100)
        snap = store.current
        for col in (snap.data.xl, snap.data.yl, snap.data.xu, snap.data.yu):
            with pytest.raises(ValueError):
                col[0] = 0.5

    def test_insert_publishes_frozen_columns(self):
        store = make_store(n=100)
        store.insert(Rect(0.1, 0.1, 0.2, 0.2))
        snap = store.current
        with pytest.raises(ValueError):
            snap.data.xl[-1] = 0.0

    def test_pinned_snapshot_survives_mutation_attempt(self):
        store = make_store(n=200)
        pinned = store.current
        probe = Rect(0.2, 0.2, 0.8, 0.8)
        expected = ids_set(pinned.index.window_query(probe))
        with pytest.raises(ValueError):
            pinned.data.xu[:] = -1.0
        store.insert(Rect(0.5, 0.5, 0.55, 0.55))
        assert ids_set(pinned.index.window_query(probe)) == expected


class TestIsolationUnderConcurrency:
    def test_exhaustive_interleaving_exploration(self):
        """Deterministic twin of the thread-hammer test below: probe
        reader-visible state at *every* writer yield point against a
        brute-force oracle.  A reader is one atomic ``current`` load, so
        this covers every reader/writer interleaving of the bounded
        write script — exhaustively, not probabilistically."""
        from repro.analysis.verify.schedule import (
            explore_snapshot_store,
            make_scripted_store,
        )

        store, rects = make_scripted_store(n=32)
        ops = [
            ("insert", Rect(0.45, 0.45, 0.5, 0.5)),
            ("insert", Rect(0.47, 0.47, 0.52, 0.52)),
            ("delete", 3),
            ("delete", 3),  # tombstone miss: version must not advance
            ("insert", Rect(0.1, 0.1, 0.15, 0.15)),
            ("delete", 999),  # out-of-range miss
        ]
        report = explore_snapshot_store(
            store, rects, ops, probes=[Rect(0.0, 0.0, 1.1, 1.1),
                                       Rect(0.44, 0.44, 0.53, 0.53)]
        )
        assert report.ok, report.violations[0]
        assert report.schedules == len(ops)
        # 10 writer yield points per committed write + before/after probes
        assert report.probes >= 2 * (len(ops) + 1)

    def test_batched_reads_never_see_torn_updates(self):
        """Interleave inserts/deletes with in-flight batched reads; every
        batch must match exactly one published version's expected set."""
        store = make_store(n=400, seed=7)
        probe = Rect(0.45, 0.45, 0.55, 0.55)
        base = ids_set(store.current.index.window_query(probe))

        # Scripted writes: each version inserts one rect inside the probe
        # window, except every third version which deletes the previous
        # insert again.  expected[v] = the probe result set at version v.
        expected = [base]
        n_versions = 60
        inserted: list[int] = []

        stop = threading.Event()
        torn: list[str] = []

        def reader():
            while not stop.is_set():
                snap = store.current
                # two identical probes through the tiles-based batch path;
                # a torn snapshot would let them disagree (or mismatch
                # every published version's expected set)
                got_a, got_b = evaluate_tiles_based(
                    snap.index, [probe, probe]
                )
                set_a, set_b = ids_set(got_a), ids_set(got_b)
                if set_a != set_b:
                    torn.append(
                        f"intra-batch disagreement at v{snap.version}"
                    )
                    return
                if snap.version >= len(expected):
                    # the writer publishes inside insert()/delete()
                    # *before* the script appends the matching oracle
                    # set; a reader winning that microsecond race sees
                    # a version with no oracle entry yet — not a torn
                    # snapshot, just catch-up lag.  Probe again.
                    continue
                if set_a != expected[snap.version]:
                    torn.append(
                        f"v{snap.version}: got {len(set_a)} ids, "
                        f"expected {len(expected[snap.version])}"
                    )
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        rng = np.random.default_rng(11)
        try:
            for step in range(n_versions):
                if step % 3 == 2 and inserted:
                    victim = inserted.pop()
                    found, version = store.delete(victim)
                    assert found
                    new_set = set(expected[-1])
                    new_set.discard(victim)
                else:
                    x = float(rng.uniform(0.46, 0.53))
                    y = float(rng.uniform(0.46, 0.53))
                    obj_id, version = store.insert(
                        Rect(x, y, x + 0.005, y + 0.005)
                    )
                    inserted.append(obj_id)
                    new_set = set(expected[-1]) | {obj_id}
                expected.append(new_set)
                assert version == len(expected) - 1
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not torn, torn[0]

    def test_concurrent_writers_serialise(self):
        store = make_store(n=100, seed=3)
        ids: list[int] = []
        lock = threading.Lock()

        def writer(k):
            for i in range(25):
                obj_id, _ = store.insert(
                    Rect(0.1 + k * 0.01, 0.1, 0.1 + k * 0.01 + 0.001, 0.101)
                )
                with lock:
                    ids.append(obj_id)

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every insert got a unique positional id and all are queryable
        assert sorted(ids) == list(range(100, 200))
        assert store.current.version == 100
        assert len(store.current.data) == 200
