"""Band planning and footprint routing (repro.shard.partition)."""

import numpy as np
import pytest

from repro.errors import IndexStateError
from repro.shard.partition import (
    ShardBand,
    bands_for_range,
    plan_bands,
    shard_for_tile,
)


def bounds_from_rows(rows_per_tile):
    """Tile row bounds (offsets[::4] analogue) from per-tile row counts."""
    return np.concatenate(
        [[0], np.cumsum(np.asarray(rows_per_tile, dtype=np.int64))]
    )


class TestPlanBands:
    def test_partition_covers_tile_space_contiguously(self):
        bounds = bounds_from_rows([3, 0, 7, 1, 0, 5, 2, 2])
        bands = plan_bands(bounds, 3)
        assert bands[0].t_lo == 0
        assert bands[-1].t_hi == 8
        for a, b in zip(bands, bands[1:]):
            assert a.t_hi == b.t_lo
            assert a.row_hi == b.row_lo
        assert sum(b.n_rows for b in bands) == 20
        assert [b.shard for b in bands] == [0, 1, 2]

    def test_balance_on_uniform_rows(self):
        bounds = bounds_from_rows([10] * 100)
        bands = plan_bands(bounds, 4)
        assert [b.n_rows for b in bands] == [250, 250, 250, 250]

    def test_skew_splits_by_rows_not_tiles(self):
        # one hot tile holds almost everything; the planner must not
        # hand three idle shards one tile each of the cold tail
        rows = [1] * 7 + [1000]
        bands = plan_bands(bounds_from_rows(rows), 2)
        assert bands[0].n_rows <= bands[1].n_rows
        assert bands[1].owns_tile(7)

    def test_more_shards_than_tiles_yields_empty_bands(self):
        bounds = bounds_from_rows([4, 4])
        bands = plan_bands(bounds, 5)
        assert len(bands) == 5
        assert sum(b.n_rows for b in bands) == 8
        assert sum(1 for b in bands if b.n_tiles == 0) >= 3

    def test_rejects_bad_inputs(self):
        bounds = bounds_from_rows([1, 2])
        with pytest.raises(IndexStateError):
            plan_bands(bounds, 0)
        with pytest.raises(IndexStateError):
            plan_bands(np.array([0], dtype=np.int64), 2)

    def test_band_tuple_roundtrip(self):
        band = ShardBand(shard=2, t_lo=5, t_hi=9, row_lo=17, row_hi=40)
        assert ShardBand.from_tuple(band.to_tuple()) == band


class TestRouting:
    def setup_method(self):
        # 4x4 grid, one row per tile, 16 tiles split into 4 bands of 4
        self.nx = 4
        self.bounds = bounds_from_rows([1] * 16)
        self.bands = plan_bands(self.bounds, 4)

    def test_single_tile_footprint_routes_to_one_shard(self):
        for tid in range(16):
            ix, iy = tid % self.nx, tid // self.nx
            shards = bands_for_range(self.bands, self.nx, ix, ix, iy, iy)
            assert shards == [shard_for_tile(self.bands, tid)]

    def test_full_domain_routes_everywhere(self):
        assert bands_for_range(self.bands, self.nx, 0, 3, 0, 3) == [0, 1, 2, 3]

    def test_column_footprint_crosses_every_band(self):
        # a 1-wide column intersects each grid row, hence every band of
        # this row-major layout
        assert bands_for_range(self.bands, self.nx, 2, 2, 0, 3) == [0, 1, 2, 3]

    def test_results_ascend_by_shard(self):
        shards = bands_for_range(self.bands, self.nx, 0, 3, 1, 2)
        assert shards == sorted(shards)

    def test_empty_bands_never_routed(self):
        bands = plan_bands(bounds_from_rows([4, 4]), 5)
        routed = bands_for_range(bands, 2, 0, 1, 0, 0)
        assert all(bands[k].n_tiles > 0 for k in routed)
        total = {t for k in routed for t in range(bands[k].t_lo, bands[k].t_hi)}
        assert total == {0, 1}

    def test_shard_for_tile_rejects_out_of_range(self):
        with pytest.raises(IndexStateError):
            shard_for_tile(self.bands, 16)

    def test_routing_matches_brute_force_membership(self):
        rng = np.random.default_rng(5)
        nx = ny = 8
        bounds = bounds_from_rows(rng.integers(0, 6, nx * ny))
        bands = plan_bands(bounds, 3)
        for _ in range(200):
            ix0, ix1 = sorted(rng.integers(0, nx, 2))
            iy0, iy1 = sorted(rng.integers(0, ny, 2))
            footprint = {
                iy * nx + ix
                for iy in range(iy0, iy1 + 1)
                for ix in range(ix0, ix1 + 1)
            }
            want = sorted(
                b.shard
                for b in bands
                if any(b.owns_tile(t) for t in footprint)
            )
            got = bands_for_range(bands, nx, ix0, ix1, iy0, iy1)
            assert got == want
