"""Legacy installer shim.

`pip install -e .` with PEP 517 needs the `wheel` package for editable
metadata on some older toolchains; in fully offline environments without
it, `python setup.py develop` installs this package using only
setuptools.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
