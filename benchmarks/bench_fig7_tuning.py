"""Fig. 7 — building and tuning the grid indices vs granularity.

Paper panels (ROADS and EDGES): index build time, index size, and
window-query throughput of 1-layer / 2-layer / 2-layer⁺ as a function of
the number of partitions per dimension.  Expected shape:

* build time rises with granularity; 2-layer ≈ 1-layer, 2-layer⁺ clearly
  higher (it stores a second decomposed copy);
* 1-layer and 2-layer have identical sizes (same entries stored);
  2-layer⁺ is larger;
* throughput: a wide plateau over granularities; 2-layer(±) beat 1-layer
  by 2-3x everywhere, so exact tuning is not crucial.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import print_series, throughput, tiger_dataset, window_workload

from _shared import build_index, emit_bench_record
from conftest import report

#: granularity sweep, scaled down from the paper's 1K-20K per dimension
#: in proportion to the dataset-scale reduction.
GRANULARITIES = (16, 32, 64, 128, 256)
_METHODS = ("1-layer", "2-layer", "2-layer+")
_RESULTS: dict[tuple[str, str, int], dict[str, float]] = {}


@pytest.mark.parametrize("dataset", ["ROADS", "EDGES"])
@pytest.mark.parametrize("method", _METHODS)
def test_fig7_build_and_query(benchmark, dataset, method):
    data = tiger_dataset(dataset)
    queries = window_workload(dataset, 0.1)[:500]

    def run():
        for g in GRANULARITIES:
            t0 = time.perf_counter()
            index = build_index(method, data, granularity=g)
            build_s = time.perf_counter() - t0
            timed = throughput(index.window_query, queries)
            _RESULTS[(method, dataset, g)] = {
                "build_s": build_s,
                "size_mb": index.nbytes / 1e6,
                "qps": timed.qps,
                "replicas": index.replica_count,
            }

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig7_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def render():
        for dataset in ("ROADS", "EDGES"):
            for metric, label in (
                ("build_s", "index build time [sec]"),
                ("size_mb", "index size [MB]"),
                ("qps", "window-query throughput [queries/sec]"),
            ):
                print_series(
                    f"Fig. 7 ({dataset}) — {label} vs grid granularity",
                    "parts/dim",
                    GRANULARITIES,
                    {
                        m: [
                            _RESULTS[(m, dataset, g)][metric]
                            for g in GRANULARITIES
                        ]
                        for m in _METHODS
                    },
                )

    report(render)
    emit_bench_record(
        "fig7_tuning",
        {
            "datasets": ["ROADS", "EDGES"],
            "granularities": list(GRANULARITIES),
            "methods": list(_METHODS),
        },
        {"by_granularity": _RESULTS},
    )
    for dataset in ("ROADS", "EDGES"):
        for g in GRANULARITIES:
            one = _RESULTS[("1-layer", dataset, g)]
            two = _RESULTS[("2-layer", dataset, g)]
            plus = _RESULTS[("2-layer+", dataset, g)]
            # Same stored entries; plus stores a second decomposed copy.
            assert one["replicas"] == two["replicas"]
            assert plus["size_mb"] > two["size_mb"]
            # Secondary partitioning wins at every granularity.
            assert two["qps"] > one["qps"]
        # Build-time ordering is only meaningful above noise level (the
        # decomposed copy costs real time once builds take > 100 ms).
        total_two = sum(_RESULTS[("2-layer", dataset, g)]["build_s"] for g in GRANULARITIES)
        total_plus = sum(_RESULTS[("2-layer+", dataset, g)]["build_s"] for g in GRANULARITIES)
        if total_two > 0.5:
            assert total_plus > total_two
