"""Fig. 8 — query throughput on the real-data stand-ins.

Paper: for ROADS, EDGES and TIGER, window and disk query throughput of
R-tree, quad-tree, 1-layer, 2-layer (and 2-layer⁺ for windows only) as a
function of (a) query relative area in {0.01, 0.05, 0.1, 0.5, 1}% and
(b) query selectivity buckets.  Expected shape: 2-layer(⁺) on top for
every area/selectivity, 1-layer ≈ quad-tree next, R-tree last; the gap
is stable across datasets.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    bench_query_count,
    print_series,
    print_table,
    tiger_dataset,
    window_workload,
    disk_workload,
)
from repro.datasets import RELATIVE_AREAS_PERCENT

from _shared import KEY_METHODS, emit_bench_record, get_index
from conftest import report

_DATASETS = ("ROADS", "EDGES", "TIGER")
_DISK_METHODS = tuple(m for m in KEY_METHODS if m != "2-layer+")
#: (kind, dataset, method, area) -> qps; per-query (selectivity, time).
_RESULTS: dict[tuple, float] = {}
_PER_QUERY: dict[tuple, list[tuple[int, float]]] = {}


def _run_workload(index, queries, key):
    import time

    per_query = []
    t_total = 0.0
    for q in queries:
        t0 = time.perf_counter()
        if hasattr(q, "radius"):
            n = index.disk_query(q).shape[0]
        else:
            n = index.window_query(q).shape[0]
        dt = time.perf_counter() - t0
        t_total += dt
        per_query.append((n, dt))
    _RESULTS[key] = len(queries) / t_total
    _PER_QUERY.setdefault(key[:3], []).extend(per_query)


@pytest.mark.parametrize("dataset", _DATASETS)
@pytest.mark.parametrize("method", KEY_METHODS)
def test_fig8_window_area_sweep(benchmark, dataset, method):
    index = get_index(method, dataset)
    n = max(100, bench_query_count() // 4)

    def run():
        for area in RELATIVE_AREAS_PERCENT:
            queries = window_workload(dataset, area)[:n]
            _run_workload(index, queries, ("window", dataset, method, area))

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("dataset", _DATASETS)
@pytest.mark.parametrize("method", _DISK_METHODS)
def test_fig8_disk_area_sweep(benchmark, dataset, method):
    index = get_index(method, dataset)
    n = max(100, bench_query_count() // 8)

    def run():
        for area in RELATIVE_AREAS_PERCENT:
            queries = disk_workload(dataset, area)[:n]
            _run_workload(index, queries, ("disk", dataset, method, area))

    benchmark.pedantic(run, rounds=1, iterations=1)


def _selectivity_buckets(kind: str, dataset: str, methods, n_objects: int):
    """Group per-query runtimes into the paper's selectivity buckets."""
    edges = [0.0001, 0.001, 0.01, 1.01]  # fractions: 0.01%, 0.1%, 1%, 100%
    labels = ["[0,0.01]", "(0.01,0.1]", "(0.1,1]", "(1,100]"]
    table = {}
    for method in methods:
        rows = _PER_QUERY.get((kind, dataset, method), [])
        sums = [0.0] * len(labels)
        counts = [0] * len(labels)
        for n_results, dt in rows:
            sel = n_results / max(n_objects, 1)
            bucket = next(
                (i for i, e in enumerate(edges) if sel <= e), len(labels) - 1
            )
            sums[bucket] += dt
            counts[bucket] += 1
        table[method] = [
            (counts[i] / sums[i]) if sums[i] > 0 else float("nan")
            for i in range(len(labels))
        ]
    return labels, table


def test_fig8_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def render():
        for kind, methods in (("window", KEY_METHODS), ("disk", _DISK_METHODS)):
            for dataset in _DATASETS:
                print_series(
                    f"Fig. 8 ({dataset}) — {kind}-query throughput [q/s] vs relative area [%]",
                    "area%",
                    RELATIVE_AREAS_PERCENT,
                    {
                        m: [
                            _RESULTS.get((kind, dataset, m, a), float("nan"))
                            for a in RELATIVE_AREAS_PERCENT
                        ]
                        for m in methods
                    },
                )
                labels, table = _selectivity_buckets(
                    kind, dataset, methods, len(tiger_dataset(dataset))
                )
                print_table(
                    f"Fig. 8 ({dataset}) — {kind}-query throughput [q/s] vs selectivity [%]",
                    ["selectivity"] + list(methods),
                    [
                        [labels[i]] + [table[m][i] for m in methods]
                        for i in range(len(labels))
                    ],
                )

    report(render)
    emit_bench_record(
        "fig8_real",
        {
            "datasets": list(_DATASETS),
            "relative_areas_pct": list(RELATIVE_AREAS_PERCENT),
            "window_methods": list(KEY_METHODS),
            "disk_methods": list(_DISK_METHODS),
        },
        {"qps": _RESULTS},
    )
    # Shape: 2-layer dominates 1-layer and R-tree at every area, and
    # throughput decreases with query area.
    for dataset in _DATASETS:
        for area in RELATIVE_AREAS_PERCENT:
            two = _RESULTS[("window", dataset, "2-layer", area)]
            assert two > _RESULTS[("window", dataset, "1-layer", area)]
            assert two > _RESULTS[("window", dataset, "R-tree", area)]
        small = _RESULTS[("window", dataset, "2-layer", 0.01)]
        large = _RESULTS[("window", dataset, "2-layer", 1.0)]
        assert small > large
