"""Ablations of the design choices DESIGN.md calls out.

1. **Duplicate handling on the same grid** — class-based *avoidance*
   (2-layer) vs the three *elimination* techniques on the 1-layer grid:
   reference point [9], naive hashing, active border [2].  This isolates
   the paper's core claim from everything else.
2. **2-layer⁺ multi-comparison strategy** — the paper-literal
   search+verify order vs the vectorised scan this port defaults to
   (see ``TwoLayerPlusGrid``), quantifying the documented deviation.
"""

from __future__ import annotations

import pytest

from repro.bench import print_table, throughput, tiger_dataset, window_workload
from repro.grid import DEDUP_METHODS, OneLayerGrid
from repro.core import TwoLayerPlusGrid

from _shared import emit_bench_record, get_index
from conftest import report

_RESULTS: dict[str, float] = {}
_N_QUERIES = 500


@pytest.mark.parametrize("dedup", DEDUP_METHODS)
def test_ablation_dedup_technique(benchmark, dedup):
    data = tiger_dataset("ROADS")
    index = OneLayerGrid.build(data, partitions_per_dim=64, dedup=dedup)
    queries = window_workload("ROADS", 0.1)[:_N_QUERIES]

    def run():
        for w in queries:
            index.window_query(w)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[f"1-layer + {dedup}"] = throughput(index.window_query, queries).qps


def test_ablation_duplicate_avoidance(benchmark):
    index = get_index("2-layer", "ROADS")
    queries = window_workload("ROADS", 0.1)[:_N_QUERIES]

    def run():
        for w in queries:
            index.window_query(w)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS["2-layer (avoidance)"] = throughput(index.window_query, queries).qps


@pytest.mark.parametrize("family", ["kd-tree", "kd-tree 2-layer"])
def test_ablation_sop_family(benchmark, family):
    """Secondary partitioning generalises beyond grids: kd-tree variant."""
    from repro.kdtree import KDTree, TwoLayerKDTree

    data = tiger_dataset("ROADS")
    cls = TwoLayerKDTree if family.endswith("2-layer") else KDTree
    index = cls.build(data, leaf_capacity=256)
    queries = window_workload("ROADS", 0.1)[:_N_QUERIES]

    def run():
        for w in queries:
            index.window_query(w)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[family] = throughput(index.window_query, queries).qps


@pytest.mark.parametrize("packing", ["str", "hilbert"])
def test_ablation_rtree_packing(benchmark, packing):
    """STR vs Hilbert bulk loading for the R-tree competitor."""
    from repro.rtree import RTree

    data = tiger_dataset("ROADS")
    index = RTree.build(data, packing=packing)
    queries = window_workload("ROADS", 0.1)[:_N_QUERIES]

    def run():
        for w in queries:
            index.window_query(w)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[f"R-tree ({packing} packed)"] = throughput(
        index.window_query, queries
    ).qps


@pytest.mark.parametrize("strategy", ["scan", "search_verify"])
def test_ablation_plus_strategy(benchmark, strategy):
    data = tiger_dataset("ROADS")
    index = TwoLayerPlusGrid.build(
        data, partitions_per_dim=64, multi_comparison_strategy=strategy
    )
    queries = window_workload("ROADS", 0.1)[:_N_QUERIES]

    def run():
        for w in queries:
            index.window_query(w)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[f"2-layer+ ({strategy})"] = throughput(index.window_query, queries).qps


def test_ablation_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report(
        lambda: print_table(
            "Ablation — duplicate handling, SOP families, packing & "
            "2-layer+ strategies (ROADS, window 0.1%) [queries/sec]",
            ["variant", "throughput"],
            [[name, qps] for name, qps in sorted(_RESULTS.items())],
        )
    )
    emit_bench_record(
        "ablation",
        {"dataset": "ROADS", "window_area_pct": 0.1},
        {"qps": _RESULTS},
    )
    # Avoidance must beat every elimination technique on the same grid.
    for dedup in DEDUP_METHODS:
        assert _RESULTS["2-layer (avoidance)"] > _RESULTS[f"1-layer + {dedup}"]
    # ...and boost the kd-tree family like it boosts grids/quad-trees.
    assert _RESULTS["kd-tree 2-layer"] > _RESULTS["kd-tree"]
