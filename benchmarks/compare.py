#!/usr/bin/env python
"""Benchmark regression gate: compare results against committed baselines.

Usage::

    # compare benchmarks/results/BENCH_*.json against benchmarks/baselines/
    PYTHONPATH=src python benchmarks/compare.py

    # adopt the current results as the new baselines
    PYTHONPATH=src python benchmarks/compare.py --update-baseline

    # gate on absolute timings even across different machines
    PYTHONPATH=src python benchmarks/compare.py --strict

Exit status: 0 when every record passes the gate, 1 on any regression,
2 on usage/IO errors (missing results, schema-less records).

Gate semantics (see :mod:`repro.obs.trajectory`):

* *who-wins ordering* is always a hard gate — a decisive inversion
  (margins beyond the noise band on both sides) fails the run even
  across machines;
* *timing deltas* beyond the noise band gate hard only when the run
  manifests are comparable (same host, interpreter, NumPy, scale and
  dataset fingerprint) *and* at least two metrics of the same method
  regressed (a real regression is corroborated across datasets;
  machine-load spikes hit isolated metrics).  ``--strict`` gates every
  beyond-band regression; everything softer warns.

Records without a baseline are reported and skipped (the gate stays
green so new benchmarks can land before their baseline does); commit a
baseline with ``--update-baseline`` to arm the gate for them.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))

from repro.errors import ObsError  # noqa: E402
from repro.obs.trajectory import (  # noqa: E402
    DEFAULT_NOISE_PCT,
    compare_records,
    format_trend_table,
    load_record,
    load_records,
)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare benchmark results against committed baselines."
    )
    parser.add_argument(
        "--results",
        default=os.path.join(_HERE, "results"),
        help="directory holding the current BENCH_*.json records",
    )
    parser.add_argument(
        "--baselines",
        default=os.path.join(_HERE, "baselines"),
        help="directory holding the committed baseline records",
    )
    parser.add_argument(
        "--noise",
        type=float,
        default=DEFAULT_NOISE_PCT,
        help="relative noise band in percent (default %(default)s)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="gate on timing deltas even when run manifests differ",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="copy the current results over the baselines and exit",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="benchmark names to compare (default: every record found)",
    )
    args = parser.parse_args(argv)

    try:
        results = load_records(args.results)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.names:
        results = [r for r in results if r.name in set(args.names)]
    if not results:
        print(
            f"error: no benchmark records under {args.results!r}"
            + (f" matching {args.names}" if args.names else ""),
            file=sys.stderr,
        )
        return 2

    if args.update_baseline:
        os.makedirs(args.baselines, exist_ok=True)
        for record in results:
            dest = os.path.join(args.baselines, os.path.basename(record.path))
            shutil.copyfile(record.path, dest)
            print(f"baseline updated: {dest}")
        return 0

    failures: list[str] = []
    for record in results:
        base_path = os.path.join(args.baselines, os.path.basename(record.path))
        if not os.path.exists(base_path):
            print(
                f"== {record.name} == no baseline at {base_path}; skipping "
                f"(run with --update-baseline to adopt the current record)\n"
            )
            continue
        try:
            baseline = load_record(base_path)
            comp = compare_records(record, baseline, noise_pct=args.noise)
        except ObsError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_trend_table(comp, noise_pct=args.noise))
        if not args.strict:
            gated = set() if not comp.comparable else {
                id(d) for d in comp.corroborated_regressions
            }
            why = (
                "uncorroborated (no second metric of the same method moved)"
                if comp.comparable
                else "the runs are from different environments"
            )
            for d in comp.timing_regressions:
                if id(d) not in gated:
                    print(
                        f"warning: {d.series}[{d.key}] moved "
                        f"{d.delta_pct:+.1f}% but {why}; not gating "
                        f"(use --strict to gate anyway)"
                    )
        failures.extend(comp.gate_failures(strict=args.strict))
        print()

    if failures:
        print("REGRESSION GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("regression gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
