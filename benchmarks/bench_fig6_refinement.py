"""Fig. 6 — time breakdown of refined queries (Simple / RefAvoid / RefAvoid⁺).

Paper: 10K window and disk queries over ROADS and EDGES *with exact
geometries*; average per-query time split into filtering, secondary
filtering and refinement.  Expected shape: the Lemma 5 secondary filter
certifies >90% of candidates, collapsing the refinement bar; with
RefAvoid(+) the bottleneck of window queries moves to the filtering step.
RefAvoid⁺ is window-only.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.bench import print_table, tiger_dataset
from repro.datasets import generate_disk_queries, generate_window_queries
from repro.core import RefinementBreakdown, RefinementEngine, TwoLayerGrid

from _shared import emit_bench_record
from conftest import report

_WINDOW_MODES = ("simple", "refavoid", "refavoid_plus")
_DISK_MODES = ("simple", "refavoid")
_N_QUERIES = 300
_RESULTS: dict[tuple[str, str, str], RefinementBreakdown] = {}


@lru_cache(maxsize=None)
def _engine(dataset: str) -> RefinementEngine:
    data = tiger_dataset(dataset, with_geometries=True)
    index = TwoLayerGrid.build(data, partitions_per_dim=32)
    return RefinementEngine(index, data)


@pytest.mark.parametrize("dataset", ["ROADS", "EDGES"])
@pytest.mark.parametrize("mode", _WINDOW_MODES)
def test_fig6_window_breakdown(benchmark, dataset, mode):
    engine = _engine(dataset)
    queries = generate_window_queries(engine.data, _N_QUERIES, 0.1, seed=7)

    def run():
        breakdown = RefinementBreakdown()
        for w in queries:
            engine.window(w, mode, breakdown=breakdown)
        return breakdown

    breakdown = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[("window", dataset, mode)] = breakdown


@pytest.mark.parametrize("dataset", ["ROADS", "EDGES"])
@pytest.mark.parametrize("mode", _DISK_MODES)
def test_fig6_disk_breakdown(benchmark, dataset, mode):
    engine = _engine(dataset)
    queries = generate_disk_queries(engine.data, _N_QUERIES, 0.1, seed=7)

    def run():
        breakdown = RefinementBreakdown()
        for q in queries:
            engine.disk(q, mode, breakdown=breakdown)
        return breakdown

    breakdown = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[("disk", dataset, mode)] = breakdown


def test_fig6_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for (kind, dataset, mode), b in sorted(_RESULTS.items()):
        us = 1e6 / max(b.queries, 1)
        rows.append(
            [
                kind,
                dataset,
                {"simple": "Simple", "refavoid": "RefAvoid", "refavoid_plus": "RefAvoid+"}[mode],
                b.filtering_time * us,
                b.secondary_filter_time * us,
                b.refinement_time * us,
                b.avoided_fraction * 100.0,
            ]
        )
    report(
        lambda: print_table(
            "Fig. 6 — per-query time breakdown [microsec] and avoided candidates [%]",
            ["query", "dataset", "variant", "filtering", "sec.filter", "refinement", "avoided%"],
            rows,
        )
    )
    emit_bench_record(
        "fig6_refinement",
        {
            "datasets": ["ROADS", "EDGES"],
            "window_modes": list(_WINDOW_MODES),
            "disk_modes": list(_DISK_MODES),
            "queries": _N_QUERIES,
        },
        {"breakdown": {k: vars(b) for k, b in _RESULTS.items()}},
    )
    for dataset in ("ROADS", "EDGES"):
        simple = _RESULTS[("window", dataset, "simple")]
        avoid = _RESULTS[("window", dataset, "refavoid")]
        assert avoid.avoided_fraction > 0.9, "Lemma 5 must certify >90%"
        assert avoid.refinement_time < simple.refinement_time, (
            "RefAvoid must collapse the refinement bar"
        )
