"""Fig. 12 — 2-layer grid vs a (simulated) distributed spatial engine.

Paper: 100 end-to-end window queries (0.1% area) on ROADS; throughput of
the 2-layer grid (1000x1000 granularity) vs GeoSpark with R-tree local
indexing, as a function of thread count.  Expected shape: the in-memory
2-layer index beats the cluster engine by >= 3 orders of magnitude at
every thread count, because the cluster's serial per-job coordination
overhead dwarfs the actual spatial work at this data scale (consistent
with [24]); adding threads barely narrows the gap.

GeoSpark is simulated offline with a calibrated overhead model
(:mod:`repro.distributed`; DESIGN.md substitution 4) around *real*
per-partition R-tree searches.
"""

from __future__ import annotations

import time
from functools import lru_cache


from repro.bench import print_series, tiger_dataset, window_workload
from repro.distributed import SimulatedSpatialCluster
from repro.core import ParallelBatchEvaluator

from _shared import emit_bench_record, get_index
from conftest import report

_THREADS = (1, 2, 4, 6, 8, 12)
_N_QUERIES = 100
_RESULTS: dict[tuple[str, int], float] = {}


@lru_cache(maxsize=None)
def _cluster() -> SimulatedSpatialCluster:
    return SimulatedSpatialCluster(tiger_dataset("ROADS"), partitions_per_dim=6)


def test_fig12_geospark_simulated(benchmark):
    cluster = _cluster()
    queries = list(window_workload("ROADS", 0.1)[:_N_QUERIES])

    def run():
        for threads in _THREADS:
            _RESULTS[("GeoSpark (simulated)", threads)] = cluster.throughput(
                queries, threads
            )

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig12_two_layer(benchmark):
    index = get_index("2-layer", "ROADS")
    queries = list(window_workload("ROADS", 0.1)[:_N_QUERIES])

    def run():
        for threads in _THREADS:
            if threads == 1:
                t0 = time.perf_counter()
                for w in queries:
                    index.window_query(w)
                elapsed = time.perf_counter() - t0
            else:
                # The paper evaluates queries independently (not in batch)
                # for the multi-threaded comparison; the worker pool is
                # persistent and warmed, like an OpenMP thread team.
                with ParallelBatchEvaluator(index, min(threads, 8)) as pool:
                    pool.run(queries[:20], method="queries")  # warm-up
                    t0 = time.perf_counter()
                    pool.run(queries, method="queries")
                    elapsed = time.perf_counter() - t0
            _RESULTS[("2-layer", threads)] = len(queries) / elapsed

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig12_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def render():
        print_series(
            "Fig. 12 — window-query throughput [queries/sec] vs #threads (ROADS, 0.1%)",
            "#threads",
            _THREADS,
            {
                name: [_RESULTS[(name, t)] for t in _THREADS]
                for name in ("GeoSpark (simulated)", "2-layer")
            },
        )

    report(render)
    emit_bench_record(
        "fig12_distributed",
        {
            "dataset": "ROADS",
            "window_area_pct": 0.1,
            "threads": list(_THREADS),
            "engines": ["GeoSpark (simulated)", "2-layer"],
        },
        {"qps": _RESULTS},
    )
    for threads in _THREADS:
        ratio = _RESULTS[("2-layer", threads)] / _RESULTS[
            ("GeoSpark (simulated)", threads)
        ]
        assert ratio > 100, (
            f"2-layer must dominate the cluster engine (got {ratio:.0f}x at "
            f"{threads} threads; paper reports >= 3 orders of magnitude)"
        )
