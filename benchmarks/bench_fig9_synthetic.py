"""Fig. 9 — synthetic data sweeps (uniform and zipfian).

Paper panels per distribution: window-query throughput vs (a) query
relative extent, (b) dataset cardinality {1,5,10,50,100}M (scaled), and
(c) data rectangle area {10^-inf, 1e-14, 1e-12, 1e-10, 1e-8, 1e-6}.
Expected shape: ordering stable under all three sweeps; the 2-layer gap
grows with the data rectangle area (more replication means more
duplicates for 1-layer to generate and kill) yet persists at point-like
10^-inf data, where 1-layer still pays the reference-point test.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    bench_query_count,
    bench_scale,
    print_series,
    throughput,
    window_workload,
)
from repro.datasets import TABLE4_AREAS

from _shared import KEY_METHODS, emit_bench_record, get_index
from conftest import report

_DISTRIBUTIONS = ("uniform", "zipf")
#: scaled Table IV cardinalities (paper: 1M..100M; same 1:100 spread).
def _cardinalities() -> tuple[int, ...]:
    scale = bench_scale()
    return tuple(int(c * scale) for c in (1e6, 5e6, 10e6, 50e6, 100e6))


_DEFAULT_AREA = 1e-10
_EXTENTS = (0.01, 0.05, 0.1, 0.5, 1.0)
_RESULTS: dict[tuple, float] = {}


def _key(n: int, area: float, distribution: str) -> str:
    return f"synthetic:{n}:{area}:{distribution}"


def _measure(method: str, dataset_key: str, area_percent: float, n_queries: int):
    index = get_index(method, dataset_key)
    queries = window_workload(dataset_key, area_percent)[:n_queries]
    return throughput(index.window_query, queries).qps


@pytest.mark.parametrize("distribution", _DISTRIBUTIONS)
@pytest.mark.parametrize("method", KEY_METHODS)
def test_fig9_query_extent_sweep(benchmark, distribution, method):
    n = _cardinalities()[2]  # the 10M-scaled default cardinality
    key = _key(n, _DEFAULT_AREA, distribution)
    n_q = max(100, bench_query_count() // 4)

    def run():
        for extent in _EXTENTS:
            _RESULTS[("extent", distribution, method, extent)] = _measure(
                method, key, extent, n_q
            )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("distribution", _DISTRIBUTIONS)
@pytest.mark.parametrize("method", KEY_METHODS)
def test_fig9_cardinality_sweep(benchmark, distribution, method):
    n_q = max(100, bench_query_count() // 8)

    def run():
        for n in _cardinalities():
            key = _key(n, _DEFAULT_AREA, distribution)
            _RESULTS[("card", distribution, method, n)] = _measure(
                method, key, 0.1, n_q
            )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("distribution", _DISTRIBUTIONS)
@pytest.mark.parametrize("method", KEY_METHODS)
def test_fig9_data_area_sweep(benchmark, distribution, method):
    n = _cardinalities()[2]
    n_q = max(100, bench_query_count() // 8)

    def run():
        for area in TABLE4_AREAS:
            key = _key(n, area, distribution)
            _RESULTS[("area", distribution, method, area)] = _measure(
                method, key, 0.1, n_q
            )

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig9_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def render():
        for distribution in _DISTRIBUTIONS:
            print_series(
                f"Fig. 9 ({distribution}) — throughput [q/s] vs query relative extent [%]",
                "extent%",
                _EXTENTS,
                {
                    m: [
                        _RESULTS[("extent", distribution, m, e)] for e in _EXTENTS
                    ]
                    for m in KEY_METHODS
                },
            )
            cards = _cardinalities()
            print_series(
                f"Fig. 9 ({distribution}) — throughput [q/s] vs data cardinality (scaled from 1M-100M)",
                "cardinality",
                cards,
                {
                    m: [_RESULTS[("card", distribution, m, n)] for n in cards]
                    for m in KEY_METHODS
                },
            )
            print_series(
                f"Fig. 9 ({distribution}) — throughput [q/s] vs data rectangle area (0 = 10^-inf)",
                "rect area",
                TABLE4_AREAS,
                {
                    m: [
                        _RESULTS[("area", distribution, m, a)] for a in TABLE4_AREAS
                    ]
                    for m in KEY_METHODS
                },
            )

    report(render)
    emit_bench_record(
        "fig9_synthetic",
        {
            "distributions": list(_DISTRIBUTIONS),
            "extents_pct": list(_EXTENTS),
            "rect_areas": list(TABLE4_AREAS),
            "methods": list(KEY_METHODS),
        },
        {"qps": _RESULTS},
    )
    for distribution in _DISTRIBUTIONS:
        # Ordering holds at every data rectangle area, including 10^-inf.
        for area in TABLE4_AREAS:
            assert (
                _RESULTS[("area", distribution, "2-layer", area)]
                > _RESULTS[("area", distribution, "1-layer", area)]
            )
        # Cardinality does not change the relative ordering (paper quote).
        for n in _cardinalities():
            assert (
                _RESULTS[("card", distribution, "2-layer", n)]
                > _RESULTS[("card", distribution, "R-tree", n)]
            )
