"""Table VI — total update cost.

Paper: build each index by bulk-loading 90% of the data, then measure the
total cost of inserting the remaining 10% one object at a time.
Expected: 1-layer fastest, 2-layer marginally slower, quad-tree clearly
slower, R-tree about two orders of magnitude slower than the grids.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import print_table, tiger_dataset

from _shared import build_index, emit_bench_record
from conftest import report

_METHODS = ("R-tree", "quad-tree", "1-layer", "2-layer")
_DATASETS = ("ROADS", "EDGES", "TIGER")
_RESULTS: dict[tuple[str, str], float] = {}


def _update_workload(dataset: str, method: str):
    data = tiger_dataset(dataset)
    split = int(len(data) * 0.9)
    index = build_index(method, data.slice(0, split))
    tail = [(data.rect(i), i) for i in range(split, len(data))]
    return index, tail


@pytest.mark.parametrize("dataset", _DATASETS)
@pytest.mark.parametrize("method", _METHODS)
def test_table6_update_cost(benchmark, dataset, method):
    # Inserts mutate the index, so each repeat rebuilds from the 90%
    # bulk load; best-of-5 keeps these millisecond-scale timings stable
    # enough for the regression gate (benchmarks/compare.py) across
    # reruns.
    def run_once():
        index, tail = _update_workload(dataset, method)
        t0 = time.perf_counter()
        for rect, oid in tail:
            index.insert(rect, oid)
        return time.perf_counter() - t0

    seconds = benchmark.pedantic(run_once, rounds=1, iterations=1)
    seconds = min([seconds] + [run_once() for _ in range(4)])
    _RESULTS[(method, dataset)] = seconds


def test_table6_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [d]
        + [_RESULTS.get((m, d), float("nan")) for m in _METHODS]
        for d in _DATASETS
    ]
    report(
        lambda: print_table(
            "Table VI — total update cost [sec] (insert last 10%)",
            ["dataset"] + list(_METHODS),
            rows,
        )
    )
    emit_bench_record(
        "table6_updates",
        {"datasets": list(_DATASETS), "methods": list(_METHODS), "tail_pct": 10},
        {"insert_tail_s": _RESULTS},
    )
    for d in _DATASETS:
        assert _RESULTS[("1-layer", d)] <= _RESULTS[("2-layer", d)] * 1.5, (
            "2-layer updates must stay close to 1-layer"
        )
        assert _RESULTS[("R-tree", d)] > _RESULTS[("2-layer", d)], (
            "R-tree updates must be slower than grid updates"
        )
