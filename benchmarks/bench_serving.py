"""Serving benchmark: micro-batched vs unbatched request throughput.

Spawns two ``python -m repro --serve`` subprocesses — one with batching
disabled (``--max-batch 1 --coalesce-ms 0``) and one with the default
coalescing micro-batcher — then drives each with closed-loop client
threads at several concurrency levels.  Records p50/p95/p99 latency and
aggregate throughput per (mode, clients) cell, plus an open-loop
overload phase against a deliberately tiny admission queue to show
backpressure rejects rather than hangs.

Run directly (not through pytest-benchmark)::

    PYTHONPATH=src python benchmarks/bench_serving.py

Results land in ``benchmarks/results/BENCH_serving.json``.  Two
acceptance bars: batched throughput >= 1.5x unbatched at the highest
concurrency level (the batcher amortises per-request event-loop and
tile-scan work across the coalesced batch, the serving analogue of the
paper's Section VI batch-evaluation speedups), and live telemetry —
request tracing, per-verb histograms, tile heat — must cost at most
``--max-telemetry-overhead`` percent of telemetry-off throughput
(default 3%; the comparison runs best-of ``--telemetry-reps`` per state
at the top concurrency level).  A sharded phase sweeps ``--shards``
counts (default 1 vs 4), spot-checks scatter-gather parity on every
verb, and gates on ``--min-shard-speedup`` — auto-relaxed to
record-only on hosts with fewer than 4 cores, where a worker fleet
cannot physically beat one process.  A boot phase (``--boot-n`` rows,
default 1M; ``--boot-only`` runs just this) saves the same collection
as both a columnar memmap container and a legacy npz archive, records
the ``--serve --index`` cold-start split (archive read vs index build)
from the server's ``server.boot.*`` gauges, and gates on the
columnar-vs-npz read speedup (``--min-boot-speedup``, default 50x,
record-only below 1M rows).  ``--telemetry-only`` skips the batching
sweep and overload phase for quick CI overhead checks.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from _shared import emit_bench_record  # noqa: E402

from repro.server.client import SpatialClient  # noqa: E402
from repro.server.protocol import decode_response, encode_request  # noqa: E402


def spawn_server(*extra: str) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "--serve", "127.0.0.1:0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    line = proc.stdout.readline()
    m = re.search(r"serving on ([\d.]+):(\d+)", line)
    if not m:
        proc.kill()
        raise RuntimeError(f"server failed to start: {proc.stderr.read()}")
    return proc, m.group(1), int(m.group(2))


def stop_server(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.communicate(timeout=20)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()


def client_windows(k: int, count: int, side: float) -> list[tuple]:
    rng = np.random.default_rng(1000 + k)
    xs = rng.uniform(0.0, 1.0 - side, size=count)
    ys = rng.uniform(0.0, 1.0 - side, size=count)
    return [
        (float(x), float(y), float(x + side), float(y + side))
        for x, y in zip(xs, ys)
    ]


class _MuxConn:
    """One TCP connection shared by several logical clients.

    The protocol echoes request ids, so responses may interleave across
    the logical clients pipelined on this socket; a single reader task
    demultiplexes frames back to per-request futures.  Sharing sockets
    is how a real service client behaves under fan-in, and it gives the
    server's per-connection response aggregation something to aggregate."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.waiters: dict = {}
        self._task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self):
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                frame = decode_response(line)
                fut = self.waiters.pop(frame.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except Exception as exc:  # fail every waiter loudly, never hang
            for fut in self.waiters.values():
                if not fut.done():
                    fut.set_exception(exc)
            self.waiters.clear()

    async def call(self, rid, payload: bytes) -> dict:
        fut = asyncio.get_event_loop().create_future()
        self.waiters[rid] = fut
        self.writer.write(payload)
        return await fut

    async def close(self):
        self._task.cancel()
        self.writer.close()


async def _logical_client(
    conn: _MuxConn, k: int, per_client: int, side: float
) -> tuple[list[float], int]:
    """One closed-loop logical client: send a count query, wait for its
    answer, repeat.  Counts are the serving workload where batching
    matters most — full query evaluation per request, but responses stay
    small enough that JSON encode/decode does not drown the amortised
    costs.  Frames are pre-encoded so the loop measures the server, not
    the generator's own json.dumps."""
    frames = [
        (
            k * 1_000_000 + i,
            encode_request(
                k * 1_000_000 + i,
                "count",
                {"xl": xl, "yl": yl, "xu": xu, "yu": yu},
            ),
        )
        for i, (xl, yl, xu, yu) in enumerate(
            client_windows(k, per_client, side)
        )
    ]
    latencies: list[float] = []
    retries = 0
    for rid, payload in frames:
        t0 = time.perf_counter()
        while True:
            frame = await conn.call(rid, payload)
            if frame["ok"]:
                break
            error = frame["error"]
            if error["code"] != "overloaded":
                raise RuntimeError(f"client {k}: {error}")
            retries += 1
            await asyncio.sleep(error.get("retry_after_ms", 10) / 1e3)
        latencies.append((time.perf_counter() - t0) * 1000.0)
    return latencies, retries


def closed_loop(
    host: str,
    port: int,
    clients: int,
    per_client: int,
    side: float,
    conns: int,
) -> dict:
    """``clients`` closed-loop logical clients, each issuing
    ``per_client`` count queries back to back, multiplexed over
    ``conns`` shared TCP connections.  The load generator is one asyncio
    event loop — a thread per client would bottleneck on the generator's
    own GIL and never saturate the server."""
    conns = min(conns, clients)

    async def drive():
        muxes = []
        for _ in range(conns):
            reader, writer = await asyncio.open_connection(host, port)
            muxes.append(_MuxConn(reader, writer))
        t0 = time.perf_counter()
        try:
            results = await asyncio.gather(
                *(
                    _logical_client(
                        muxes[k % conns], k, per_client, side
                    )
                    for k in range(clients)
                )
            )
            wall = time.perf_counter() - t0
        finally:
            for mux in muxes:
                await mux.close()
        return results, wall

    results, wall = asyncio.run(drive())
    retries = sum(r for _, r in results)
    flat = np.asarray([ms for per, _ in results for ms in per])
    return {
        "clients": clients,
        "conns": conns,
        "requests": int(flat.size),
        "throughput_rps": float(flat.size / wall),
        "p50_ms": float(np.percentile(flat, 50)),
        "p95_ms": float(np.percentile(flat, 95)),
        "p99_ms": float(np.percentile(flat, 99)),
        "overload_retries": int(retries),
        "wall_s": float(wall),
    }


def overload_phase(n: int, seed: int) -> dict:
    """Open-loop: pipeline far more requests than a tiny queue admits in
    one coalescing window; the server must answer every frame — a mix of
    results and structured ``overloaded`` rejections, never a hang."""
    proc, host, port = spawn_server(
        "--n", str(n), "--seed", str(seed),
        "--queue-depth", "8", "--max-batch", "4", "--coalesce-ms", "25",
    )
    # burst stays below the server's per-connection send-queue depth
    # (256): every response frame must fit in flight while this client
    # is still writing, or the server rightly drops us as a slow consumer.
    burst = 200
    try:
        with SpatialClient(host, port, timeout=60.0) as cli:
            for _ in range(burst):
                cli.send_raw("window",
                             {"xl": 0.1, "yl": 0.1, "xu": 0.3, "yu": 0.3})
            ok = rejected = 0
            for _ in range(burst):
                frame = cli.recv_raw()
                if frame["ok"]:
                    ok += 1
                elif frame["error"]["code"] == "overloaded":
                    rejected += 1
    finally:
        stop_server(proc)
    return {"burst": burst, "accepted": ok, "rejected": rejected}


def telemetry_phase(args) -> dict:
    """Telemetry-on vs telemetry-off throughput at the top concurrency.

    Each state gets its own server (identical flags apart from
    ``--telemetry``); both run concurrently (the idle one just sleeps
    on its event loop) and the ``--telemetry-reps`` closed-loop reps
    alternate between them, flipping order every round, so a slow
    machine window biases both states equally instead of whichever
    state happened to run first.  The best rep per state is compared,
    which filters scheduler noise the way the repo's other A/B
    benchmarks do.
    """
    top = max(args.clients)
    flags = [
        "--n", str(args.n), "--seed", str(args.seed),
        "--queue-depth", "4096", "--max-batch", "64", "--coalesce-ms", "0",
    ]
    servers: dict[str, tuple] = {}
    best: dict[str, dict] = {}
    try:
        for state in ("on", "off"):
            servers[state] = spawn_server(*flags, "--telemetry", state)
            _, host, port = servers[state]
            with SpatialClient(host, port) as cli:
                cli.window(0.4, 0.4, 0.5, 0.5)  # warm off the clock
        for rep in range(args.telemetry_reps):
            order = ("on", "off") if rep % 2 == 0 else ("off", "on")
            for state in order:
                _, host, port = servers[state]
                cell = closed_loop(
                    host, port, top, args.per_client, args.side, args.conns
                )
                if (
                    state not in best
                    or cell["throughput_rps"] > best[state]["throughput_rps"]
                ):
                    best[state] = cell
                print(
                    f" telemetry={state:<3} rep={rep + 1} "
                    f"{cell['throughput_rps']:8.0f} req/s  "
                    f"p50={cell['p50_ms']:.2f}ms p99={cell['p99_ms']:.2f}ms"
                )
    finally:
        for proc, _, _ in servers.values():
            stop_server(proc)
    on_rps = best["on"]["throughput_rps"]
    off_rps = best["off"]["throughput_rps"]
    overhead_pct = (off_rps - on_rps) / off_rps * 100.0
    return {
        "clients": top,
        "reps": args.telemetry_reps,
        "on": best["on"],
        "off": best["off"],
        "on_rps": on_rps,
        "off_rps": off_rps,
        "overhead_pct": overhead_pct,
    }


def _parity_spot_check(
    addr_a: tuple[str, int], addr_b: tuple[str, int], seed: int, trials: int = 20
) -> dict:
    """Scatter-gather parity: every verb must answer identically on a
    single-process server and a sharded router over the same dataset."""
    rng = np.random.default_rng(seed)
    mismatches = 0
    with SpatialClient(*addr_a) as ca, SpatialClient(*addr_b) as cb:
        for _ in range(trials):
            xs = sorted(rng.uniform(0.0, 1.0, 2))
            ys = sorted(rng.uniform(0.0, 1.0, 2))
            w = (xs[0], ys[0], xs[1], ys[1])
            cx, cy = rng.uniform(0, 1), rng.uniform(0, 1)
            r = rng.uniform(0.01, 0.1)
            checks = (
                sorted(ca.window(*w)) == sorted(cb.window(*w)),
                sorted(ca.window(*w, predicate="within"))
                == sorted(cb.window(*w, predicate="within")),
                ca.count(*w) == cb.count(*w),
                sorted(ca.disk(cx, cy, r)) == sorted(cb.disk(cx, cy, r)),
                ca.knn(cx, cy, 10) == cb.knn(cx, cy, 10),
            )
            mismatches += sum(1 for okay in checks if not okay)
    return {"trials": trials, "verbs": 5, "mismatches": mismatches}


def sharded_phase(args) -> dict:
    """Sharded router vs single-process read throughput, plus a
    scatter-gather parity spot check on every verb.

    The speedup gate only engages on machines with enough cores to host
    the worker fleet (``--min-shard-speedup`` defaults to 2.5x at >= 4
    available cores, 0 below — a single-core runner still measures and
    records, it just cannot fail on a number the hardware cannot hit).
    """
    top = max(args.clients)
    flags = [
        "--n", str(args.n), "--seed", str(args.seed),
        "--queue-depth", "4096", "--max-batch", "64", "--coalesce-ms", "0",
    ]
    sweep = sorted(set(args.shards_sweep))
    servers: dict[int, tuple] = {}
    cells: dict[int, dict] = {}
    try:
        for k in sweep:
            extra = ["--shards", str(k)] if k > 1 else []
            servers[k] = spawn_server(*flags, *extra)
            _, host, port = servers[k]
            with SpatialClient(host, port) as cli:
                cli.window(0.4, 0.4, 0.5, 0.5)  # warm off the clock
        parity = _parity_spot_check(
            servers[sweep[0]][1:], servers[sweep[-1]][1:], args.seed
        )
        for k in sweep:
            _, host, port = servers[k]
            cell = closed_loop(
                host, port, top, args.per_client, args.side, args.conns
            )
            cells[k] = cell
            print(
                f"  shards={k:<2d} {cell['throughput_rps']:8.0f} req/s  "
                f"p50={cell['p50_ms']:.2f}ms p99={cell['p99_ms']:.2f}ms"
            )
    finally:
        for proc, _, _ in servers.values():
            stop_server(proc)
    base = cells[sweep[0]]["throughput_rps"]
    peak_k = max(cells, key=lambda k: cells[k]["throughput_rps"])
    speedup = cells[peak_k]["throughput_rps"] / base
    return {
        "clients": top,
        "sweep": {str(k): cells[k] for k in sweep},
        "parity": parity,
        "base_rps": base,
        "best_shards": peak_k,
        "speedup": speedup,
        "cores": os.cpu_count() or 1,
    }


def boot_phase(n: int, seed: int) -> dict:
    """Cold-start timing: columnar (memmap) vs legacy npz boot.

    Builds one collection, saves it in both formats, then (a) times the
    npz read in-process via ``load_collection`` timings — decompression
    dominates and needs no server around it — and (b) boots a real
    ``--serve --index`` subprocess from the columnar container and reads
    the ``server.boot.*`` gauges off the ``stats`` verb.  The headline
    number is ``read_speedup = npz read_ms / columnar read_ms``: the
    memmap container maps instead of decompressing, so the ratio grows
    with the archive and is the tentpole acceptance gate at >= 1M rows.
    """
    import tempfile

    from repro.api import SpatialCollection
    from repro.core.persistence import load_collection, save_collection
    from repro.datasets import generate_uniform_rects

    data = generate_uniform_rects(n, area=1e-6, seed=seed)
    col = SpatialCollection.from_dataset(data, partitions_per_dim=64)
    with tempfile.TemporaryDirectory() as tmp:
        npz_path = os.path.join(tmp, "bench_boot.npz")
        col_path = os.path.join(tmp, "bench_boot.idx")
        save_collection(col.index, col.data, npz_path, format="npz")
        save_collection(col.index, col.data, col_path)
        npz_bytes = os.path.getsize(npz_path)
        archive_bytes = os.path.getsize(col_path)

        npz_timings: dict = {}
        load_collection(npz_path, timings=npz_timings)

        proc, host, port = spawn_server("--index", col_path)
        try:
            with SpatialClient(host, port) as cli:
                metrics = cli.stats()["metrics"]
        finally:
            stop_server(proc)
    read_ms = metrics["server.boot.read_ms"]
    return {
        "objects": n,
        "archive_bytes": archive_bytes,
        "npz_bytes": npz_bytes,
        "read_ms": read_ms,
        "build_ms": metrics["server.boot.build_ms"],
        "total_ms": metrics["server.boot.total_ms"],
        "npz_read_ms": npz_timings["read_ms"],
        "npz_build_ms": npz_timings["build_ms"],
        "read_speedup": npz_timings["read_ms"] / max(read_ms, 1e-9),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=30_000, help="dataset size")
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument(
        "--clients", type=int, nargs="+", default=[4, 16, 32],
        help="closed-loop concurrency levels (acceptance reads the last)",
    )
    parser.add_argument(
        "--per-client", type=int, default=60,
        help="requests each closed-loop client issues",
    )
    parser.add_argument(
        "--side", type=float, default=0.04,
        help="query window side length (unit domain)",
    )
    parser.add_argument(
        "--conns", type=int, default=8,
        help="TCP connections the logical clients share (id-multiplexed)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.5,
        help="exit non-zero below this batched/unbatched ratio "
             "(0 disables the gate, e.g. on shared CI runners)",
    )
    parser.add_argument(
        "--shards-sweep", type=int, nargs="+", default=[1, 4],
        metavar="K",
        help="shard counts for the sharded-router phase "
             "(1 = plain single-process baseline)",
    )
    parser.add_argument(
        "--min-shard-speedup", type=float, default=None,
        help="exit non-zero below this sharded/single read-throughput "
             "ratio; default auto: 2.5 with >= 4 cores, 0 (record only) "
             "below",
    )
    parser.add_argument(
        "--telemetry", choices=("on", "off", "both"), default="both",
        help="'both' (default) adds the telemetry-overhead comparison; "
             "'on'/'off' just set the state for the batching sweep",
    )
    parser.add_argument(
        "--telemetry-reps", type=int, default=6,
        help="closed-loop reps per telemetry state (best rep compared)",
    )
    parser.add_argument(
        "--max-telemetry-overhead", type=float, default=3.0,
        help="exit non-zero when telemetry-on throughput trails "
             "telemetry-off by more than this percentage "
             "(0 disables the gate, e.g. on shared CI runners)",
    )
    parser.add_argument(
        "--telemetry-only", action="store_true",
        help="run only the telemetry-overhead comparison (CI smoke)",
    )
    parser.add_argument(
        "--sharded-only", action="store_true",
        help="run only the sharded-router phase (CI shard smoke)",
    )
    parser.add_argument(
        "--boot-n", type=int, default=1_000_000,
        help="dataset size for the cold-start boot phase (the memmap "
             "vs npz read gate needs >= 1M rows to be meaningful)",
    )
    parser.add_argument(
        "--min-boot-speedup", type=float, default=50.0,
        help="exit non-zero when columnar read_ms is not at least this "
             "many times faster than the npz read; auto-relaxed to "
             "record-only when --boot-n < 1M (0 disables)",
    )
    parser.add_argument(
        "--boot-only", action="store_true",
        help="run only the cold-start boot phase (columnar vs npz)",
    )
    args = parser.parse_args(argv)

    if args.boot_only:
        boot_gate = args.min_boot_speedup if args.boot_n >= 1_000_000 else 0.0
        print(
            f"index boot phase (--serve --index cold start, "
            f"n={args.boot_n}, gate={boot_gate:.0f}x):"
        )
        boot = boot_phase(args.boot_n, args.seed)
        print(
            f"  columnar read={boot['read_ms']:.2f}ms "
            f"build={boot['build_ms']:.1f}ms "
            f"total={boot['total_ms']:.1f}ms "
            f"({boot['archive_bytes'] / 1e6:.1f} MB container)\n"
            f"  npz      read={boot['npz_read_ms']:.1f}ms "
            f"build={boot['npz_build_ms']:.1f}ms "
            f"({boot['npz_bytes'] / 1e6:.1f} MB archive)\n"
            f"  read speedup: {boot['read_speedup']:.0f}x"
        )
        path = emit_bench_record(
            "serving_boot",
            params={
                "boot_n": args.boot_n,
                "seed": args.seed,
                "min_boot_speedup": boot_gate,
            },
            series={"boot": boot},
        )
        print(f"wrote {path}")
        if boot_gate > 0 and boot["read_speedup"] < boot_gate:
            print(
                f"FAIL: columnar read speedup {boot['read_speedup']:.1f}x "
                f"below the {boot_gate:.0f}x gate"
            )
            return 1
        return 0

    if args.sharded_only:
        gate = args.min_shard_speedup
        if gate is None:
            gate = 2.5 if (os.cpu_count() or 1) >= 4 else 0.0
        print(
            f"sharded router phase (sweep={args.shards_sweep}, "
            f"gate={gate:.1f}x):"
        )
        sh = sharded_phase(args)
        print(
            f"\nspeedup at {sh['best_shards']} shards: {sh['speedup']:.2f}x  "
            f"parity mismatches: {sh['parity']['mismatches']}/"
            f"{sh['parity']['trials'] * sh['parity']['verbs']}"
        )
        path = emit_bench_record(
            "serving_sharded",
            params={
                "n": args.n,
                "seed": args.seed,
                "clients": max(args.clients),
                "per_client": args.per_client,
                "window_side": args.side,
                "conns": args.conns,
                "shards_sweep": args.shards_sweep,
                "min_shard_speedup": gate,
            },
            series={"sharded": sh},
        )
        print(f"wrote {path}")
        if sh["parity"]["mismatches"] > 0:
            print("FAIL: sharded scatter-gather diverged from single-process")
            return 1
        if gate > 0 and sh["speedup"] < gate:
            print(
                f"FAIL: sharded speedup {sh['speedup']:.2f}x below "
                f"the {gate:.1f}x gate"
            )
            return 1
        return 0

    if args.telemetry_only:
        print("telemetry overhead (closed loop, batched):")
        tel = telemetry_phase(args)
        print(
            f"\ntelemetry on={tel['on_rps']:.0f} req/s "
            f"off={tel['off_rps']:.0f} req/s "
            f"overhead={tel['overhead_pct']:.2f}%"
        )
        path = emit_bench_record(
            "serving_telemetry",
            params={
                "n": args.n,
                "seed": args.seed,
                "clients": max(args.clients),
                "per_client": args.per_client,
                "window_side": args.side,
                "conns": args.conns,
                "reps": args.telemetry_reps,
            },
            series={"telemetry": tel},
        )
        print(f"wrote {path}")
        if (
            args.max_telemetry_overhead > 0
            and tel["overhead_pct"] > args.max_telemetry_overhead
        ):
            print(
                f"FAIL: telemetry overhead {tel['overhead_pct']:.2f}% "
                f"exceeds {args.max_telemetry_overhead:.1f}%"
            )
            return 1
        return 0

    modes = {
        "unbatched": ["--max-batch", "1", "--coalesce-ms", "0"],
        "batched": ["--max-batch", "64", "--coalesce-ms", "0"],
    }
    sweep_telemetry = "off" if args.telemetry == "off" else "on"
    common = [
        "--n", str(args.n), "--seed", str(args.seed),
        "--queue-depth", "4096", "--telemetry", sweep_telemetry,
    ]
    series: dict[str, dict] = {}
    for mode, flags in modes.items():
        proc, host, port = spawn_server(*common, *flags)
        try:
            # warm the snapshot/caches off the clock
            with SpatialClient(host, port) as cli:
                cli.window(0.4, 0.4, 0.5, 0.5)
            for clients in args.clients:
                cell = closed_loop(
                    host, port, clients, args.per_client, args.side,
                    args.conns,
                )
                series[f"{mode}/c{clients}"] = cell
                print(
                    f"{mode:>10} clients={clients:<3d} "
                    f"{cell['throughput_rps']:8.0f} req/s  "
                    f"p50={cell['p50_ms']:.2f}ms "
                    f"p95={cell['p95_ms']:.2f}ms "
                    f"p99={cell['p99_ms']:.2f}ms"
                )
        finally:
            stop_server(proc)

    top = max(args.clients)
    ratio = (
        series[f"batched/c{top}"]["throughput_rps"]
        / series[f"unbatched/c{top}"]["throughput_rps"]
    )
    series["speedup"] = {"clients": top, "batched_over_unbatched": ratio}
    print(f"\nbatched/unbatched throughput at {top} clients: {ratio:.2f}x")

    print("\nopen-loop overload phase (queue_depth=8):")
    series["overload"] = overload_phase(args.n, args.seed)
    print(
        f"  burst={series['overload']['burst']} "
        f"accepted={series['overload']['accepted']} "
        f"rejected={series['overload']['rejected']}"
    )
    if series["overload"]["rejected"] == 0:
        print("  WARNING: expected some overload rejections, saw none")

    telemetry_ok = True
    if args.telemetry == "both":
        print("\ntelemetry overhead (closed loop, batched):")
        tel = telemetry_phase(args)
        series["telemetry"] = tel
        print(
            f"  on={tel['on_rps']:.0f} req/s off={tel['off_rps']:.0f} req/s "
            f"overhead={tel['overhead_pct']:.2f}% "
            f"(budget {args.max_telemetry_overhead:.1f}%)"
        )
        if (
            args.max_telemetry_overhead > 0
            and tel["overhead_pct"] > args.max_telemetry_overhead
        ):
            telemetry_ok = False
            print("  FAIL: telemetry overhead exceeds the budget")

    shard_gate = args.min_shard_speedup
    if shard_gate is None:
        shard_gate = 2.5 if (os.cpu_count() or 1) >= 4 else 0.0
    sharded_ok = True
    print(
        f"\nsharded router phase (sweep={args.shards_sweep}, "
        f"gate={shard_gate:.1f}x):"
    )
    sh = sharded_phase(args)
    series["sharded"] = sh
    print(
        f"  speedup at {sh['best_shards']} shards: {sh['speedup']:.2f}x  "
        f"parity mismatches: {sh['parity']['mismatches']}/"
        f"{sh['parity']['trials'] * sh['parity']['verbs']}"
    )
    if sh["parity"]["mismatches"] > 0:
        sharded_ok = False
        print("  FAIL: sharded scatter-gather diverged from single-process")
    if shard_gate > 0 and sh["speedup"] < shard_gate:
        sharded_ok = False
        print(
            f"  FAIL: sharded speedup {sh['speedup']:.2f}x "
            f"below the {shard_gate:.1f}x gate"
        )

    boot_gate = args.min_boot_speedup if args.boot_n >= 1_000_000 else 0.0
    print(
        f"\nindex boot phase (--serve --index cold start, "
        f"n={args.boot_n}, gate={boot_gate:.0f}x):"
    )
    boot = series["boot"] = boot_phase(args.boot_n, args.seed)
    print(
        f"  columnar read={boot['read_ms']:.2f}ms "
        f"build={boot['build_ms']:.1f}ms total={boot['total_ms']:.1f}ms "
        f"({boot['archive_bytes'] / 1e6:.1f} MB container)\n"
        f"  npz      read={boot['npz_read_ms']:.1f}ms "
        f"build={boot['npz_build_ms']:.1f}ms "
        f"({boot['npz_bytes'] / 1e6:.1f} MB archive)\n"
        f"  read speedup: {boot['read_speedup']:.0f}x"
    )
    boot_ok = True
    if boot_gate > 0 and boot["read_speedup"] < boot_gate:
        boot_ok = False
        print(
            f"  FAIL: columnar read speedup {boot['read_speedup']:.1f}x "
            f"below the {boot_gate:.0f}x gate"
        )

    path = emit_bench_record(
        "serving",
        params={
            "n": args.n,
            "seed": args.seed,
            "clients": args.clients,
            "per_client": args.per_client,
            "window_side": args.side,
            "conns": args.conns,
            "telemetry": sweep_telemetry,
            "telemetry_reps": args.telemetry_reps,
            "shards_sweep": args.shards_sweep,
            "min_shard_speedup": shard_gate,
            "boot_n": args.boot_n,
            "min_boot_speedup": boot_gate,
            "modes": {k: " ".join(v) for k, v in modes.items()},
        },
        series=series,
    )
    print(f"\nwrote {path}")
    ok = (
        ratio >= args.min_speedup
        and series["overload"]["rejected"] > 0
        and telemetry_ok
        and sharded_ok
        and boot_ok
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
