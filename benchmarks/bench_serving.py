"""Serving benchmark: micro-batched vs unbatched request throughput.

Spawns two ``python -m repro --serve`` subprocesses — one with batching
disabled (``--max-batch 1 --coalesce-ms 0``) and one with the default
coalescing micro-batcher — then drives each with closed-loop client
threads at several concurrency levels.  Records p50/p95/p99 latency and
aggregate throughput per (mode, clients) cell, plus an open-loop
overload phase against a deliberately tiny admission queue to show
backpressure rejects rather than hangs.

Run directly (not through pytest-benchmark)::

    PYTHONPATH=src python benchmarks/bench_serving.py

Results land in ``benchmarks/results/BENCH_serving.json``.  The
acceptance bar: batched throughput >= 1.5x unbatched at the highest
concurrency level (the batcher amortises per-request event-loop and
tile-scan work across the coalesced batch, the serving analogue of the
paper's Section VI batch-evaluation speedups).
"""

from __future__ import annotations

import argparse
import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from _shared import emit_bench_record  # noqa: E402

from repro.server.client import SpatialClient  # noqa: E402
from repro.server.protocol import decode_response, encode_request  # noqa: E402


def spawn_server(*extra: str) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "--serve", "127.0.0.1:0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    line = proc.stdout.readline()
    m = re.search(r"serving on ([\d.]+):(\d+)", line)
    if not m:
        proc.kill()
        raise RuntimeError(f"server failed to start: {proc.stderr.read()}")
    return proc, m.group(1), int(m.group(2))


def stop_server(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.communicate(timeout=20)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()


def client_windows(k: int, count: int, side: float) -> list[tuple]:
    rng = np.random.default_rng(1000 + k)
    xs = rng.uniform(0.0, 1.0 - side, size=count)
    ys = rng.uniform(0.0, 1.0 - side, size=count)
    return [
        (float(x), float(y), float(x + side), float(y + side))
        for x, y in zip(xs, ys)
    ]


class _MuxConn:
    """One TCP connection shared by several logical clients.

    The protocol echoes request ids, so responses may interleave across
    the logical clients pipelined on this socket; a single reader task
    demultiplexes frames back to per-request futures.  Sharing sockets
    is how a real service client behaves under fan-in, and it gives the
    server's per-connection response aggregation something to aggregate."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.waiters: dict = {}
        self._task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self):
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                frame = decode_response(line)
                fut = self.waiters.pop(frame.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except Exception as exc:  # fail every waiter loudly, never hang
            for fut in self.waiters.values():
                if not fut.done():
                    fut.set_exception(exc)
            self.waiters.clear()

    async def call(self, rid, payload: bytes) -> dict:
        fut = asyncio.get_event_loop().create_future()
        self.waiters[rid] = fut
        self.writer.write(payload)
        return await fut

    async def close(self):
        self._task.cancel()
        self.writer.close()


async def _logical_client(
    conn: _MuxConn, k: int, per_client: int, side: float
) -> tuple[list[float], int]:
    """One closed-loop logical client: send a count query, wait for its
    answer, repeat.  Counts are the serving workload where batching
    matters most — full query evaluation per request, but responses stay
    small enough that JSON encode/decode does not drown the amortised
    costs.  Frames are pre-encoded so the loop measures the server, not
    the generator's own json.dumps."""
    frames = [
        (
            k * 1_000_000 + i,
            encode_request(
                k * 1_000_000 + i,
                "count",
                {"xl": xl, "yl": yl, "xu": xu, "yu": yu},
            ),
        )
        for i, (xl, yl, xu, yu) in enumerate(
            client_windows(k, per_client, side)
        )
    ]
    latencies: list[float] = []
    retries = 0
    for rid, payload in frames:
        t0 = time.perf_counter()
        while True:
            frame = await conn.call(rid, payload)
            if frame["ok"]:
                break
            error = frame["error"]
            if error["code"] != "overloaded":
                raise RuntimeError(f"client {k}: {error}")
            retries += 1
            await asyncio.sleep(error.get("retry_after_ms", 10) / 1e3)
        latencies.append((time.perf_counter() - t0) * 1000.0)
    return latencies, retries


def closed_loop(
    host: str,
    port: int,
    clients: int,
    per_client: int,
    side: float,
    conns: int,
) -> dict:
    """``clients`` closed-loop logical clients, each issuing
    ``per_client`` count queries back to back, multiplexed over
    ``conns`` shared TCP connections.  The load generator is one asyncio
    event loop — a thread per client would bottleneck on the generator's
    own GIL and never saturate the server."""
    conns = min(conns, clients)

    async def drive():
        muxes = []
        for _ in range(conns):
            reader, writer = await asyncio.open_connection(host, port)
            muxes.append(_MuxConn(reader, writer))
        t0 = time.perf_counter()
        try:
            results = await asyncio.gather(
                *(
                    _logical_client(
                        muxes[k % conns], k, per_client, side
                    )
                    for k in range(clients)
                )
            )
            wall = time.perf_counter() - t0
        finally:
            for mux in muxes:
                await mux.close()
        return results, wall

    results, wall = asyncio.run(drive())
    retries = sum(r for _, r in results)
    flat = np.asarray([ms for per, _ in results for ms in per])
    return {
        "clients": clients,
        "conns": conns,
        "requests": int(flat.size),
        "throughput_rps": float(flat.size / wall),
        "p50_ms": float(np.percentile(flat, 50)),
        "p95_ms": float(np.percentile(flat, 95)),
        "p99_ms": float(np.percentile(flat, 99)),
        "overload_retries": int(retries),
        "wall_s": float(wall),
    }


def overload_phase(n: int, seed: int) -> dict:
    """Open-loop: pipeline far more requests than a tiny queue admits in
    one coalescing window; the server must answer every frame — a mix of
    results and structured ``overloaded`` rejections, never a hang."""
    proc, host, port = spawn_server(
        "--n", str(n), "--seed", str(seed),
        "--queue-depth", "8", "--max-batch", "4", "--coalesce-ms", "25",
    )
    # burst stays below the server's per-connection send-queue depth
    # (256): every response frame must fit in flight while this client
    # is still writing, or the server rightly drops us as a slow consumer.
    burst = 200
    try:
        with SpatialClient(host, port, timeout=60.0) as cli:
            for _ in range(burst):
                cli.send_raw("window",
                             {"xl": 0.1, "yl": 0.1, "xu": 0.3, "yu": 0.3})
            ok = rejected = 0
            for _ in range(burst):
                frame = cli.recv_raw()
                if frame["ok"]:
                    ok += 1
                elif frame["error"]["code"] == "overloaded":
                    rejected += 1
    finally:
        stop_server(proc)
    return {"burst": burst, "accepted": ok, "rejected": rejected}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=30_000, help="dataset size")
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument(
        "--clients", type=int, nargs="+", default=[4, 16, 32],
        help="closed-loop concurrency levels (acceptance reads the last)",
    )
    parser.add_argument(
        "--per-client", type=int, default=60,
        help="requests each closed-loop client issues",
    )
    parser.add_argument(
        "--side", type=float, default=0.04,
        help="query window side length (unit domain)",
    )
    parser.add_argument(
        "--conns", type=int, default=8,
        help="TCP connections the logical clients share (id-multiplexed)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.5,
        help="exit non-zero below this batched/unbatched ratio "
             "(0 disables the gate, e.g. on shared CI runners)",
    )
    args = parser.parse_args(argv)

    modes = {
        "unbatched": ["--max-batch", "1", "--coalesce-ms", "0"],
        "batched": ["--max-batch", "64", "--coalesce-ms", "0"],
    }
    common = [
        "--n", str(args.n), "--seed", str(args.seed),
        "--queue-depth", "4096",
    ]
    series: dict[str, dict] = {}
    for mode, flags in modes.items():
        proc, host, port = spawn_server(*common, *flags)
        try:
            # warm the snapshot/caches off the clock
            with SpatialClient(host, port) as cli:
                cli.window(0.4, 0.4, 0.5, 0.5)
            for clients in args.clients:
                cell = closed_loop(
                    host, port, clients, args.per_client, args.side,
                    args.conns,
                )
                series[f"{mode}/c{clients}"] = cell
                print(
                    f"{mode:>10} clients={clients:<3d} "
                    f"{cell['throughput_rps']:8.0f} req/s  "
                    f"p50={cell['p50_ms']:.2f}ms "
                    f"p95={cell['p95_ms']:.2f}ms "
                    f"p99={cell['p99_ms']:.2f}ms"
                )
        finally:
            stop_server(proc)

    top = max(args.clients)
    ratio = (
        series[f"batched/c{top}"]["throughput_rps"]
        / series[f"unbatched/c{top}"]["throughput_rps"]
    )
    series["speedup"] = {"clients": top, "batched_over_unbatched": ratio}
    print(f"\nbatched/unbatched throughput at {top} clients: {ratio:.2f}x")

    print("\nopen-loop overload phase (queue_depth=8):")
    series["overload"] = overload_phase(args.n, args.seed)
    print(
        f"  burst={series['overload']['burst']} "
        f"accepted={series['overload']['accepted']} "
        f"rejected={series['overload']['rejected']}"
    )
    if series["overload"]["rejected"] == 0:
        print("  WARNING: expected some overload rejections, saw none")

    path = emit_bench_record(
        "serving",
        params={
            "n": args.n,
            "seed": args.seed,
            "clients": args.clients,
            "per_client": args.per_client,
            "window_side": args.side,
            "conns": args.conns,
            "modes": {k: " ".join(v) for k, v in modes.items()},
        },
        series=series,
    )
    print(f"\nwrote {path}")
    ok = ratio >= args.min_speedup and series["overload"]["rejected"] > 0
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
