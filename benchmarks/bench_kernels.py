"""Fused-kernel micro-benchmark: packed CSR base vs legacy tile dicts.

Measures the per-query wall time of 2-layer window queries as a function
of *tiles touched* (window area sweep), once per storage backend.  The
packed backend evaluates each query with the fused region kernels over
the CSR base (:mod:`repro.grid.storage`); the legacy backend walks the
per-tile dictionaries.  The gap is the PR's headline: Python/dict
overhead per tile versus O(regions) vectorised passes, so the speedup
should *grow* with the number of tiles a query touches.

When the ``compiled`` extra (numba) is installed the sweep adds a third
backend — ``storage="compiled"``, the jitted condition-major kernels of
:mod:`repro.grid.kernels` — and gates it at a mean >= 5x over the
vectorised packed tier (full scale only).  Without numba the compiled
column simply does not exist: the series keys and params stay stable,
so baseline comparisons never mix the two environments.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import (
    BEST_GRANULARITY,
    print_table,
    throughput,
    tiger_dataset,
    window_workload,
)
from repro.core import TwoLayerGrid
from repro.grid.kernels import compiled_available
from repro.stats import QueryStats

from _shared import emit_bench_record
from conftest import report

_STORAGES = ("packed", "legacy") + (
    ("compiled",) if compiled_available() else ()
)
_MIN_COMPILED_SPEEDUP = 5.0
#: window area sweep (% of the domain) — larger windows touch more tiles.
_AREAS = (0.05, 0.1, 0.5, 1.0)
_DATASET = "ROADS"

_LATENCY: dict[tuple[str, str], float] = {}  # (storage, area label) -> µs
_TILES: dict[str, float] = {}  # area label -> mean tiles touched

_INDEXES: dict[str, TwoLayerGrid] = {}


def _index(storage: str) -> TwoLayerGrid:
    if storage not in _INDEXES:
        _INDEXES[storage] = TwoLayerGrid.build(
            tiger_dataset(_DATASET),
            partitions_per_dim=BEST_GRANULARITY,
            storage=storage,
        )
    return _INDEXES[storage]


def _label(area: float) -> str:
    return f"{area}pct"


@pytest.mark.parametrize("area", _AREAS)
@pytest.mark.parametrize("storage", _STORAGES)
def test_kernels_window_latency(benchmark, storage, area):
    index = _index(storage)
    queries = window_workload(_DATASET, area)

    def run():
        for w in queries:
            index.window_query(w)

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    timed = throughput(index.window_query, queries, repeats=3)
    _LATENCY[(storage, _label(area))] = 1e6 / timed.qps
    if storage == "packed":
        stats = QueryStats()
        for w in queries:
            index.window_query(w, stats)
        _TILES[_label(area)] = stats.partitions_visited / len(queries)


def test_kernels_report(benchmark):
    """Assemble the latency-vs-tiles table and register the record."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    have_compiled = "compiled" in _STORAGES
    rows = []
    for area in _AREAS:
        label = _label(area)
        packed = _LATENCY[("packed", label)]
        legacy = _LATENCY[("legacy", label)]
        row = [label, _TILES[label], packed, legacy, legacy / packed]
        if have_compiled:
            compiled = _LATENCY[("compiled", label)]
            row += [compiled, packed / compiled]
        rows.append(row)
    headers = ["area", "tiles", "packed µs", "legacy µs", "speedup"]
    if have_compiled:
        headers += ["compiled µs", "c-speedup"]
    report(
        lambda: print_table(
            "Fused kernels — per-query latency [µs] vs tiles touched "
            f"(2-layer, {_DATASET}, window area sweep)",
            headers,
            rows,
        )
    )
    # One series per backend: the who-wins ordering inside each series
    # (bigger windows are slower) is scale-stable, so the regression
    # gate never trips on smoke-scale CI runs.  The compiled series
    # exists only where numba does — keeps numba-free baselines
    # comparable to numba-free runs.
    series = {
        "packed_latency_us": {
            _label(a): _LATENCY[("packed", _label(a))] for a in _AREAS
        },
        "legacy_latency_us": {
            _label(a): _LATENCY[("legacy", _label(a))] for a in _AREAS
        },
        "tiles_touched": dict(_TILES),
    }
    if have_compiled:
        series["compiled_latency_us"] = {
            _label(a): _LATENCY[("compiled", _label(a))] for a in _AREAS
        }
    emit_bench_record(
        "kernels",
        {
            "dataset": _DATASET,
            "granularity": BEST_GRANULARITY,
            "window_area_pct": list(_AREAS),
            "storages": list(_STORAGES),
        },
        series,
    )
    # Shape assertion at full scale only: tiny smoke datasets leave too
    # little per-tile work for the fused kernels to amortise reliably.
    scale = float(os.environ.get("REPRO_BENCH_SCALE") or 1.0)
    if scale >= 0.01:
        for area in _AREAS:
            label = _label(area)
            assert _LATENCY[("packed", label)] < _LATENCY[("legacy", label)], (
                f"packed must beat legacy at {label}"
            )
        if have_compiled:
            mean_speedup = sum(
                _LATENCY[("packed", _label(a))]
                / _LATENCY[("compiled", _label(a))]
                for a in _AREAS
            ) / len(_AREAS)
            assert mean_speedup >= _MIN_COMPILED_SPEEDUP, (
                f"compiled tier {mean_speedup:.1f}x over packed, "
                f"gate is {_MIN_COMPILED_SPEEDUP:.0f}x"
            )
