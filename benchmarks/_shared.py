"""Shared method registry, cached index builders and result emission."""

from __future__ import annotations

import json
import math
import os
import time
from functools import lru_cache

from repro.bench import BEST_GRANULARITY, synthetic_dataset, tiger_dataset
from repro.block import BlockIndex
from repro.datasets import RectDataset
from repro.grid import OneLayerGrid
from repro.core import TwoLayerGrid, TwoLayerPlusGrid
from repro.quadtree import MXCIFQuadTree, QuadTree, TwoLayerQuadTree
from repro.rtree import RStarTree, RTree

__all__ = [
    "build_index",
    "get_index",
    "resolve_dataset",
    "emit_bench_record",
    "KEY_METHODS",
    "ALL_METHODS",
]

#: the five methods carried through Figs. 8-9 after the Table V cut.
KEY_METHODS = ("R-tree", "quad-tree", "1-layer", "2-layer", "2-layer+")

#: every Table V competitor.
ALL_METHODS = (
    "2-layer",
    "2-layer+",
    "1-layer",
    "quad-tree",
    "quad-tree-2layer",
    "R-tree",
    "R*-tree",
    "BLOCK",
    "MXCIF",
)


def build_index(method: str, data: RectDataset, granularity: int = BEST_GRANULARITY):
    """Construct a fresh index of the named method over ``data``."""
    if method == "1-layer":
        return OneLayerGrid.build(data, partitions_per_dim=granularity)
    if method == "2-layer":
        return TwoLayerGrid.build(data, partitions_per_dim=granularity)
    if method == "2-layer+":
        return TwoLayerPlusGrid.build(data, partitions_per_dim=granularity)
    if method == "quad-tree":
        return QuadTree.build(data)
    if method == "quad-tree-2layer":
        return TwoLayerQuadTree.build(data)
    if method == "R-tree":
        return RTree.build(data)
    if method == "R*-tree":
        return RStarTree.build(data)
    if method == "BLOCK":
        return BlockIndex.build(data)
    if method == "MXCIF":
        return MXCIFQuadTree.build(data)
    raise KeyError(f"unknown method {method!r}")


def resolve_dataset(dataset_key: str) -> RectDataset:
    """Dataset lookup shared with :mod:`repro.bench.workloads`."""
    if dataset_key in ("ROADS", "EDGES", "TIGER"):
        return tiger_dataset(dataset_key)
    _, n, area, distribution = dataset_key.split(":")
    return synthetic_dataset(int(n), float(area), distribution)


@lru_cache(maxsize=None)
def get_index(method: str, dataset_key: str, granularity: int = BEST_GRANULARITY):
    """Cached index: built once per process, shared across benchmarks."""
    return build_index(method, resolve_dataset(dataset_key), granularity)


# -- machine-readable result emission -----------------------------------------


def _json_key(key) -> str:
    """Stringify a series key; tuple keys join with "/" (e.g. method/dataset)."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def _jsonable(value):
    """Recursively coerce benchmark values into strict-JSON types.

    Non-finite floats become ``null`` (strict JSON has no NaN/inf) and
    numpy scalars collapse to Python numbers.
    """
    if isinstance(value, dict):
        return {_json_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    try:
        return _jsonable(float(value))
    except (TypeError, ValueError):
        return str(value)


def emit_bench_record(name: str, params: dict, series: dict) -> str:
    """Write one benchmark's results to ``benchmarks/results/BENCH_<name>.json``.

    ``params`` records what was run (dataset keys, workload shape,
    scale); ``series`` holds the per-series numbers keyed however the
    benchmark accumulated them (tuple keys are flattened to
    "a/b" strings).  Every record is self-describing — name, ISO
    timestamp, params — so runs can be diffed across commits.  Returns
    the path written.
    """
    record = {
        "name": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE"),
        "params": _jsonable(params),
        "series": _jsonable(series),
    }
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    return path
