"""Shared method registry and cached index builders for the benchmarks."""

from __future__ import annotations

from functools import lru_cache

from repro.bench import BEST_GRANULARITY, synthetic_dataset, tiger_dataset
from repro.block import BlockIndex
from repro.datasets import RectDataset
from repro.grid import OneLayerGrid
from repro.core import TwoLayerGrid, TwoLayerPlusGrid
from repro.quadtree import MXCIFQuadTree, QuadTree, TwoLayerQuadTree
from repro.rtree import RStarTree, RTree

__all__ = ["build_index", "get_index", "resolve_dataset", "KEY_METHODS", "ALL_METHODS"]

#: the five methods carried through Figs. 8-9 after the Table V cut.
KEY_METHODS = ("R-tree", "quad-tree", "1-layer", "2-layer", "2-layer+")

#: every Table V competitor.
ALL_METHODS = (
    "2-layer",
    "2-layer+",
    "1-layer",
    "quad-tree",
    "quad-tree-2layer",
    "R-tree",
    "R*-tree",
    "BLOCK",
    "MXCIF",
)


def build_index(method: str, data: RectDataset, granularity: int = BEST_GRANULARITY):
    """Construct a fresh index of the named method over ``data``."""
    if method == "1-layer":
        return OneLayerGrid.build(data, partitions_per_dim=granularity)
    if method == "2-layer":
        return TwoLayerGrid.build(data, partitions_per_dim=granularity)
    if method == "2-layer+":
        return TwoLayerPlusGrid.build(data, partitions_per_dim=granularity)
    if method == "quad-tree":
        return QuadTree.build(data)
    if method == "quad-tree-2layer":
        return TwoLayerQuadTree.build(data)
    if method == "R-tree":
        return RTree.build(data)
    if method == "R*-tree":
        return RStarTree.build(data)
    if method == "BLOCK":
        return BlockIndex.build(data)
    if method == "MXCIF":
        return MXCIFQuadTree.build(data)
    raise KeyError(f"unknown method {method!r}")


def resolve_dataset(dataset_key: str) -> RectDataset:
    """Dataset lookup shared with :mod:`repro.bench.workloads`."""
    if dataset_key in ("ROADS", "EDGES", "TIGER"):
        return tiger_dataset(dataset_key)
    _, n, area, distribution = dataset_key.split(":")
    return synthetic_dataset(int(n), float(area), distribution)


@lru_cache(maxsize=None)
def get_index(method: str, dataset_key: str, granularity: int = BEST_GRANULARITY):
    """Cached index: built once per process, shared across benchmarks."""
    return build_index(method, resolve_dataset(dataset_key), granularity)
