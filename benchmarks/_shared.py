"""Shared method registry, cached index builders and result emission."""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import socket
import subprocess
import time
from functools import lru_cache

import numpy as np

from repro.bench import BEST_GRANULARITY, synthetic_dataset, tiger_dataset
from repro.obs.trajectory import SCHEMA_VERSION, load_record as load_bench_record
from repro.block import BlockIndex
from repro.datasets import RectDataset
from repro.grid import OneLayerGrid
from repro.core import TwoLayerGrid, TwoLayerPlusGrid
from repro.quadtree import MXCIFQuadTree, QuadTree, TwoLayerQuadTree
from repro.rtree import RStarTree, RTree

__all__ = [
    "build_index",
    "get_index",
    "resolve_dataset",
    "emit_bench_record",
    "load_bench_record",
    "run_manifest",
    "KEY_METHODS",
    "ALL_METHODS",
]

#: the five methods carried through Figs. 8-9 after the Table V cut.
KEY_METHODS = ("R-tree", "quad-tree", "1-layer", "2-layer", "2-layer+")

#: every Table V competitor.
ALL_METHODS = (
    "2-layer",
    "2-layer+",
    "1-layer",
    "quad-tree",
    "quad-tree-2layer",
    "R-tree",
    "R*-tree",
    "BLOCK",
    "MXCIF",
)


def build_index(method: str, data: RectDataset, granularity: int = BEST_GRANULARITY):
    """Construct a fresh index of the named method over ``data``."""
    if method == "1-layer":
        return OneLayerGrid.build(data, partitions_per_dim=granularity)
    if method == "2-layer":
        return TwoLayerGrid.build(data, partitions_per_dim=granularity)
    if method == "2-layer+":
        return TwoLayerPlusGrid.build(data, partitions_per_dim=granularity)
    if method == "quad-tree":
        return QuadTree.build(data)
    if method == "quad-tree-2layer":
        return TwoLayerQuadTree.build(data)
    if method == "R-tree":
        return RTree.build(data)
    if method == "R*-tree":
        return RStarTree.build(data)
    if method == "BLOCK":
        return BlockIndex.build(data)
    if method == "MXCIF":
        return MXCIFQuadTree.build(data)
    raise KeyError(f"unknown method {method!r}")


def resolve_dataset(dataset_key: str) -> RectDataset:
    """Dataset lookup shared with :mod:`repro.bench.workloads`."""
    if dataset_key in ("ROADS", "EDGES", "TIGER"):
        return tiger_dataset(dataset_key)
    _, n, area, distribution = dataset_key.split(":")
    return synthetic_dataset(int(n), float(area), distribution)


@lru_cache(maxsize=None)
def get_index(method: str, dataset_key: str, granularity: int = BEST_GRANULARITY):
    """Cached index: built once per process, shared across benchmarks."""
    return build_index(method, resolve_dataset(dataset_key), granularity)


# -- run manifest --------------------------------------------------------------


def _git_sha() -> "str | None":
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@lru_cache(maxsize=None)
def _dataset_fingerprint() -> str:
    """Stable hash of the benchmark datasets at the active scale.

    Hashes a bounded sample of the ROADS stand-in (the dataset every
    benchmark leans on) so records produced from different generator
    code, seeds or scales never read as comparable.
    """
    try:
        data = tiger_dataset("ROADS")
    except Exception:  # pragma: no cover - generation failure
        return "unavailable"
    h = hashlib.sha256()
    h.update(str(len(data)).encode())
    sample = slice(0, 256)
    for arr in (data.xl, data.yl, data.xu, data.yu):
        h.update(np.ascontiguousarray(arr[sample]).tobytes())
    return h.hexdigest()[:16]


def run_manifest() -> dict:
    """Environment/provenance stamp attached to every benchmark record."""
    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE"),
        "bench_queries": os.environ.get("REPRO_BENCH_QUERIES"),
        "dataset_fingerprint": _dataset_fingerprint(),
    }


# -- machine-readable result emission -----------------------------------------


def _json_key(key) -> str:
    """Stringify a series key; tuple keys join with "/" (e.g. method/dataset)."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def _jsonable(value):
    """Recursively coerce benchmark values into strict-JSON types.

    Non-finite floats become ``null`` (strict JSON has no NaN/inf) and
    numpy scalars collapse to Python numbers.
    """
    if isinstance(value, dict):
        return {_json_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    try:
        return _jsonable(float(value))
    except (TypeError, ValueError):
        return str(value)


def emit_bench_record(name: str, params: dict, series: dict) -> str:
    """Write one benchmark's results to ``benchmarks/results/BENCH_<name>.json``.

    ``params`` records what was run (dataset keys, workload shape,
    scale); ``series`` holds the per-series numbers keyed however the
    benchmark accumulated them (tuple keys are flattened to
    "a/b" strings).  Every record is self-describing — name, ISO
    timestamp, params, schema version and run manifest (git SHA,
    interpreter, hostname, dataset fingerprint) — so runs can be diffed
    across commits and machines by ``benchmarks/compare.py``.  Returns
    the path written.
    """
    record = {
        "name": name,
        "schema": SCHEMA_VERSION,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE"),
        "manifest": _jsonable(run_manifest()),
        "params": _jsonable(params),
        "series": _jsonable(series),
    }
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    return path
