"""Benchmark-suite plumbing.

Each benchmark registers the paper-style table/series it produced via
:func:`report`; a terminal-summary hook prints everything after the
pytest-benchmark statistics, so ``pytest benchmarks/ --benchmark-only``
emits both machine stats and the rows/series to compare against the
paper (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import io
from contextlib import redirect_stdout

_REPORTS: list[str] = []


def report(render) -> None:
    """Capture the output of ``render()`` (a printing thunk) for the
    end-of-run summary."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        render()
    _REPORTS.append(buffer.getvalue())


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.section("paper-style experiment reports")
    for text in _REPORTS:
        terminalreporter.write(text)
