"""Table V — window-query throughput of every compared method.

Paper: 10K window queries of 0.1% relative area on ROADS and EDGES;
throughput (queries/sec) per method.  Expected ordering:
``2-layer(+)`` > ``quad-tree, 2-layer`` > ``1-layer`` ≈ ``quad-tree`` >
``R-tree`` > ``R*-tree`` ≫ ``MXCIF`` ≫ ``BLOCK``, with 2-layer at least
2x over 1-layer.
"""

from __future__ import annotations

import pytest

from repro.bench import print_table, throughput, window_workload

from _shared import ALL_METHODS, emit_bench_record, get_index
from conftest import report

#: slow structural baselines get a reduced workload (they are orders of
#: magnitude off; the paper reports them as "<1" and "8" queries/sec).
_SLOW = {"BLOCK": 30, "MXCIF": 30}
_RESULTS: dict[tuple[str, str], float] = {}


def _queries(dataset: str, method: str):
    ws = window_workload(dataset, 0.1)
    limit = _SLOW.get(method)
    return ws[:limit] if limit else ws


@pytest.mark.parametrize("dataset", ["ROADS", "EDGES"])
@pytest.mark.parametrize("method", ALL_METHODS)
def test_table5_window_throughput(benchmark, dataset, method):
    index = get_index(method, dataset)
    queries = _queries(dataset, method)

    def run():
        for w in queries:
            index.window_query(w)

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    # best-of-3 keeps the recorded series stable enough for the
    # regression gate (benchmarks/compare.py) across reruns.
    timed = throughput(index.window_query, queries, repeats=3)
    _RESULTS[(method, dataset)] = timed.qps


def test_table5_report(benchmark):
    """Assemble and register the Table V analogue (runs last)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep --benchmark-only happy
    rows = [
        [
            method,
            _RESULTS.get((method, "ROADS"), float("nan")),
            _RESULTS.get((method, "EDGES"), float("nan")),
        ]
        for method in ALL_METHODS
    ]
    report(
        lambda: print_table(
            "Table V — throughput [queries/sec], window queries (0.1% area)",
            ["method", "ROADS", "EDGES"],
            rows,
        )
    )
    emit_bench_record(
        "table5_throughput",
        {
            "datasets": ["ROADS", "EDGES"],
            "window_area_pct": 0.1,
            "methods": list(ALL_METHODS),
            "reduced_workloads": _SLOW,
        },
        {"qps": _RESULTS},
    )
    # Shape assertions (the paper's qualitative claims).
    for dataset in ("ROADS", "EDGES"):
        two = _RESULTS[("2-layer", dataset)]
        one = _RESULTS[("1-layer", dataset)]
        rtree = _RESULTS[("R-tree", dataset)]
        assert two > one, "2-layer must beat the 1-layer baseline"
        assert two > rtree, "2-layer must beat the best DOP index"
        assert _RESULTS[("quad-tree-2layer", dataset)] > _RESULTS[
            ("quad-tree", dataset)
        ], "secondary partitioning must also boost the quad-tree"
        # The structural baselines must lose clearly to the contribution.
        # (Our BLOCK stand-in is honest 2D code, so unlike the paper's
        # 3D-oriented original it can rival the 1-layer grid; the stable
        # claim is that it never approaches the 2-layer index.)
        assert _RESULTS[("BLOCK", dataset)] < two / 3
        assert _RESULTS[("MXCIF", dataset)] < rtree
