"""Extension benchmarks — spatial joins and kNN (the paper's future work).

Not a paper table/figure: the conclusions list spatial joins and
nearest-neighbour queries over two-layer SOP indices as future work, and
this repo implements both (:mod:`repro.core.join`, :mod:`repro.core.knn`).
The join benchmark mirrors the window-query story: class-based duplicate
*avoidance* (9 allowed class combinations) vs reference-point duplicate
*elimination* on the same grid partitioning.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import print_table, tiger_dataset
from repro.core import (
    knn_query,
    one_layer_spatial_join,
    two_layer_spatial_join,
)
from repro.datasets import generate_uniform_rects

from _shared import emit_bench_record, get_index
from conftest import report

_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="module")
def join_inputs():
    r = generate_uniform_rects(40_000, area=1e-7, seed=201)
    s = generate_uniform_rects(40_000, area=1e-7, seed=202)
    return r, s


@pytest.mark.parametrize(
    "variant",
    ["2-layer (avoidance)", "2-layer (sweep)", "1-layer (refpoint)"],
)
def test_ext_spatial_join(benchmark, join_inputs, variant):
    r, s = join_inputs
    if variant == "1-layer (refpoint)":
        join = lambda: one_layer_spatial_join(r, s, partitions_per_dim=64)
    elif variant == "2-layer (sweep)":
        join = lambda: two_layer_spatial_join(
            r, s, partitions_per_dim=64, algorithm="sweep"
        )
    else:
        join = lambda: two_layer_spatial_join(r, s, partitions_per_dim=64)

    def run():
        t0 = time.perf_counter()
        pairs = join()
        _RESULTS[f"join {variant}"] = time.perf_counter() - t0
        return pairs

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.setdefault("join pairs", float(pairs.shape[0]))


def test_ext_knn(benchmark):
    data = tiger_dataset("ROADS")
    grid_index = get_index("2-layer", "ROADS")
    rtree_index = get_index("R-tree", "ROADS")
    rng = np.random.default_rng(203)
    points = rng.random((200, 2))

    def run():
        t0 = time.perf_counter()
        for cx, cy in points:
            knn_query(grid_index, data, float(cx), float(cy), 10)
        _RESULTS["knn 2-layer grid k=10 [q/s]"] = len(points) / (
            time.perf_counter() - t0
        )
        t0 = time.perf_counter()
        for cx, cy in points:
            rtree_index.knn_query(float(cx), float(cy), 10)
        _RESULTS["knn R-tree best-first k=10 [q/s]"] = len(points) / (
            time.perf_counter() - t0
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("strategy", ["queries", "tiles"])
def test_ext_disk_batch(benchmark, strategy):
    """Batch disk queries (Section VI applied to §IV-E) — extension."""
    import time

    from repro.bench import disk_workload
    from repro.core import (
        evaluate_disk_queries_based,
        evaluate_disk_tiles_based,
    )

    index = get_index("2-layer", "ROADS")
    batch = list(disk_workload("ROADS", 0.1)[:1000])
    evaluator = (
        evaluate_disk_queries_based
        if strategy == "queries"
        else evaluate_disk_tiles_based
    )

    def run():
        t0 = time.perf_counter()
        evaluator(index, batch)
        _RESULTS[f"disk batch {strategy}-based [s]"] = time.perf_counter() - t0

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_ext_within_predicate(benchmark):
    """'within' window semantics: class-A-only scan — extension."""
    from repro.bench import window_workload
    from repro.bench import throughput as run_throughput

    index = get_index("2-layer", "ROADS")
    queries = window_workload("ROADS", 0.1)[:1000]

    def run():
        for w in queries:
            index.window_query_within(w)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS["within-predicate windows [q/s]"] = run_throughput(
        index.window_query_within, queries
    ).qps


def test_ext_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report(
        lambda: print_table(
            "Extensions — joins, kNN, disk batches, within-predicate",
            ["metric", "value"],
            [[k, v] for k, v in sorted(_RESULTS.items())],
        )
    )
    emit_bench_record(
        "ext_join_knn",
        {"dataset": "ROADS"},
        {"metrics": _RESULTS},
    )
    assert _RESULTS["join 2-layer (avoidance)"] < _RESULTS["join 1-layer (refpoint)"], (
        "class-combo join must beat reference-point join"
    )
