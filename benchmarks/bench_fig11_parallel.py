"""Fig. 11 — parallel batch processing speedup vs worker count.

Paper: 10K-query batches on ROADS and EDGES, speedup over 1 thread as a
function of thread count (OpenMP, up to 40 hyperthreads).  This port
uses forked worker processes (GIL; DESIGN.md substitution 5) behind a
*persistent* pool — the process analogue of OpenMP's pre-existing thread
team — warmed up before the timed region.  Expected shape on a
multi-core machine: tiles-based scales more gracefully with workers than
queries-based.  On a single-core machine (CI containers) the speedup
curve physically degenerates to <= 1; the report records the machine's
core count so the numbers are interpretable.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import bench_query_count, print_series, window_workload
from repro.core import ParallelBatchEvaluator, available_workers

from _shared import emit_bench_record, get_index
from conftest import report

_WORKER_COUNTS = (1, 2, 4)
_RESULTS: dict[tuple, float] = {}


@pytest.mark.parametrize("dataset", ["ROADS", "EDGES"])
@pytest.mark.parametrize("strategy", ["queries", "tiles"])
def test_fig11_parallel_speedup(benchmark, dataset, strategy):
    index = get_index("2-layer", dataset)
    batch = list(window_workload(dataset, 1.0)[: bench_query_count()])

    def run():
        for workers in _WORKER_COUNTS:
            with ParallelBatchEvaluator(index, workers) as pool:
                pool.run(batch[:50], method=strategy)  # warm the workers
                t0 = time.perf_counter()
                pool.run(batch, method=strategy)
                _RESULTS[(dataset, strategy, workers)] = time.perf_counter() - t0

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig11_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cores = available_workers()

    def render():
        for dataset in ("ROADS", "EDGES"):
            print_series(
                f"Fig. 11 ({dataset}) — speedup over 1 worker vs #workers "
                f"(machine has {cores} core(s))",
                "#workers",
                _WORKER_COUNTS,
                {
                    s: [
                        _RESULTS[(dataset, s, 1)] / _RESULTS[(dataset, s, w)]
                        for w in _WORKER_COUNTS
                    ]
                    for s in ("queries", "tiles")
                },
            )

    report(render)
    emit_bench_record(
        "fig11_parallel",
        {
            "datasets": ["ROADS", "EDGES"],
            "worker_counts": list(_WORKER_COUNTS),
            "strategies": ["queries", "tiles"],
            "machine_cores": cores,
        },
        {"batch_time_s": _RESULTS},
    )
    if cores > 1:
        top = max(w for w in _WORKER_COUNTS if w <= cores)
        for dataset in ("ROADS", "EDGES"):
            speedup_tiles = _RESULTS[(dataset, "tiles", 1)] / _RESULTS[
                (dataset, "tiles", top)
            ]
            assert speedup_tiles > 1.0, "tiles-based must profit from workers"
