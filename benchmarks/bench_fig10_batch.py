"""Fig. 10 — batch window-query processing: queries-based vs tiles-based.

Paper: batches of 10K window queries over ROADS and EDGES, total batch
time as a function of query relative extent.  Expected shape:
tiles-based wins when per-tile work is substantial (large/denser
batches, larger queries); queries-based wins when the per-tile subtask
accounting does not pay off (tiny queries / sparse tiles).
"""

from __future__ import annotations

import time

import pytest

from repro.bench import bench_query_count, print_series, window_workload
from repro.core import evaluate_queries_based, evaluate_tiles_based

from _shared import emit_bench_record, get_index
from conftest import report

_EXTENTS = (0.01, 0.05, 0.1, 0.5, 1.0)
_RESULTS: dict[tuple, float] = {}


@pytest.mark.parametrize("dataset", ["ROADS", "EDGES"])
@pytest.mark.parametrize("strategy", ["queries", "tiles"])
def test_fig10_batch_total_time(benchmark, dataset, strategy):
    index = get_index("2-layer", dataset)
    evaluator = (
        evaluate_queries_based if strategy == "queries" else evaluate_tiles_based
    )
    n = bench_query_count()

    def run():
        for extent in _EXTENTS:
            batch = list(window_workload(dataset, extent)[:n])
            t0 = time.perf_counter()
            evaluator(index, batch)
            _RESULTS[(dataset, strategy, extent)] = time.perf_counter() - t0

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig10_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def render():
        for dataset in ("ROADS", "EDGES"):
            print_series(
                f"Fig. 10 ({dataset}) — total batch time [sec] vs query extent [%]"
                f" ({bench_query_count()} queries/batch)",
                "extent%",
                _EXTENTS,
                {
                    s: [_RESULTS[(dataset, s, e)] for e in _EXTENTS]
                    for s in ("queries", "tiles")
                },
            )

    report(render)
    emit_bench_record(
        "fig10_batch",
        {
            "datasets": ["ROADS", "EDGES"],
            "extents_pct": list(_EXTENTS),
            "strategies": ["queries", "tiles"],
        },
        {"batch_time_s": _RESULTS},
    )
    # Shape: tiles-based becomes competitive/better as the extent grows
    # (denser per-tile work), per the paper's observation.  Only checked
    # above noise level — sub-100ms batches are dominated by jitter.
    for dataset in ("ROADS", "EDGES"):
        if _RESULTS[(dataset, "queries", 1.0)] < 0.1:
            continue
        ratio_small = (
            _RESULTS[(dataset, "tiles", 0.01)] / _RESULTS[(dataset, "queries", 0.01)]
        )
        ratio_large = (
            _RESULTS[(dataset, "tiles", 1.0)] / _RESULTS[(dataset, "queries", 1.0)]
        )
        assert ratio_large < ratio_small * 2.0, (
            "tiles-based must gain ground as batches get denser"
        )
