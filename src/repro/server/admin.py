"""Runtime exposition for a live server: metrics HTTP + top console.

Two operator-facing front-ends over the serving telemetry:

* :class:`MetricsHTTPServer` — a tiny stdlib HTTP listener (daemon
  thread, ``ThreadingHTTPServer``) serving the service's
  :class:`~repro.obs.metrics.MetricsRegistry` as Prometheus text at
  ``GET /metrics`` (plus ``/healthz``).  Started by
  :meth:`~repro.server.service.SpatialQueryService.start` when
  ``ServerConfig.metrics_port`` is set; the registry is thread-safe, so
  scrapes never touch the event loop.
* :func:`run_top` — the ``python -m repro --top HOST:PORT`` live console:
  polls the ``stats`` and ``heatmap`` verbs over the NDJSON protocol and
  renders qps, per-verb latency quantiles, queue/batch gauges and the
  top-K hot tiles, refreshing in place like ``top(1)``.
"""

from __future__ import annotations

import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Thread
from typing import TextIO

from repro.obs.export import to_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.server.client import SpatialClient

__all__ = ["MetricsHTTPServer", "run_top"]


class _MetricsHandler(BaseHTTPRequestHandler):
    """GET-only handler; the registry hangs off the server instance."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] == "/metrics":
            body = to_prometheus_text(self.server.registry).encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
        elif self.path == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        else:
            body = b"not found; try /metrics\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Scrapes are high-frequency noise; keep stderr clean."""


class _RegistryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, addr: tuple[str, int], registry: MetricsRegistry):
        super().__init__(addr, _MetricsHandler)
        self.registry = registry


class MetricsHTTPServer:
    """Prometheus text endpoint on a daemon thread.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction (the socket is bound in ``__init__``, so the port is
    known before :meth:`start`).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._httpd = _RegistryHTTPServer((host, port), registry)
        self._thread: "Thread | None" = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None


# -- live console (`python -m repro --top`) -------------------------------


def _fmt_ms(value: "float | None") -> str:
    return "-" if value is None else f"{value:8.2f}"


def _render(
    stats: dict,
    heat: "dict | None",
    qps: "float | None",
    address: str,
    top_k: int,
) -> str:
    metrics = stats.get("metrics", {})
    lines = [
        f"repro --top {address}    "
        f"snapshot={stats.get('snapshot', '?')}  "
        f"uptime={stats.get('uptime_s', 0.0):.0f}s  "
        f"telemetry={'on' if stats.get('telemetry') else 'off'}",
        (
            f"qps={'-' if qps is None else f'{qps:.1f}'}  "
            f"requests={metrics.get('server.requests', 0):.0f}  "
            f"connections={metrics.get('server.connections', 0):.0f}  "
            f"queue_depth={metrics.get('server.queue_depth', 0):.0f}  "
            f"batch_mean={metrics.get('server.batch_size.mean', 0.0):.1f}  "
            f"rejected={metrics.get('server.rejected', 0):.0f}"
        ),
        "",
        f"{'verb':<10} {'count':>9} {'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9}",
    ]
    prefix, suffix = "server.latency_ms.", ".count"
    verbs = set()
    for key in metrics:
        if key.startswith(prefix) and key.endswith(suffix):
            verb = key[len(prefix):-len(suffix)]
            # skip the base histogram's own ".count" expansion ("") and
            # any nested expansions — per-verb names are a single token
            if verb and "." not in verb:
                verbs.add(verb)
    for verb in sorted(verbs):
        base = f"server.latency_ms.{verb}"
        count = metrics.get(f"{base}.count", 0)
        if not count:
            continue
        lines.append(
            f"{verb:<10} {count:>9.0f}"
            f" {_fmt_ms(metrics.get(f'{base}.p50'))}"
            f" {_fmt_ms(metrics.get(f'{base}.p95'))}"
            f" {_fmt_ms(metrics.get(f'{base}.p99'))}"
        )
    shards = stats.get("shards")
    if shards:
        lines += [
            "",
            (
                f"shards={shards.get('count', 0)}  "
                f"local_epoch={shards.get('local_epoch', '?')}  "
                f"degraded={metrics.get('server.errors.degraded', 0):.0f}  "
                f"epoch_mismatch="
                f"{metrics.get('server.shard.epoch_mismatch', 0):.0f}"
            ),
            f"{'shard':>5} {'state':>6} {'epoch':>6} {'tiles':>15} "
            f"{'pid':>8} {'requests':>10} {'batches':>9}",
        ]
        dead = set(shards.get("dead", []))
        bands = shards.get("bands", [])
        pids = shards.get("pids", [])
        epochs = shards.get("epochs", [])
        for k in range(int(shards.get("count", 0))):
            tiles = (
                f"[{bands[k][0]},{bands[k][1]})" if k < len(bands) else "?"
            )
            lines.append(
                f"{k:>5} {'DEAD' if k in dead else 'live':>6} "
                f"{epochs[k] if k < len(epochs) else '?':>6} "
                f"{tiles:>15} "
                f"{pids[k] if k < len(pids) else '?':>8} "
                f"{metrics.get(f'server.shard.{k}.requests', 0):>10.0f} "
                f"{metrics.get(f'server.shard.{k}.batches', 0):>9.0f}"
            )
    if heat is not None:
        lines += [
            "",
            f"hot tiles (top {top_k}, decayed; "
            f"{heat.get('tiles_hot', 0)} tiles warm):",
            f"{'tile':>6} {'ix':>4} {'iy':>4} {'scans':>10} "
            f"{'rows':>12} {'avoided':>12}",
        ]
        for tile in heat.get("tiles", [])[:top_k]:
            lines.append(
                f"{tile['tile']:>6} {tile['ix']:>4} {tile['iy']:>4} "
                f"{tile['scans']:>10.1f} {tile['rows']:>12.1f} "
                f"{tile['avoided']:>12.1f}"
            )
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    interval_s: float = 2.0,
    iterations: "int | None" = None,
    top_k: int = 10,
    out: "TextIO | None" = None,
    clear: bool = True,
) -> None:
    """Poll a live server and render a ``top(1)``-style console view.

    ``iterations=None`` runs until interrupted; pass a count for
    scripted/CI use.  ``clear=False`` suppresses the ANSI home/clear
    prefix (useful when piping to a file).
    """
    stream = out if out is not None else sys.stdout
    address = f"{host}:{port}"
    last_requests: "float | None" = None
    last_t: "float | None" = None
    done = 0
    with SpatialClient(host, port) as client:
        while iterations is None or done < iterations:
            stats = client.stats()
            heat = None
            if stats.get("telemetry"):
                heat = client.heatmap(top=top_k)
            now = time.perf_counter()
            requests = stats.get("metrics", {}).get("server.requests", 0.0)
            qps = None
            if last_t is not None and now > last_t:
                qps = max(requests - last_requests, 0.0) / (now - last_t)
            last_requests, last_t = requests, now
            if clear:
                stream.write("\x1b[2J\x1b[H")
            stream.write(_render(stats, heat, qps, address, top_k) + "\n")
            stream.flush()
            done += 1
            if iterations is None or done < iterations:
                time.sleep(interval_s)
