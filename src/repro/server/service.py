"""The asyncio query service: admission, batching, writes, shutdown.

Data flow::

    client ──line──> _handle_conn ──try_submit──> MicroBatcher ─┐
                         │  (reject: overloaded)                │ batch
                         ├──────────> write queue ──> writer    ▼
                         │                    task   _execute_batch
                         <──send queue (per-conn, ──────┘   (one snapshot)
                            write-timeout bounded)

Reads are admitted into the bounded :class:`MicroBatcher` queue and
executed in micro-batches against one :class:`Snapshot`; ``insert`` /
``delete`` are serialised onto a single writer task that publishes new
snapshots atomically.  Every stage records into a ``server.*`` metrics
namespace on a :class:`MetricsRegistry` (exposed over the wire by the
``stats`` verb) and runs under tracing spans, so a profiling session
sees the server the way it sees the in-process engine.

Overload never blocks the event loop: full queues answer ``overloaded``
with a retry-after hint, slow consumers are disconnected by the
per-connection write timeout, and SIGTERM (via :meth:`run`) drains
in-flight requests before the process exits.
"""

from __future__ import annotations

import asyncio
import itertools
import signal
import time
from typing import Callable
from dataclasses import dataclass

from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import InvalidQueryError, ProtocolError, ReproError
from repro.geometry.mbr import Rect
from repro.core.batch import evaluate_disk_tiles_based, evaluate_tiles_based
from repro.core.knn import knn_query
from repro.core.two_layer import TwoLayerGrid
from repro.obs import tracing as _tracing
from repro.obs.live import LiveTelemetry
from repro.obs.metrics import MetricsRegistry
from repro.server.batcher import MicroBatcher, PendingRequest
from repro.server.protocol import (
    PROTOCOL_VERSION,
    VERBS,
    WRITE_VERBS,
    Request,
    decode_request,
    encode_error,
    encode_response,
)
from repro.server.snapshot import Snapshot, SnapshotStore

__all__ = ["ServerConfig", "SpatialQueryService"]


@dataclass
class ServerConfig:
    """Tunables for one service instance (see docs/serving.md)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: admission-control depth of the read queue (requests, not bytes).
    queue_depth: int = 128
    #: maximum requests coalesced into one micro-batch.
    max_batch: int = 64
    #: how long a batch stays open after its first request [ms].
    coalesce_ms: float = 2.0
    #: admission-control depth of the serialised write queue.
    write_queue_depth: int = 64
    #: hint sent with ``overloaded`` errors; None = 2x coalesce window.
    retry_after_ms: "int | None" = None
    #: per-connection timeout for draining a response write [s].
    write_timeout_s: float = 5.0
    #: per-connection outgoing response queue depth (slow-consumer cap).
    send_queue_depth: int = 256
    #: how long shutdown waits for in-flight requests to finish [s].
    drain_timeout_s: float = 10.0
    #: maximum request line length [bytes].
    max_line_bytes: int = 1 << 20
    #: live telemetry master switch: request traces, per-verb latency
    #: histograms, tile heat, slow-query capture, admin verbs.
    telemetry: bool = True
    #: capacity of the finished-trace ring (``traces`` verb).
    trace_ring: int = 256
    #: requests slower than this are captured in the slow-query log [ms].
    slowlog_ms: float = 100.0
    #: capacity of the slow-query log ring (``slowlog`` verb).
    slowlog_ring: int = 128
    #: tile-heat exponential-decay half life [s]; 0 disables decay.
    heat_half_life_s: float = 600.0
    #: feed kernel QueryStats into the heat map on 1-in-N batches only.
    #: Stats-threaded kernels give up the stats-free fast path, so this
    #: is the dominant telemetry cost; 1-in-32 keeps the heat map fed
    #: (thousands of samples per decay half-life at serving rates) while
    #: staying inside the 3% serving overhead budget.
    heat_sample: int = 32
    #: retain 1-in-N *untraced* requests in the trace ring (client-traced
    #: and over-threshold requests are always retained).
    trace_sample: int = 16
    #: serve Prometheus text on this HTTP port when set (0 = ephemeral).
    metrics_port: "int | None" = None
    #: bind host for the metrics listener.
    metrics_host: str = "127.0.0.1"

    def effective_retry_after_ms(self) -> int:
        if self.retry_after_ms is not None:
            return self.retry_after_ms
        return max(int(2 * self.coalesce_ms), 10)


#: transport write-buffer level above which responses stop taking the
#: direct-write fast path and go through the sender task (drain timeout).
_DIRECT_WRITE_HIGHWATER = 1 << 16


class _Connection:
    """One client connection: reader side plus a bounded sender task."""

    __slots__ = ("service", "reader", "writer", "send_q", "sender", "aborted")

    def __init__(self, service: "SpatialQueryService", reader, writer):
        self.service = service
        self.reader = reader
        self.writer = writer
        self.send_q: "asyncio.Queue[bytes | None]" = asyncio.Queue(
            maxsize=service.config.send_queue_depth
        )
        self.aborted = False
        self.sender = asyncio.ensure_future(self._send_loop())

    def send(self, payload: bytes) -> bool:
        """Enqueue a response; a full queue marks the consumer slow and
        aborts the connection (backpressure never buffers unboundedly).

        Fast path: while the transport's write buffer is comfortably
        below the high-water mark and nothing is queued behind the
        sender, the frame is written straight to the transport —
        ``Transport.write`` never blocks, and skipping the queue avoids
        a sender-task wakeup per response.  A slow consumer grows the
        buffer past the mark, which diverts frames back through the
        sender task where the drain timeout applies.
        """
        if self.aborted:
            return False
        if self.send_q.empty():
            transport = self.writer.transport
            if (
                transport is not None
                and not transport.is_closing()
                and transport.get_write_buffer_size() < _DIRECT_WRITE_HIGHWATER
            ):
                self.writer.write(payload)
                return True
        try:
            self.send_q.put_nowait(payload)
        except asyncio.QueueFull:
            self.service.registry.counter("server.slow_consumer_drops").inc()
            self.abort()
            return False
        return True

    def abort(self) -> None:
        self.aborted = True
        try:
            self.send_q.put_nowait(None)
        except asyncio.QueueFull:
            # sender will notice `aborted` after the current drain
            pass

    async def _send_loop(self) -> None:
        cfg = self.service.config
        try:
            while True:
                payload = await self.send_q.get()
                if payload is None or self.aborted:
                    break
                self.writer.write(payload)
                try:
                    await asyncio.wait_for(
                        self.writer.drain(), cfg.write_timeout_s
                    )
                except asyncio.TimeoutError:
                    self.service.registry.counter(
                        "server.write_timeouts"
                    ).inc()
                    self.aborted = True
                    break
                except (ConnectionError, OSError):
                    self.aborted = True
                    break
        finally:
            self.aborted = True
            try:
                self.writer.close()
            except Exception:
                pass

    async def flush_close(self) -> None:
        """Send everything queued, then close the transport."""
        try:
            self.send_q.put_nowait(None)
        except asyncio.QueueFull:
            self.aborted = True
        try:
            await self.sender
        except asyncio.CancelledError:  # pragma: no cover - teardown race
            pass


class _BatchCtx:
    """Per-batch telemetry scalars shared by every member's trace.

    Built once per micro-batch when telemetry is on; phase dicts are
    assembled lazily from these scalars only for requests that are
    actually retained (client-traced, slow, or ring-sampled), so the
    per-request hot-path cost stays a few float reads.
    """

    __slots__ = ("t_exec", "pin_ms", "kernel_ms", "snapshot", "batch_size", "stats")

    def __init__(
        self,
        t_exec: float,
        pin_ms: float,
        snapshot: int,
        batch_size: int,
        stats,
    ):
        self.t_exec = t_exec
        self.pin_ms = pin_ms
        self.kernel_ms = 0.0  # set by each execution group before responding
        self.snapshot = snapshot
        self.batch_size = batch_size
        self.stats = stats  # HeatStats on sampled batches, else None


class SpatialQueryService:
    """Serve window/disk/kNN/count/insert/delete/describe/explain/stats
    over a snapshot-isolated two-layer grid, with live telemetry
    (``heatmap``/``slowlog``/``traces`` verbs) when enabled."""

    def __init__(
        self,
        index: TwoLayerGrid,
        data: RectDataset,
        config: "ServerConfig | None" = None,
        registry: "MetricsRegistry | None" = None,
    ):
        self.config = config or ServerConfig()
        self.store = SnapshotStore(index, data)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = _tracing.Tracer()
        self.batcher = MicroBatcher(
            queue_depth=self.config.queue_depth,
            max_batch=self.config.max_batch,
            coalesce_ms=self.config.coalesce_ms,
        )
        self._write_q: "asyncio.Queue[PendingRequest | None]" = asyncio.Queue(
            maxsize=self.config.write_queue_depth
        )
        self._server: "asyncio.base_events.Server | None" = None
        self._batch_task: "asyncio.Task | None" = None
        self._writer_task: "asyncio.Task | None" = None
        self._conns: set[_Connection] = set()
        self._in_flight = 0
        self._draining = False
        self._stop_requested = asyncio.Event()
        self._stopped = asyncio.Event()
        # hot-path instrument handles, resolved once (the registry's
        # get-or-create path takes a lock per lookup — too much per request)
        self._m_requests = self.registry.counter("server.requests")
        self._m_queue_depth = self.registry.gauge("server.queue_depth")
        self._m_batch_size = self.registry.histogram("server.batch_size")
        self._m_latency = self.registry.histogram("server.latency_ms")
        self._m_verbs = {
            verb: self.registry.counter(f"server.requests.{verb}")
            for verb in VERBS
        }
        self._t_start = time.perf_counter()
        self._trace_seq = itertools.count(1)
        self._heat_tick = 0
        self._trace_tick = 0
        self.metrics_http = None  # set by start() when metrics_port is set
        self.telemetry: "LiveTelemetry | None" = None
        self._m_verb_latency = {}
        if self.config.telemetry:
            self.telemetry = LiveTelemetry(
                index.grid.nx,
                index.grid.ny,
                trace_capacity=self.config.trace_ring,
                slowlog_capacity=self.config.slowlog_ring,
                slowlog_ms=self.config.slowlog_ms,
                half_life_s=self.config.heat_half_life_s,
            )
            self._m_verb_latency = {
                verb: self.registry.histogram(f"server.latency_ms.{verb}")
                for verb in VERBS
            }
            tel = self.telemetry
            self.registry.register_source(
                "server.live",
                lambda: {
                    "traces_retained": float(len(tel.traces)),
                    "slowlog_captured": float(tel.slowlog.total),
                    "heat_visits": float(tel.heat.total_visits),
                },
            )

    # -- lifecycle --------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
            limit=self.config.max_line_bytes,
        )
        if self.config.metrics_port is not None:
            from repro.server.admin import MetricsHTTPServer

            self.metrics_http = MetricsHTTPServer(
                self.registry,
                host=self.config.metrics_host,
                port=self.config.metrics_port,
            )
            self.metrics_http.start()
        self._batch_task = asyncio.ensure_future(self._batch_loop())
        self._writer_task = asyncio.ensure_future(self._writer_loop())

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger (drains before stopping)."""
        self._stop_requested.set()

    async def run(
        self, ready: "Callable[[SpatialQueryService], None] | None" = None
    ) -> None:
        """Start, install SIGTERM/SIGINT drain handlers, serve until a
        shutdown is requested, then drain and stop."""
        await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            if ready is not None:
                ready(self)
            await self._stop_requested.wait()
            await self.shutdown()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, close connections."""
        if self._stopped.is_set():
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout_s
        while self._in_flight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        self.batcher.close()
        try:
            self._write_q.put_nowait(None)
        except asyncio.QueueFull:  # pragma: no cover - drained above
            pass
        for task in (self._batch_task, self._writer_task):
            if task is not None:
                try:
                    await asyncio.wait_for(task, 5.0)
                except asyncio.TimeoutError:  # pragma: no cover
                    task.cancel()
        for conn in list(self._conns):
            await conn.flush_close()
        if self.metrics_http is not None:
            self.metrics_http.stop()
        self._stopped.set()

    # -- connection handling ----------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        conn = _Connection(self, reader, writer)
        self._conns.add(conn)
        gauge = self.registry.gauge("server.connections")
        gauge.inc()
        try:
            while not conn.aborted:
                try:
                    line = await reader.readline()
                except ValueError:
                    # line exceeded the stream limit; cannot resync
                    conn.send(
                        encode_error(
                            None,
                            "bad_request",
                            f"request line over "
                            f"{self.config.max_line_bytes} bytes",
                        )
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                self._dispatch(line, conn)
        finally:
            self._conns.discard(conn)
            gauge.dec()
            await conn.flush_close()

    def _dispatch(self, line: bytes, conn: _Connection) -> None:
        self._m_requests.inc()
        try:
            req = decode_request(line)
        except ProtocolError as exc:
            self.registry.counter("server.errors.bad_request").inc()
            conn.send(
                encode_error(None, getattr(exc, "code", "bad_request"), str(exc))
            )
            return
        if self._draining:
            conn.send(
                encode_error(
                    req.id,
                    "shutting_down",
                    "server is draining; reconnect later",
                    trace=req.trace,
                )
            )
            return
        pending = PendingRequest(req, conn)
        if req.verb in WRITE_VERBS:
            try:
                self._write_q.put_nowait(pending)
            except asyncio.QueueFull:
                self._reject(req, conn)
                return
        else:
            if not self.batcher.try_submit(pending):
                self._reject(req, conn)
                return
        self._in_flight += 1

    def _reject(self, req: Request, conn: _Connection) -> None:
        self.registry.counter("server.rejected").inc()
        conn.send(
            encode_error(
                req.id,
                "overloaded",
                f"request queue full (depth {self.config.queue_depth})",
                retry_after_ms=self.config.effective_retry_after_ms(),
                trace=req.trace,
            )
        )

    # -- execution --------------------------------------------------------

    async def _batch_loop(self) -> None:
        while True:
            batch = await self.batcher.next_batch()
            if batch is None:
                return
            self._execute_batch(batch)

    def _execute_batch(self, batch: "list[PendingRequest]") -> None:
        t_exec = time.perf_counter()
        self._m_queue_depth.set(self.batcher.depth())
        self._m_batch_size.observe(len(batch))
        snap = self.store.current
        bctx: "_BatchCtx | None" = None
        if self.telemetry is not None:
            pin_ms = (time.perf_counter() - t_exec) * 1e3
            self._heat_tick += 1
            stats = (
                self.telemetry.stats
                if self._heat_tick % self.config.heat_sample == 0
                else None
            )
            bctx = _BatchCtx(t_exec, pin_ms, snap.version, len(batch), stats)
        meta = {"snapshot": snap.version, "batch_size": len(batch)}
        # Responses are aggregated per connection and flushed as one
        # write per connection after the batch — clients multiplexing
        # several in-flight requests over one connection get all their
        # answers in a single frame burst (and the kernel one syscall).
        out: dict[_Connection, list[bytes]] = {}

        window_group: list[tuple[PendingRequest, Rect, bool]] = []
        disk_group: list[tuple[PendingRequest, DiskQuery]] = []
        singles: list[PendingRequest] = []
        for pending in batch:
            req = pending.request
            try:
                if req.verb == "count" or (
                    req.verb == "window"
                    and req.args["predicate"] == "intersects"
                ):
                    window_group.append((pending, Rect(**{
                        k: req.args[k] for k in ("xl", "yl", "xu", "yu")
                    }), req.verb == "count"))
                elif req.verb == "disk":
                    disk_group.append(
                        (pending, DiskQuery(
                            req.args["cx"], req.args["cy"], req.args["radius"]
                        ))
                    )
                else:
                    singles.append(pending)
            except ReproError as exc:
                self._respond(
                    pending,
                    encode_error(
                        req.id, "invalid_query", str(exc), trace=req.trace
                    ),
                    out,
                )

        with _tracing.activate(self.tracer):
            with _tracing.span("server.batch"):
                if window_group:
                    self._run_window_group(snap, window_group, meta, out, bctx)
                if disk_group:
                    self._run_disk_group(snap, disk_group, meta, out, bctx)
                for pending in singles:
                    t0 = time.perf_counter()
                    result, err = self._execute_single(
                        snap,
                        pending.request,
                        None if bctx is None else bctx.stats,
                    )
                    if bctx is not None:
                        bctx.kernel_ms = (time.perf_counter() - t0) * 1e3
                    if err is not None:
                        self._respond(pending, err, out)
                    else:
                        self._deliver(pending, result, meta, out, bctx)

        for conn, frames in out.items():
            conn.send(frames[0] if len(frames) == 1 else b"".join(frames))

    def _run_window_group(
        self,
        snap: Snapshot,
        group: "list[tuple[PendingRequest, Rect, bool]]",
        meta: dict,
        out: "dict[_Connection, list[bytes]]",
        bctx: "_BatchCtx | None",
    ) -> None:
        """Window-intersects and count queries share one tiles-based
        evaluation; count responses just skip materialising the ids."""
        windows = [w for _, w, _ in group]
        try:
            t0 = time.perf_counter()
            with _tracing.span("server.window"):
                results = evaluate_tiles_based(
                    snap.index,
                    windows,
                    None if bctx is None else bctx.stats,
                )
        except Exception as exc:  # pragma: no cover - engine invariant
            for pending, _, _ in group:
                self._respond(
                    pending,
                    encode_error(
                        pending.request.id,
                        "internal",
                        repr(exc),
                        trace=pending.request.trace,
                    ),
                    out,
                )
            return
        if bctx is not None:
            # One fused evaluation serves the whole group; its duration
            # is each member's kernel phase (meta carries batch_size).
            bctx.kernel_ms = (time.perf_counter() - t0) * 1e3
        for (pending, _, count_only), ids in zip(group, results):
            if count_only:
                result = {"count": int(ids.shape[0])}
            else:
                result = {"ids": ids.tolist(), "count": int(ids.shape[0])}
            self._deliver(pending, result, meta, out, bctx)

    def _run_disk_group(
        self,
        snap: Snapshot,
        group: "list[tuple[PendingRequest, DiskQuery]]",
        meta: dict,
        out: "dict[_Connection, list[bytes]]",
        bctx: "_BatchCtx | None",
    ) -> None:
        queries = [q for _, q in group]
        try:
            t0 = time.perf_counter()
            with _tracing.span("server.disk"):
                results = evaluate_disk_tiles_based(
                    snap.index,
                    queries,
                    None if bctx is None else bctx.stats,
                )
        except Exception as exc:  # pragma: no cover - engine invariant
            for pending, _ in group:
                self._respond(
                    pending,
                    encode_error(
                        pending.request.id,
                        "internal",
                        repr(exc),
                        trace=pending.request.trace,
                    ),
                    out,
                )
            return
        if bctx is not None:
            bctx.kernel_ms = (time.perf_counter() - t0) * 1e3
        for (pending, _), ids in zip(group, results):
            self._deliver(
                pending,
                {"ids": ids.tolist(), "count": int(ids.shape[0])},
                meta,
                out,
                bctx,
            )

    def _execute_single(
        self, snap: Snapshot, req: Request, stats=None
    ) -> "tuple[dict | None, bytes | None]":
        """Run one unbatched verb; returns ``(result, None)`` on success
        or ``(None, encoded error frame)`` on failure."""
        try:
            with _tracing.span(f"server.{req.verb}"):
                return self._run_verb(snap, req, stats), None
        except (InvalidQueryError, ProtocolError) as exc:
            return None, encode_error(
                req.id, "invalid_query", str(exc), trace=req.trace
            )
        except ReproError as exc:
            self.registry.counter("server.errors.internal").inc()
            return None, encode_error(
                req.id, "internal", str(exc), trace=req.trace
            )
        except Exception as exc:  # pragma: no cover - defensive
            self.registry.counter("server.errors.internal").inc()
            return None, encode_error(
                req.id, "internal", repr(exc), trace=req.trace
            )

    def _run_verb(self, snap: Snapshot, req: Request, stats=None):
        args = req.args
        index, data = snap.index, snap.data
        if req.verb == "ping":
            return {
                "pong": True,
                "protocol": PROTOCOL_VERSION,
                "snapshot": snap.version,
            }
        if req.verb == "window":
            # only predicate="within" lands here; intersects is batched
            window = Rect(args["xl"], args["yl"], args["xu"], args["yu"])
            ids = index.window_query_within(window, stats)
            return {"ids": ids.tolist(), "count": int(ids.shape[0])}
        if req.verb == "knn":
            ids = knn_query(
                index, data, args["cx"], args["cy"], args["k"], stats=stats
            )
            return {"ids": ids.tolist(), "count": int(ids.shape[0])}
        if req.verb == "count":
            window = Rect(args["xl"], args["yl"], args["xu"], args["yu"])
            return {"count": int(index.count_window(window))}
        if req.verb == "describe":
            avg_w, avg_h = data.average_extents() if len(data) else (0.0, 0.0)
            return {
                "objects": len(data),
                "partitions_per_dim": index.grid.nx,
                "replicas": index.replica_count,
                "replication_ratio": index.replica_count / max(len(data), 1),
                "class_counts": index.class_counts(),
                "avg_extent": [avg_w, avg_h],
                "index_bytes": index.nbytes,
                "snapshot": snap.version,
            }
        if req.verb == "explain":
            return self._run_explain(snap, args)
        if req.verb == "stats":
            cfg = self.config
            return {
                "metrics": self.registry.collect(),
                "spans": self.tracer.phase_totals(),
                "snapshot": snap.version,
                "uptime_s": round(time.perf_counter() - self._t_start, 3),
                "telemetry": self.telemetry is not None,
                "config": {
                    "queue_depth": cfg.queue_depth,
                    "max_batch": cfg.max_batch,
                    "coalesce_ms": cfg.coalesce_ms,
                    "slowlog_ms": cfg.slowlog_ms,
                    "heat_sample": cfg.heat_sample,
                    "trace_sample": cfg.trace_sample,
                },
            }
        if req.verb == "heatmap":
            tel = self._require_telemetry()
            return tel.heat_snapshot(top=args["top"])
        if req.verb == "traces":
            tel = self._require_telemetry()
            return {
                "capacity": tel.traces.capacity,
                "total": tel.traces.total,
                "entries": tel.traces.last(args["limit"]),
            }
        if req.verb == "slowlog":
            tel = self._require_telemetry()
            entries = tel.slowlog.entries(args["limit"])
            if args["explain"]:
                for entry in entries:
                    self._attach_explain(snap, entry)
            return {
                "threshold_ms": tel.slowlog.threshold_ms,
                "total": tel.slowlog.total,
                "entries": entries,
            }
        raise InvalidQueryError(f"verb {req.verb!r} is not servable")

    def _require_telemetry(self) -> LiveTelemetry:
        if self.telemetry is None:
            raise InvalidQueryError(
                "telemetry is disabled on this server (--telemetry off)"
            )
        return self.telemetry

    def _attach_explain(self, snap: Snapshot, entry: dict) -> None:
        """Fill a slowlog entry's lazily-computed EXPLAIN plan.

        Runs at ``slowlog`` read time against the *current* snapshot
        (never on the request path); the plan is cached on the ring
        entry so repeated reads pay once.
        """
        if entry.get("explain") is not None:
            return
        verb = entry.get("verb")
        args = entry.get("args") or {}
        try:
            if verb in ("window", "count") and (
                verb == "count" or args.get("predicate") == "intersects"
            ):
                entry["explain"] = self._run_explain(
                    snap, {"kind": "window", **{
                        k: args[k] for k in ("xl", "yl", "xu", "yu")
                    }},
                )
            elif verb == "disk":
                entry["explain"] = self._run_explain(
                    snap, {"kind": "disk", **{
                        k: args[k] for k in ("cx", "cy", "radius")
                    }},
                )
            elif verb == "knn":
                entry["explain"] = self._run_explain(
                    snap, {"kind": "knn", **{
                        k: args[k] for k in ("cx", "cy", "k")
                    }},
                )
            else:
                entry["explain"] = {"skipped": f"no EXPLAIN for verb {verb!r}"}
        except ReproError as exc:
            entry["explain"] = {"error": str(exc)}

    def _run_explain(self, snap: Snapshot, args: dict) -> dict:
        from repro.obs.explain import explain_disk, explain_knn, explain_window

        kind = args["kind"]
        if kind == "window":
            plan = explain_window(
                snap.index, Rect(args["xl"], args["yl"], args["xu"], args["yu"])
            )
        elif kind == "disk":
            plan = explain_disk(
                snap.index, DiskQuery(args["cx"], args["cy"], args["radius"])
            )
        else:
            plan = explain_knn(
                snap.index, snap.data, args["cx"], args["cy"], args["k"]
            )
        return plan.as_dict()

    # -- writes -----------------------------------------------------------

    async def _writer_loop(self) -> None:
        while True:
            pending = await self._write_q.get()
            if pending is None:
                return
            req = pending.request
            tel = self.telemetry
            trace_id = None
            if tel is not None:
                trace_id = req.trace or f"t-{next(self._trace_seq):06x}"
            t0 = time.perf_counter()
            try:
                with _tracing.activate(self.tracer):
                    with _tracing.span(f"server.{req.verb}"):
                        if req.verb == "insert":
                            rect = Rect(
                                req.args["xl"],
                                req.args["yl"],
                                req.args["xu"],
                                req.args["yu"],
                            )
                            obj_id, version = self.store.insert(rect)
                            result = {"id": obj_id, "snapshot": version}
                        else:
                            found, version = self.store.delete(req.args["id"])
                            result = {"found": found, "snapshot": version}
                payload = encode_response(req.id, result, trace=trace_id)
            except ReproError as exc:
                payload = encode_error(
                    req.id, "invalid_query", str(exc), trace=trace_id
                )
            except Exception as exc:  # pragma: no cover - defensive
                self.registry.counter("server.errors.internal").inc()
                payload = encode_error(
                    req.id, "internal", repr(exc), trace=trace_id
                )
            record = None
            if tel is not None:
                # Writes are rare: always retain their trace (the COW
                # fork time is the kernel phase; no batching phases).
                record = {
                    "trace": trace_id,
                    "id": req.id,
                    "verb": req.verb,
                    "args": req.args,
                    "phases": {
                        "queue_ms": round(
                            (t0 - pending.enqueued_at) * 1e3, 3
                        ),
                        "kernel_ms": round(
                            (time.perf_counter() - t0) * 1e3, 3
                        ),
                    },
                }
            self._respond(pending, payload, record=record)

    # -- bookkeeping ------------------------------------------------------

    def _phases(self, pending: PendingRequest, bctx: _BatchCtx) -> dict:
        """Per-phase timing [ms] of one request, from batch scalars.

        ``refine_ms`` is structurally zero — serving is MBR-only, no
        refinement stage runs — but the key is kept so trace consumers
        see the full phase taxonomy.  ``serialize_ms`` is patched onto
        retained records after the envelope encode (the wire envelope
        necessarily freezes before that measurement completes).
        """
        return {
            "queue_ms": round(
                (pending.dequeued_at - pending.enqueued_at) * 1e3, 3
            ),
            "coalesce_ms": round(
                (bctx.t_exec - pending.dequeued_at) * 1e3, 3
            ),
            "snapshot_pin_ms": round(bctx.pin_ms, 4),
            "kernel_ms": round(bctx.kernel_ms, 3),
            "refine_ms": 0.0,
        }

    def _make_record(
        self,
        pending: PendingRequest,
        bctx: _BatchCtx,
        trace_id: str,
        phases: "dict | None" = None,
    ) -> dict:
        req = pending.request
        return {
            "trace": trace_id,
            "id": req.id,
            "verb": req.verb,
            "args": req.args,
            "snapshot": bctx.snapshot,
            "batch_size": bctx.batch_size,
            "phases": phases if phases is not None else self._phases(pending, bctx),
        }

    def _deliver(
        self,
        pending: PendingRequest,
        result: dict,
        meta: dict,
        out: "dict[_Connection, list[bytes]]",
        bctx: "_BatchCtx | None",
    ) -> None:
        """Encode one success response and hand it to :meth:`_respond`.

        Telemetry on: every response envelope carries a ``trace`` id
        (the client's, else server-assigned).  Client-traced requests
        additionally get the per-phase breakdown inline and are always
        retained in the trace ring; untraced requests stay lean on the
        hot path (phases are assembled only if the request turns out
        slow or is ring-sampled, from the batch scalars).
        """
        req = pending.request
        if bctx is None:
            # Telemetry off: stay lean — no server-assigned ids — but a
            # client-supplied trace must still be echoed (RV205).
            self._respond(
                pending,
                encode_response(req.id, result, meta, trace=req.trace),
                out,
            )
            return
        trace_id = req.trace or f"t-{next(self._trace_seq):06x}"
        record = None
        if req.trace is not None:
            phases = self._phases(pending, bctx)
            t0 = time.perf_counter()
            payload = encode_response(
                req.id, result, {**meta, "phases": phases}, trace=trace_id
            )
            phases["serialize_ms"] = round(
                (time.perf_counter() - t0) * 1e3, 3
            )
            record = self._make_record(pending, bctx, trace_id, phases)
        else:
            payload = encode_response(req.id, result, meta, trace=trace_id)
        self._respond(
            pending, payload, out, bctx=bctx, trace_id=trace_id, record=record
        )

    def _respond(
        self,
        pending: PendingRequest,
        payload: bytes,
        out: "dict[_Connection, list[bytes]] | None" = None,
        bctx: "_BatchCtx | None" = None,
        trace_id: "str | None" = None,
        record: "dict | None" = None,
    ) -> None:
        """Account for one finished request and deliver its response.

        With ``out`` the frame is staged in the batch's per-connection
        aggregation buffer (flushed by :meth:`_execute_batch` as one
        write per connection); without it the frame is sent directly.
        A non-``None`` ``record`` is finalised with the latency and
        retained; otherwise slow or ring-sampled requests get a record
        built here from the batch scalars.
        """
        latency_ms = (time.perf_counter() - pending.enqueued_at) * 1e3
        verb = pending.request.verb
        self._m_verbs[verb].inc()
        self._m_latency.observe(latency_ms)
        tel = self.telemetry
        if tel is not None:
            self._m_verb_latency[verb].observe(latency_ms)
            if record is None and bctx is not None:
                self._trace_tick += 1
                if (
                    latency_ms >= tel.slowlog.threshold_ms
                    or self._trace_tick % self.config.trace_sample == 0
                ):
                    record = self._make_record(
                        pending,
                        bctx,
                        trace_id or f"t-{next(self._trace_seq):06x}",
                    )
            if record is not None:
                record["latency_ms"] = round(latency_ms, 3)
                tel.finish(record)
        if out is None:
            pending.conn.send(payload)
        else:
            out.setdefault(pending.conn, []).append(payload)
        self._in_flight -= 1
