"""Synchronous, stdlib-only client for the serving protocol.

Uses nothing beyond ``socket`` and the (dependency-free) protocol
module, so a thin consumer process does not need numpy::

    from repro.server.client import SpatialClient

    with SpatialClient("127.0.0.1", 7207) as cli:
        ids = cli.window(0.2, 0.2, 0.3, 0.3)
        near = cli.knn(0.5, 0.5, k=10)
        new_id = cli.insert(0.41, 0.41, 0.42, 0.42)

Structured server errors raise :class:`ServerError` subclasses;
``overloaded`` raises :class:`OverloadedError` carrying the server's
``retry_after_ms`` hint.  Transport stalls raise
:class:`ClientTimeoutError` after the socket ``timeout`` (default 30 s)
instead of hanging forever on a wedged server.  The client keeps one
request in flight at a time; :meth:`SpatialClient.send_raw` /
:meth:`SpatialClient.recv_raw` expose the pipelined path the open-loop
load generator uses.

Requests may carry an opaque ``trace`` id (``call(..., trace="...")``);
the server echoes it — with per-phase timings when telemetry is on —
and the client keeps the frame's trace id on :attr:`last_trace`.
"""

from __future__ import annotations

import itertools
import random
import socket
import time

from repro.server.protocol import decode_response, encode_request

__all__ = [
    "ClientError",
    "ClientTimeoutError",
    "OverloadedError",
    "ServerError",
    "ShuttingDownError",
    "SpatialClient",
]


class ClientError(Exception):
    """Transport-level failure (connection closed, malformed frame)."""


class ClientTimeoutError(ClientError):
    """The socket timed out connecting, sending, or awaiting a response.

    Carries the offending ``op`` (``"connect"``/``"send"``/``"recv"``)
    and the configured ``timeout`` so retry loops can report precisely.
    """

    def __init__(self, op: str, timeout: "float | None"):
        budget = "no timeout" if timeout is None else f"{timeout:g}s"
        super().__init__(f"{op} timed out after {budget}")
        self.op = op
        self.timeout = timeout


class ServerError(Exception):
    """A structured error response from the server."""

    def __init__(self, code: str, message: str, retry_after_ms: "int | None" = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms


class OverloadedError(ServerError):
    """Admission control rejected the request; honour ``retry_after_ms``."""


class ShuttingDownError(ServerError):
    """The server is draining and no longer accepts requests."""


_ERROR_CLASSES = {
    "overloaded": OverloadedError,
    "shutting_down": ShuttingDownError,
}


class SpatialClient:
    """One blocking connection to a :class:`SpatialQueryService`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: "float | None" = 30.0,
        retries: int = 0,
        max_retry_wait_s: float = 1.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: how many times :meth:`call` re-issues a request the server
        #: rejected as ``overloaded`` (0 = raise immediately, the
        #: default).  Each retry honours the server's ``retry_after_ms``
        #: hint with full jitter — sleeping ``U(0, hint]`` decorrelates
        #: a thundering herd of clients all told "come back in 20ms".
        self.retries = retries
        #: per-attempt cap on the backoff sleep, hint or no hint.
        self.max_retry_wait_s = max_retry_wait_s
        self._ids = itertools.count(1)
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except TimeoutError as exc:  # socket.timeout is an alias
            raise ClientTimeoutError("connect", timeout) from exc
        self._file = self._sock.makefile("rb")

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SpatialClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw pipelined path (load generators, tests) ----------------------

    def send_raw(
        self,
        verb: str,
        args: "dict | None" = None,
        trace: "str | None" = None,
    ) -> int:
        """Fire one request without waiting; returns its request id."""
        req_id = next(self._ids)
        try:
            self._sock.sendall(encode_request(req_id, verb, args, trace=trace))
        except TimeoutError as exc:
            raise ClientTimeoutError("send", self.timeout) from exc
        return req_id

    def recv_raw(self) -> dict:
        """Read the next response frame (whatever request it answers)."""
        try:
            line = self._file.readline()
        except TimeoutError as exc:
            raise ClientTimeoutError("recv", self.timeout) from exc
        if not line:
            raise ClientError("server closed the connection")
        return decode_response(line)

    # -- request/response -------------------------------------------------

    def call(
        self,
        verb: str,
        args: "dict | None" = None,
        trace: "str | None" = None,
    ) -> dict:
        """One request, one response; raises on structured errors.

        Returns the ``result`` payload; the frame's ``server`` metadata
        (snapshot version, batch size, per-phase timings for traced
        requests) is kept on :attr:`last_server` and its trace id on
        :attr:`last_trace`.

        With ``retries > 0``, an ``overloaded`` rejection is retried up
        to that many times (fresh request id each attempt), sleeping a
        jittered ``retry_after_ms`` between attempts;
        :attr:`last_retries` records how many retries the last call
        spent.  Only admission-control rejections are retried — every
        other error (including ``shutting_down``) raises immediately,
        since re-sending those is either futile or unsafe.
        """
        attempt = 0
        while True:
            req_id = self.send_raw(verb, args, trace=trace)
            frame = self.recv_raw()
            if frame.get("id") not in (req_id, None):
                raise ClientError(
                    f"response id {frame.get('id')!r} does not match "
                    f"request id {req_id!r}"
                )
            try:
                result = self.unwrap(frame)
            except OverloadedError as exc:
                if attempt >= self.retries:
                    self.last_retries = attempt
                    raise
                attempt += 1
                time.sleep(self._backoff_s(exc.retry_after_ms))
                continue
            self.last_retries = attempt
            return result

    def _backoff_s(self, retry_after_ms: "int | None") -> float:
        hint_s = (
            retry_after_ms / 1e3
            if retry_after_ms is not None and retry_after_ms > 0
            else 0.02
        )
        return random.uniform(0.0, min(hint_s, self.max_retry_wait_s))

    def unwrap(self, frame: dict) -> dict:
        """Turn a response frame into its result, raising on errors."""
        self.last_trace = frame.get("trace")
        if frame["ok"]:
            self.last_server = frame.get("server")
            return frame["result"]
        error = frame.get("error") or {}
        code = error.get("code", "internal")
        cls = _ERROR_CLASSES.get(code, ServerError)
        raise cls(code, error.get("message", ""), error.get("retry_after_ms"))

    #: ``server`` metadata of the last successful :meth:`call` response.
    last_server: "dict | None" = None
    #: trace id echoed on the last response frame (client- or server-assigned).
    last_trace: "str | None" = None
    #: overloaded-retries spent by the last :meth:`call` (0 = first try).
    last_retries: int = 0

    # -- verbs ------------------------------------------------------------

    def ping(self) -> dict:
        return self.call("ping")

    def window(
        self,
        xl: float,
        yl: float,
        xu: float,
        yu: float,
        predicate: str = "intersects",
    ) -> list[int]:
        args = {"xl": xl, "yl": yl, "xu": xu, "yu": yu}
        if predicate != "intersects":
            args["predicate"] = predicate
        return self.call("window", args)["ids"]

    def disk(self, cx: float, cy: float, radius: float) -> list[int]:
        return self.call("disk", {"cx": cx, "cy": cy, "radius": radius})["ids"]

    def knn(self, cx: float, cy: float, k: int) -> list[int]:
        return self.call("knn", {"cx": cx, "cy": cy, "k": k})["ids"]

    def count(self, xl: float, yl: float, xu: float, yu: float) -> int:
        return self.call("count", {"xl": xl, "yl": yl, "xu": xu, "yu": yu})[
            "count"
        ]

    def insert(self, xl: float, yl: float, xu: float, yu: float) -> int:
        return self.call("insert", {"xl": xl, "yl": yl, "xu": xu, "yu": yu})[
            "id"
        ]

    def delete(self, obj_id: int) -> bool:
        return self.call("delete", {"id": obj_id})["found"]

    def describe(self) -> dict:
        return self.call("describe")

    def explain(self, kind: str, **args: object) -> dict:
        return self.call("explain", {"kind": kind, **args})

    def stats(self) -> dict:
        return self.call("stats")

    # -- live-telemetry admin verbs ---------------------------------------

    def heatmap(self, top: int = 20) -> dict:
        return self.call("heatmap", {"top": top})

    def slowlog(self, limit: int = 20, explain: bool = True) -> dict:
        return self.call("slowlog", {"limit": limit, "explain": explain})

    def traces(self, limit: int = 20) -> dict:
        return self.call("traces", {"limit": limit})
