"""Concurrent query serving over a two-layer grid.

The serving subsystem turns the in-process library into a network
service: an asyncio TCP server speaking a newline-delimited JSON
protocol, built around three production mechanisms rather than socket
plumbing:

* **request micro-batching** (:mod:`repro.server.batcher`) — concurrent
  window/disk queries arriving within a coalescing window are drained
  together and executed through the Section VI tiles-based batch
  evaluator, so the paper's cache-conscious batch strategy is the
  server's hot path;
* **snapshot isolation** (:mod:`repro.server.snapshot`) — reads run
  against an immutable snapshot while ``insert``/``delete`` are
  serialised onto a writer that publishes a new snapshot atomically
  (tile-level copy-on-write), so readers never block on writers and a
  mid-flight batch sees one consistent index;
* **admission control** (:mod:`repro.server.service`) — a bounded
  request queue returns a structured ``overloaded`` error (with a
  retry-after hint) instead of growing without bound, slow consumers
  get per-connection write timeouts, and SIGTERM drains in-flight
  requests before closing.

:mod:`repro.server.client` is a synchronous, stdlib-only client.
:mod:`repro.server.admin` adds the live-ops surface: the Prometheus
``/metrics`` HTTP listener and the ``--top`` console.  See
``docs/serving.md`` for the protocol reference and deployment notes and
``docs/observability.md`` for the live-operations guide.
"""

from repro.server.admin import MetricsHTTPServer, run_top
from repro.server.batcher import MicroBatcher, PendingRequest
from repro.server.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    Request,
    decode_request,
    encode_error,
    encode_request,
    encode_response,
)
from repro.server.service import ServerConfig, SpatialQueryService
from repro.server.snapshot import Snapshot, SnapshotStore

__all__ = [
    "ERROR_CODES",
    "MetricsHTTPServer",
    "MicroBatcher",
    "PendingRequest",
    "PROTOCOL_VERSION",
    "Request",
    "ServerConfig",
    "Snapshot",
    "SnapshotStore",
    "SpatialQueryService",
    "decode_request",
    "encode_error",
    "encode_request",
    "encode_response",
    "run_top",
]
