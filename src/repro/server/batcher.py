"""Request micro-batching: bounded admission queue + coalescing drain.

The server enqueues every accepted read request here.  The batch loop
pulls one request, then keeps the batch open for a short *coalescing
window* (or until ``max_batch`` requests are in hand) before executing
the whole batch against one snapshot — window and disk queries through
the Section VI tiles-based evaluator, so concurrent clients pay the
per-tile scan setup once instead of once per request.

The queue is bounded: :meth:`MicroBatcher.try_submit` never blocks and
returns ``False`` when the queue is full, which the service translates
into a structured ``overloaded`` error with a retry-after hint.  That is
the admission-control half of backpressure; the per-connection write
timeout in :mod:`repro.server.service` is the other half.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.server.protocol import Request

__all__ = ["MicroBatcher", "PendingRequest"]


class PendingRequest:
    """One admitted request waiting for (batched) execution."""

    __slots__ = ("request", "conn", "enqueued_at", "dequeued_at")

    # `conn` is the service layer's _Connection; typed loosely to keep
    # the batcher importable without the service (no circular import).
    def __init__(
        self, request: Request, conn: Any, enqueued_at: "float | None" = None
    ):
        self.request = request
        self.conn = conn
        self.enqueued_at = (
            enqueued_at if enqueued_at is not None else time.perf_counter()
        )
        #: stamped by the drain loop when the request leaves the queue;
        #: ``dequeued_at - enqueued_at`` is the admission-queue wait and
        #: ``exec_start - dequeued_at`` the coalescing wait of a trace.
        self.dequeued_at = self.enqueued_at


class MicroBatcher:
    """Bounded queue with coalescing batch drain.

    ``coalesce_ms`` is how long the drain loop keeps a batch open after
    its first request arrives; ``max_batch`` caps the batch size (a full
    batch closes early).  ``max_batch=1`` (or ``coalesce_ms=0`` with an
    empty queue) degenerates to per-request execution — the unbatched
    baseline the serving benchmark compares against.
    """

    def __init__(
        self,
        queue_depth: int = 128,
        max_batch: int = 64,
        coalesce_ms: float = 2.0,
    ):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if coalesce_ms < 0:
            raise ValueError(f"coalesce_ms must be >= 0, got {coalesce_ms}")
        self.queue_depth = queue_depth
        self.max_batch = max_batch
        self.coalesce_s = coalesce_ms / 1e3
        self._queue: "asyncio.Queue[PendingRequest | None]" = asyncio.Queue(
            maxsize=queue_depth
        )
        self._closed = False

    # -- submission (never blocks) ----------------------------------------

    def try_submit(self, pending: PendingRequest) -> bool:
        """Admit a request; ``False`` means the queue is full (reject)."""
        if self._closed:
            return False
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            return False
        return True

    def depth(self) -> int:
        """Requests currently queued (the backpressure gauge)."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop admitting; wake the drain loop once the queue empties."""
        self._closed = True
        try:
            self._queue.put_nowait(None)
        except asyncio.QueueFull:
            pass  # the drain loop is behind; it will see _closed

    def _requeue_sentinel(self) -> None:
        """Put a drained close-sentinel back for the next batch call."""
        try:
            self._queue.put_nowait(None)
        except asyncio.QueueFull:  # pragma: no cover - closed queues drain
            pass

    # -- draining ---------------------------------------------------------

    async def next_batch(self) -> "list[PendingRequest] | None":
        """The next micro-batch, or ``None`` once closed and drained."""
        while True:
            first = await self._queue.get()
            if first is None:
                if self._closed and self._queue.empty():
                    return None
                continue
            break
        first.dequeued_at = time.perf_counter()
        batch = [first]
        if self.coalesce_s > 0.0 and self.max_batch > 1:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.coalesce_s
            while len(batch) < self.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0.0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                if item is None:
                    self._requeue_sentinel()
                    break
                item.dequeued_at = time.perf_counter()
                batch.append(item)
        else:
            now = time.perf_counter()
            while len(batch) < self.max_batch:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is None:
                    self._requeue_sentinel()
                    break
                item.dequeued_at = now
                batch.append(item)
        return batch
