"""The serving wire protocol: newline-delimited JSON frames.

One request per line, one response per line.  Requests carry a
client-chosen ``id`` that the server echoes back, so responses may be
matched even when the server answers out of submission order (batched
execution completes whole batches at a time)::

    -> {"id": 7, "verb": "window", "args": {"xl": 0.2, "yl": 0.2, "xu": 0.3, "yu": 0.3}}
    <- {"id": 7, "ok": true, "result": {"ids": [12, 94], "count": 2}, "server": {...}}

Errors are structured — a machine-readable ``code`` plus a human
message, and for ``overloaded`` a ``retry_after_ms`` hint::

    <- {"id": 9, "ok": false, "error": {"code": "overloaded",
        "message": "request queue full (depth 128)", "retry_after_ms": 20}}

This module is dependency-free (stdlib ``json`` + the repro error
hierarchy) and shared verbatim by server and client; all argument
validation lives here so both sides reject malformed frames the same
way.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ProtocolError

__all__ = [
    "ERROR_CODES",
    "MAX_TRACE_LEN",
    "PROTOCOL_VERSION",
    "VERBS",
    "Request",
    "decode_request",
    "decode_response",
    "encode_error",
    "encode_request",
    "encode_response",
]

PROTOCOL_VERSION = 2

#: longest accepted client-supplied trace id (opaque string).
MAX_TRACE_LEN = 128

#: structured error codes a server may return.
ERROR_CODES = (
    "bad_request",     # malformed frame or arguments
    "unknown_verb",    # verb not in VERBS
    "invalid_query",   # well-formed frame, semantically invalid query
    "overloaded",      # admission control rejected (carries retry_after_ms)
    "shutting_down",   # server is draining; no new requests accepted
    "internal",        # unexpected server-side failure
    "degraded",        # sharded mode: an owning shard worker is down
)

_REQUIRED = object()


def _float_arg(value, verb: str, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{verb}: argument {name!r} must be a number")
    return float(value)


def _int_arg(value, verb: str, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{verb}: argument {name!r} must be an integer")
    return int(value)


def _str_arg(value, verb: str, name: str) -> str:
    if not isinstance(value, str):
        raise ProtocolError(f"{verb}: argument {name!r} must be a string")
    return value


def _bool_arg(value, verb: str, name: str) -> bool:
    if not isinstance(value, bool):
        raise ProtocolError(f"{verb}: argument {name!r} must be a boolean")
    return value


#: verb -> {arg name: (coercer, default-or-_REQUIRED)}
VERBS: dict[str, dict[str, tuple]] = {
    "ping": {},
    "window": {
        "xl": (_float_arg, _REQUIRED),
        "yl": (_float_arg, _REQUIRED),
        "xu": (_float_arg, _REQUIRED),
        "yu": (_float_arg, _REQUIRED),
        "predicate": (_str_arg, "intersects"),
    },
    "disk": {
        "cx": (_float_arg, _REQUIRED),
        "cy": (_float_arg, _REQUIRED),
        "radius": (_float_arg, _REQUIRED),
    },
    "knn": {
        "cx": (_float_arg, _REQUIRED),
        "cy": (_float_arg, _REQUIRED),
        "k": (_int_arg, _REQUIRED),
    },
    "count": {
        "xl": (_float_arg, _REQUIRED),
        "yl": (_float_arg, _REQUIRED),
        "xu": (_float_arg, _REQUIRED),
        "yu": (_float_arg, _REQUIRED),
    },
    "insert": {
        "xl": (_float_arg, _REQUIRED),
        "yl": (_float_arg, _REQUIRED),
        "xu": (_float_arg, _REQUIRED),
        "yu": (_float_arg, _REQUIRED),
    },
    "delete": {
        "id": (_int_arg, _REQUIRED),
    },
    "describe": {},
    "explain": {
        "kind": (_str_arg, _REQUIRED),
        "xl": (_float_arg, None),
        "yl": (_float_arg, None),
        "xu": (_float_arg, None),
        "yu": (_float_arg, None),
        "cx": (_float_arg, None),
        "cy": (_float_arg, None),
        "radius": (_float_arg, None),
        "k": (_int_arg, None),
    },
    "stats": {},
    # Live-telemetry admin verbs (read-only; answered from the event
    # loop against the service's telemetry rings, never the index).
    "heatmap": {
        "top": (_int_arg, 20),
    },
    "slowlog": {
        "limit": (_int_arg, 20),
        "explain": (_bool_arg, True),
    },
    "traces": {
        "limit": (_int_arg, 20),
    },
}

_EXPLAIN_KINDS = {
    "window": ("xl", "yl", "xu", "yu"),
    "disk": ("cx", "cy", "radius"),
    "knn": ("cx", "cy", "k"),
}

#: verbs that mutate the collection (routed to the serialised writer).
WRITE_VERBS = frozenset({"insert", "delete"})


@dataclass(frozen=True)
class Request:
    """One validated protocol request."""

    id: "int | str"
    verb: str
    args: dict = field(default_factory=dict)
    #: client-supplied trace id, echoed in the response envelope; when
    #: absent the server assigns one (telemetry-on) so every retained
    #: trace is addressable.
    trace: "str | None" = None


def _validate_args(verb: str, raw: dict) -> dict:
    spec = VERBS[verb]
    unknown = set(raw) - set(spec)
    if unknown:
        raise ProtocolError(
            f"{verb}: unknown argument(s) {sorted(unknown)}; "
            f"accepted: {sorted(spec)}"
        )
    args: dict = {}
    for name, (coerce, default) in spec.items():
        if name in raw:
            args[name] = coerce(raw[name], verb, name)
        elif default is _REQUIRED:
            raise ProtocolError(f"{verb}: missing required argument {name!r}")
        elif default is not None:
            args[name] = default
    if verb == "window" and args["predicate"] not in ("intersects", "within"):
        raise ProtocolError(
            f"window: unknown predicate {args['predicate']!r}; "
            "expected 'intersects' or 'within'"
        )
    if verb == "explain":
        kind = args.get("kind")
        required = _EXPLAIN_KINDS.get(kind)
        if required is None:
            raise ProtocolError(
                f"explain: unknown kind {kind!r}; "
                f"expected one of {sorted(_EXPLAIN_KINDS)}"
            )
        missing = [name for name in required if name not in args]
        if missing:
            raise ProtocolError(
                f"explain[{kind}]: missing required argument(s) {missing}"
            )
    return args


def decode_request(line: "bytes | str") -> Request:
    """Parse and validate one request line.

    Raises :class:`~repro.errors.ProtocolError` on any malformation;
    the message is safe to echo back to the client.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8: {exc}") from exc
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    req_id = obj.get("id")
    if not isinstance(req_id, (int, str)) or isinstance(req_id, bool):
        raise ProtocolError("request needs an 'id' (integer or string)")
    verb = obj.get("verb")
    if not isinstance(verb, str):
        raise ProtocolError("request needs a 'verb' (string)")
    if verb not in VERBS:
        exc = ProtocolError(
            f"unknown verb {verb!r}; expected one of {sorted(VERBS)}"
        )
        exc.code = "unknown_verb"  # lets servers answer with the finer code
        raise exc
    raw_args = obj.get("args", {})
    if not isinstance(raw_args, dict):
        raise ProtocolError("'args' must be a JSON object")
    trace = obj.get("trace")
    if trace is not None:
        if not isinstance(trace, str) or not trace:
            raise ProtocolError("'trace' must be a non-empty string")
        if len(trace) > MAX_TRACE_LEN:
            raise ProtocolError(
                f"'trace' longer than {MAX_TRACE_LEN} characters"
            )
    return Request(
        id=req_id,
        verb=verb,
        args=_validate_args(verb, raw_args),
        trace=trace,
    )


def encode_request(
    req_id: "int | str",
    verb: str,
    args: "dict | None" = None,
    trace: "str | None" = None,
) -> bytes:
    """Serialise one request to a newline-terminated frame."""
    frame = {"id": req_id, "verb": verb}
    if args:
        frame["args"] = args
    if trace is not None:
        frame["trace"] = trace
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")


def encode_response(
    req_id: "int | str | None",
    result: dict,
    server: "dict | None" = None,
    trace: "str | None" = None,
) -> bytes:
    """Serialise one success response to a newline-terminated frame."""
    frame: dict = {"id": req_id, "ok": True, "result": result}
    if server:
        frame["server"] = server
    if trace is not None:
        frame["trace"] = trace
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")


def encode_error(
    req_id: "int | str | None",
    code: str,
    message: str,
    retry_after_ms: "int | None" = None,
    trace: "str | None" = None,
) -> bytes:
    """Serialise one structured error response."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    error: dict = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = int(retry_after_ms)
    frame = {"id": req_id, "ok": False, "error": error}
    if trace is not None:
        frame["trace"] = trace
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")


def decode_response(line: "bytes | str") -> dict:
    """Parse one response line into its frame dict (client side).

    Raises :class:`~repro.errors.ProtocolError` when the frame is not a
    JSON object carrying ``ok``.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"response is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict) or "ok" not in obj:
        raise ProtocolError("response must be a JSON object with an 'ok' field")
    return obj
