"""Snapshot isolation for serving: immutable index versions, COW writes.

Readers grab :attr:`SnapshotStore.current` — an immutable
:class:`Snapshot` of (index, data, version) — and evaluate whole batches
against it without ever taking a lock.  Writers go through
:meth:`SnapshotStore.insert` / :meth:`SnapshotStore.delete`, which build
a *new* index sharing every untouched tile with the old one (the tile
dict is copied shallowly; only the secondary partitions the write lands
in are rebuilt) and publish it with one atomic reference swap.  A reader
holding version *v* therefore sees version *v* forever: no torn batches,
no reader/writer blocking, and memory cost proportional to the touched
tiles, not the index.

Under the packed storage backend the bulk-loaded base is an immutable
:class:`~repro.grid.storage.PackedStore` shared *by reference* across
every forked version — publishing a new snapshot costs one delta-dict
copy, never a base copy.  Inserts land in the fork's copy-on-write delta
overlay exactly like legacy tiles; deletes that hit base rows fork the
tombstone bitmap (:meth:`~repro.grid.storage.PackedStore
.with_private_dead`) so the published version's base stays untouched.

Invariant: every :class:`~repro.grid.storage.TileTable` reachable from a
published snapshot is *compacted* (no pending append tail).  Bulk
loading and this module's COW constructors only ever produce compacted
tables, so concurrent readers calling ``columns()`` perform pure reads.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.analysis import sanitize as _sanitize
from repro.datasets.dataset import RectDataset
from repro.errors import IndexStateError, InvalidQueryError
from repro.geometry.mbr import Rect
from repro.grid.storage import TileTable
from repro.core.two_layer import TwoLayerGrid
from repro.core.two_layer_plus import TwoLayerPlusGrid

__all__ = ["Snapshot", "SnapshotStore"]


class Snapshot:
    """One immutable version of the collection: index + data + version."""

    __slots__ = ("index", "data", "version")

    def __init__(self, index: TwoLayerGrid, data: RectDataset, version: int):
        self.index = index
        self.data = data
        self.version = version

    def __repr__(self) -> str:
        return (
            f"Snapshot(version={self.version}, objects={len(self.index)}, "
            f"replicas={self.index.replica_count})"
        )


def _tile_range(grid, rect: Rect):
    return (
        grid.tile_ix(rect.xl),
        grid.tile_ix(rect.xu),
        grid.tile_iy(rect.yl),
        grid.tile_iy(rect.yu),
    )


def _shallow_fork(index: TwoLayerGrid) -> TwoLayerGrid:
    fork = index._fork_shell()  # preserves subclass (e.g. shard bands)
    fork._store = index._store  # immutable base shared by reference
    fork._fast_q = index._fast_q  # derived caches: same base, same rows
    fork._tile_row_bounds = index._tile_row_bounds
    fork._tiles = dict(index._tiles)
    fork._n_objects = index._n_objects
    return fork


class SnapshotStore:
    """Atomic snapshot publication over a two-layer grid.

    Writes are serialised by an internal lock (callers may also be
    asyncio tasks funnelled through one writer); reads are lock-free —
    ``store.current`` is a single attribute load.
    """

    def __init__(self, index: TwoLayerGrid, data: RectDataset):
        if isinstance(index, TwoLayerPlusGrid) or not isinstance(
            index, TwoLayerGrid
        ):
            raise IndexStateError(
                "SnapshotStore serves the plain TwoLayerGrid; got "
                f"{type(index).__name__}"
            )
        if len(index) != len(data):
            raise IndexStateError(
                f"index covers {len(index)} objects but the dataset has "
                f"{len(data)} rows; ids must stay positional"
            )
        self._write_lock = threading.Lock()
        # Published columns are shared by reference with every reader;
        # freeze them so a stray in-place write fails loudly instead of
        # corrupting pinned snapshots.  This is unconditional hardening —
        # REPRO_SANITIZE only adds the structural cross-checks below.
        _sanitize.freeze_arrays((data.xl, data.yl, data.xu, data.yu))
        if _sanitize.enabled():
            _sanitize.check_snapshot(index, "SnapshotStore.__init__")
        self._current = Snapshot(index, data, 0)

    @property
    def current(self) -> Snapshot:
        """The latest published snapshot (atomic reference read)."""
        return self._current

    #: Deterministic-scheduling hook: the write path announces named
    #: points (``insert.locked`` … ``insert.published``) so the
    #: interleaving explorer (:mod:`repro.analysis.verify.schedule`) can
    #: probe reader-visible state at every step.  A reader is one atomic
    #: ``current`` load, so probing at every yield point covers every
    #: reader/writer interleaving.  No-op in production; overridden per
    #: *instance* only (never at class/module scope).
    @staticmethod
    def _yield_point(tag: str) -> None:
        return None

    # -- writes -----------------------------------------------------------

    def insert(self, rect: Rect) -> tuple[int, int]:
        """Insert one MBR; returns ``(object id, published version)``.

        Collections carrying exact geometries cannot be grown over the
        wire (the MBR-only protocol would silently degrade refinement),
        mirroring :meth:`SpatialCollection.insert`'s requirement.
        """
        with self._write_lock:
            self._yield_point("insert.locked")
            snap = self._current
            if snap.data.geometries is not None:
                raise InvalidQueryError(
                    "this collection stores exact geometries; serving "
                    "inserts are MBR-only"
                )
            index = snap.index
            obj_id = index._n_objects
            fork = _shallow_fork(index)
            fork._n_objects = obj_id + 1
            self._yield_point("insert.forked")
            ix0, ix1, iy0, iy1 = _tile_range(index.grid, rect)
            for iy in range(iy0, iy1 + 1):
                base = iy * index.grid.nx
                for ix in range(ix0, ix1 + 1):
                    code = 2 * (ix > ix0) + (iy > iy0)
                    old_tables = fork._tiles.get(base + ix)
                    tables = (
                        [None, None, None, None]
                        if old_tables is None
                        else list(old_tables)
                    )
                    old = tables[code]
                    if old is None:
                        tables[code] = TileTable(
                            np.array([rect.xl]),
                            np.array([rect.yl]),
                            np.array([rect.xu]),
                            np.array([rect.yu]),
                            np.array([obj_id], dtype=np.int64),
                        )
                    else:
                        xl, yl, xu, yu, ids = old.columns()
                        tables[code] = TileTable(
                            np.append(xl, rect.xl),
                            np.append(yl, rect.yl),
                            np.append(xu, rect.xu),
                            np.append(yu, rect.yu),
                            np.append(ids, np.int64(obj_id)),
                        )
                    fork._tiles[base + ix] = tables
            self._yield_point("insert.indexed")
            data = snap.data
            new_data = RectDataset(
                np.append(data.xl, rect.xl),
                np.append(data.yl, rect.yl),
                np.append(data.xu, rect.xu),
                np.append(data.yu, rect.yu),
                None,
            )
            _sanitize.freeze_arrays(
                (new_data.xl, new_data.yl, new_data.xu, new_data.yu)
            )
            if _sanitize.enabled():
                _sanitize.check_snapshot(fork, "SnapshotStore.insert")
            version = snap.version + 1
            self._yield_point("insert.pre_publish")
            self._current = Snapshot(fork, new_data, version)
            self._yield_point("insert.published")
            return obj_id, version

    def delete(self, obj_id: int) -> tuple[bool, int]:
        """Remove one object by id; returns ``(found, current version)``.

        Like the facade, the dataset row is kept (ids are positional) —
        only the index entries disappear.  The version advances only
        when something was actually removed.
        """
        with self._write_lock:
            self._yield_point("delete.locked")
            snap = self._current
            if not 0 <= obj_id < len(snap.data):
                return False, snap.version
            rect = snap.data.rect(obj_id)
            index = snap.index
            fork = _shallow_fork(index)
            self._yield_point("delete.forked")
            ix0, ix1, iy0, iy1 = _tile_range(index.grid, rect)
            removed = 0
            base_store = fork._store
            forked_store = None
            for iy in range(iy0, iy1 + 1):
                base = iy * index.grid.nx
                for ix in range(ix0, ix1 + 1):
                    code = 2 * (ix > ix0) + (iy > iy0)
                    if base_store is not None:
                        # Base rows are tombstoned on a private copy of
                        # the dead bitmap (allocated lazily on the first
                        # hit); the published base stays immutable.
                        rows = (forked_store or base_store).find_rows(
                            (base + ix) * 4 + code, obj_id
                        )
                        if rows.shape[0]:
                            if forked_store is None:
                                forked_store = base_store.with_private_dead()
                                fork._store = forked_store
                            removed += forked_store.mark_dead(rows)
                    old_tables = fork._tiles.get(base + ix)
                    if old_tables is None:
                        continue
                    old = old_tables[code]
                    if old is None:
                        continue
                    xl, yl, xu, yu, ids = old.columns()
                    keep = ids != obj_id
                    hits = int(ids.shape[0] - keep.sum())
                    if not hits:
                        continue
                    removed += hits
                    tables = list(old_tables)
                    if keep.any():
                        tables[code] = TileTable(
                            xl[keep], yl[keep], xu[keep], yu[keep], ids[keep]
                        )
                    else:
                        tables[code] = None
                    if all(t is None for t in tables):
                        del fork._tiles[base + ix]
                    else:
                        fork._tiles[base + ix] = tables
            self._yield_point("delete.indexed")
            if removed == 0:
                return False, snap.version
            if _sanitize.enabled():
                _sanitize.check_snapshot(fork, "SnapshotStore.delete")
            version = snap.version + 1
            self._yield_point("delete.pre_publish")
            self._current = Snapshot(fork, snap.data, version)
            self._yield_point("delete.published")
            return True, version

    def __repr__(self) -> str:
        snap = self._current
        return f"SnapshotStore(version={snap.version}, objects={len(snap.index)})"
