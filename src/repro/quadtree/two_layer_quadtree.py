"""Quad-tree + the paper's secondary partitioning (Table V, footnote 1).

The secondary partitioning applies to *any* space-oriented partitioning.
Here every quad-tree leaf's entries are divided into the four classes
A/B/C/D relative to the leaf's region; window queries skip classes per
Lemmas 1-2 (generalised to arbitrary partitions via
:func:`repro.core.selection.plan_for_region`) and run only the comparisons
of Lemmas 3-4 — no duplicate is ever generated and no reference-point test
is needed.  This is the ``quad-tree, 2-layer`` row of Table V, which the
paper includes to show the technique's generality.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import InvalidGridError
from repro.geometry.mbr import Rect
from repro.grid.storage import TileTable
from repro.core.selection import plan_for_region
from repro.grid.base import CLASS_NAMES
from repro.obs.tracing import span as trace_span
from repro.quadtree.quadtree import DEFAULT_CAPACITY, DEFAULT_MAX_DEPTH
from repro.stats import QueryStats

__all__ = ["TwoLayerQuadTree"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class _Node:
    """A quadrant whose leaf storage is split into the four classes."""

    __slots__ = ("xl", "yl", "xu", "yu", "depth", "tables", "size", "children")

    def __init__(self, xl: float, yl: float, xu: float, yu: float, depth: int):
        self.xl = xl
        self.yl = yl
        self.xu = xu
        self.yu = yu
        self.depth = depth
        self.tables: "list[TileTable | None] | None" = [None, None, None, None]
        self.size = 0
        self.children: "list[_Node] | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class TwoLayerQuadTree:
    """Replicating quad-tree whose leaves carry secondary partitions."""

    #: EXPLAIN accounting mode: duplicates avoided by class selection.
    dedup_strategy = "avoid"

    def __init__(
        self,
        domain: "Rect | None" = None,
        capacity: int = DEFAULT_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ):
        if capacity < 1:
            raise InvalidGridError(f"capacity must be >= 1, got {capacity}")
        if max_depth < 0:
            raise InvalidGridError(f"max_depth must be >= 0, got {max_depth}")
        self.domain = domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0)
        self.capacity = capacity
        self.max_depth = max_depth
        self._root = _Node(
            self.domain.xl, self.domain.yl, self.domain.xu, self.domain.yu, 0
        )
        self._n_objects = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def build(
        cls,
        data: RectDataset,
        capacity: int = DEFAULT_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
        domain: "Rect | None" = None,
    ) -> "TwoLayerQuadTree":
        tree = cls(domain, capacity, max_depth)
        for i in range(len(data)):
            tree._insert_entry(
                float(data.xl[i]),
                float(data.yl[i]),
                float(data.xu[i]),
                float(data.yu[i]),
                i,
            )
        tree._n_objects = len(data)
        return tree

    def insert(self, rect: Rect, obj_id: "int | None" = None) -> int:
        if obj_id is None:
            obj_id = self._n_objects
        self._n_objects = max(self._n_objects, obj_id + 1)
        self._insert_entry(rect.xl, rect.yl, rect.xu, rect.yu, obj_id)
        return obj_id

    def _entry_in_node(
        self, node: _Node, xl: float, yl: float, xu: float, yu: float
    ) -> bool:
        """Half-open membership, closed at the domain's far edges."""
        if xu < node.xl or yu < node.yl:
            return False
        ok_x = xl < node.xu or (xl <= node.xu and node.xu >= self.domain.xu)
        ok_y = yl < node.yu or (yl <= node.yu and node.yu >= self.domain.yu)
        return ok_x and ok_y

    def _leaf_append(
        self, node: _Node, xl: float, yl: float, xu: float, yu: float, oid: int
    ) -> None:
        """Append the entry to the leaf's class table (A/B/C/D by region)."""
        code = 2 * (xl < node.xl) + (yl < node.yl)
        assert node.tables is not None
        table = node.tables[code]
        if table is None:
            table = TileTable()
            node.tables[code] = table
        table.append(xl, yl, xu, yu, oid)
        node.size += 1

    def _insert_entry(
        self, xl: float, yl: float, xu: float, yu: float, obj_id: int
    ) -> None:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not self._entry_in_node(node, xl, yl, xu, yu):
                continue
            if node.is_leaf:
                self._leaf_append(node, xl, yl, xu, yu, obj_id)
                if node.size > self.capacity and node.depth < self.max_depth:
                    self._split(node)
                continue
            stack.extend(node.children)  # type: ignore[arg-type]

    def _split(self, node: _Node) -> None:
        mx = (node.xl + node.xu) / 2.0
        my = (node.yl + node.yu) / 2.0
        d = node.depth + 1
        children = [
            _Node(node.xl, node.yl, mx, my, d),
            _Node(mx, node.yl, node.xu, my, d),
            _Node(node.xl, my, mx, node.yu, d),
            _Node(mx, my, node.xu, node.yu, d),
        ]
        tables = node.tables
        node.tables = None
        node.children = children
        assert tables is not None
        for table in tables:
            if table is None:
                continue
            xl, yl, xu, yu, ids = table.columns()
            for k in range(ids.shape[0]):
                exl = float(xl[k])
                eyl = float(yl[k])
                exu = float(xu[k])
                eyu = float(yu[k])
                oid = int(ids[k])
                for child in children:
                    if self._entry_in_node(child, exl, eyl, exu, eyu):
                        self._leaf_append(child, exl, eyl, exu, eyu, oid)
        for child in children:
            if child.size > self.capacity and child.depth < self.max_depth:
                self._split(child)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return self._n_objects

    @property
    def replica_count(self) -> int:
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                total += node.size
            else:
                stack.extend(node.children)  # type: ignore[arg-type]
        return total

    @property
    def leaf_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                stack.extend(node.children)  # type: ignore[arg-type]
        return count

    def __repr__(self) -> str:
        return (
            f"TwoLayerQuadTree(objects={self._n_objects}, "
            f"leaves={self.leaf_count}, replicas={self.replica_count})"
        )

    def explain_partitions(
        self, window: Rect
    ) -> list[tuple[Rect, np.ndarray]]:
        """EXPLAIN introspection: ``(leaf rect, stored ids)`` for every
        non-empty leaf visible to ``window`` (all classes pooled)."""
        domain = self.domain
        out: list[tuple[Rect, np.ndarray]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            # Same half-open visibility as _scan_window.
            visible_x = node.xu > window.xl or (
                node.xu >= domain.xu and node.xu >= window.xl
            )
            visible_y = node.yu > window.yl or (
                node.yu >= domain.yu and node.yu >= window.yl
            )
            if (
                not visible_x
                or not visible_y
                or node.xl > window.xu
                or node.yl > window.yu
            ):
                continue
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[arg-type]
                continue
            assert node.tables is not None
            ids = [
                t.columns()[4]
                for t in node.tables
                if t is not None and len(t)
            ]
            if ids:
                out.append(
                    (Rect(node.xl, node.yl, node.xu, node.yu), np.concatenate(ids))
                )
        return out

    # -- queries -----------------------------------------------------------------

    def disk_query(self, query, stats: "QueryStats | None" = None) -> np.ndarray:
        """Disk query: class-planned window over the disk's MBR + distance.

        Class selection relative to the disk's bounding window already
        guarantees each candidate is produced exactly once (same argument
        as :meth:`window_query`); the distance test then subsets the
        candidates, so results stay duplicate-free.  Leaves fully inside
        the disk skip the distance computations (Section IV-E).
        """
        with trace_span("query.disk"):
            with trace_span("filter.lookup"):
                window = query.mbr()
                radius = query.radius
                cx, cy = query.cx, query.cy
                r2 = radius * radius
                stack = [self._root]
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                self._scan_disk(
                    stack, window, cx, cy, radius, r2, pieces, stats
                )
            with trace_span("dedup"):
                pass  # class selection per leaf is duplicate-free
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _scan_disk(
        self, stack, window, cx, cy, radius, r2, pieces, stats
    ) -> None:
        from repro.geometry.mbr import max_dist_point_rect

        domain = self.domain
        while stack:
            node = stack.pop()
            visible_x = node.xu > window.xl or (
                node.xu >= domain.xu and node.xu >= window.xl
            )
            visible_y = node.yu > window.yl or (
                node.yu >= domain.yu and node.yu >= window.yl
            )
            if (
                not visible_x
                or not visible_y
                or node.xl > window.xu
                or node.yl > window.yu
            ):
                continue
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[arg-type]
                continue
            assert node.tables is not None
            if stats is not None:
                stats.partitions_visited += 1
            region = Rect(node.xl, node.yl, node.xu, node.yu)
            covered = max_dist_point_rect(cx, cy, region) <= radius
            plan = plan_for_region(
                window.xl, window.yl, window.xu, window.yu,
                node.xl, node.yl, node.xu, node.yu,
            )
            for cp in plan.classes:
                table = node.tables[cp.code]
                if table is None:
                    continue
                xl, yl, xu, yu, ids = table.columns()
                if ids.shape[0] == 0:
                    continue
                if stats is not None:
                    stats.rects_scanned += ids.shape[0]
                    stats.visit_class(CLASS_NAMES[cp.code])
                mask: "np.ndarray | None" = None
                if cp.xu_ge:
                    mask = xu >= window.xl
                if cp.xl_le:
                    m = xl <= window.xu
                    mask = m if mask is None else mask & m
                if cp.yu_ge:
                    m = yu >= window.yl
                    mask = m if mask is None else mask & m
                if cp.yl_le:
                    m = yl <= window.yu
                    mask = m if mask is None else mask & m
                if not covered:
                    dx = np.maximum(np.maximum(xl - cx, 0.0), cx - xu)
                    dy = np.maximum(np.maximum(yl - cy, 0.0), cy - yu)
                    m = dx * dx + dy * dy <= r2
                    mask = m if mask is None else mask & m
                pieces.append(ids if mask is None else ids[mask])

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Duplicate-free window query via per-leaf class selection."""
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                stack = [self._root]
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                self._scan_window(stack, window, pieces, stats)
            with trace_span("dedup"):
                pass  # duplicate-free by class selection (no dedup step)
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _scan_window(self, stack, window, pieces, stats) -> None:
        domain = self.domain
        while stack:
            node = stack.pop()
            # Half-open region visibility, mirroring the grid's floor-based
            # tile range: a window starting exactly on a quadrant's right
            # border belongs to the right neighbour (results touching the
            # border are stored there too), otherwise classes C/D would be
            # scanned on both sides and produce duplicates.
            visible_x = node.xu > window.xl or (
                node.xu >= domain.xu and node.xu >= window.xl
            )
            visible_y = node.yu > window.yl or (
                node.yu >= domain.yu and node.yu >= window.yl
            )
            if (
                not visible_x
                or not visible_y
                or node.xl > window.xu
                or node.yl > window.yu
            ):
                continue
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[arg-type]
                continue
            assert node.tables is not None
            if stats is not None:
                stats.partitions_visited += 1
            plan = plan_for_region(
                window.xl,
                window.yl,
                window.xu,
                window.yu,
                node.xl,
                node.yl,
                node.xu,
                node.yu,
            )
            for cp in plan.classes:
                table = node.tables[cp.code]
                if table is None:
                    continue
                xl, yl, xu, yu, ids = table.columns()
                if ids.shape[0] == 0:
                    continue
                if stats is not None:
                    stats.rects_scanned += ids.shape[0]
                    stats.comparisons += cp.n_comparisons * ids.shape[0]
                    stats.visit_class(CLASS_NAMES[cp.code])
                mask: "np.ndarray | None" = None
                if cp.xu_ge:
                    mask = xu >= window.xl
                if cp.xl_le:
                    m = xl <= window.xu
                    mask = m if mask is None else mask & m
                if cp.yu_ge:
                    m = yu >= window.yl
                    mask = m if mask is None else mask & m
                if cp.yl_le:
                    m = yl <= window.yu
                    mask = m if mask is None else mask & m
                pieces.append(ids if mask is None else ids[mask])
