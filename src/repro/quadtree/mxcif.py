"""MXCIF quad-tree for non-point data (Kedem [15]; Table V competitor).

Unlike the replicating quad-tree, the MXCIF tree stores every object MBR
*exactly once*: at the lowest (deepest) quadrant that fully covers it.
Objects crossing a split line stay at the internal node whose region is
the smallest cover, so small objects near high-level split lines pile up
near the root — which is why the paper measures it orders of magnitude
slower than the alternatives despite never producing duplicates.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import InvalidGridError
from repro.geometry.mbr import Rect
from repro.grid.storage import TileTable
from repro.obs.tracing import span as trace_span
from repro.stats import QueryStats

__all__ = ["MXCIFQuadTree"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)

DEFAULT_MAX_DEPTH = 12


class _Node:
    """One quadrant; entries live at every level, children are lazy."""

    __slots__ = ("xl", "yl", "xu", "yu", "depth", "table", "children")

    def __init__(self, xl: float, yl: float, xu: float, yu: float, depth: int):
        self.xl = xl
        self.yl = yl
        self.xu = xu
        self.yu = yu
        self.depth = depth
        self.table = TileTable()
        self.children: "list[_Node] | None" = None


class MXCIFQuadTree:
    """Non-replicating quad-tree: each object at its lowest covering node."""

    #: EXPLAIN accounting mode: unique placement, no duplicates.
    dedup_strategy = "none"

    def __init__(
        self, domain: "Rect | None" = None, max_depth: int = DEFAULT_MAX_DEPTH
    ):
        if max_depth < 0:
            raise InvalidGridError(f"max_depth must be >= 0, got {max_depth}")
        self.domain = domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0)
        self.max_depth = max_depth
        self._root = _Node(
            self.domain.xl, self.domain.yl, self.domain.xu, self.domain.yu, 0
        )
        self._n_objects = 0

    @classmethod
    def build(
        cls,
        data: RectDataset,
        max_depth: int = DEFAULT_MAX_DEPTH,
        domain: "Rect | None" = None,
    ) -> "MXCIFQuadTree":
        tree = cls(domain, max_depth)
        for i in range(len(data)):
            tree._insert_entry(
                float(data.xl[i]),
                float(data.yl[i]),
                float(data.xu[i]),
                float(data.yu[i]),
                i,
            )
        tree._n_objects = len(data)
        return tree

    def insert(self, rect: Rect, obj_id: "int | None" = None) -> int:
        if obj_id is None:
            obj_id = self._n_objects
        self._n_objects = max(self._n_objects, obj_id + 1)
        self._insert_entry(rect.xl, rect.yl, rect.xu, rect.yu, obj_id)
        return obj_id

    def _insert_entry(
        self, xl: float, yl: float, xu: float, yu: float, obj_id: int
    ) -> None:
        node = self._root
        while node.depth < self.max_depth:
            mx = (node.xl + node.xu) / 2.0
            my = (node.yl + node.yu) / 2.0
            # Which single child fully covers the object, if any?
            if xu < mx:
                child_ix = 0
            elif xl >= mx:
                child_ix = 1
            else:
                break  # crosses the vertical split line: stays here
            if yu < my:
                child_iy = 0
            elif yl >= my:
                child_iy = 1
            else:
                break  # crosses the horizontal split line
            if node.children is None:
                node.children = [
                    _Node(node.xl, node.yl, mx, my, node.depth + 1),
                    _Node(mx, node.yl, node.xu, my, node.depth + 1),
                    _Node(node.xl, my, mx, node.yu, node.depth + 1),
                    _Node(mx, my, node.xu, node.yu, node.depth + 1),
                ]
            node = node.children[2 * child_iy + child_ix]
        node.table.append(xl, yl, xu, yu, obj_id)

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return self._n_objects

    @property
    def replica_count(self) -> int:
        """Stored entries; equals the object count (no replication)."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += len(node.table)
            if node.children is not None:
                stack.extend(node.children)
        return total

    def __repr__(self) -> str:
        return f"MXCIFQuadTree(objects={self._n_objects})"

    def explain_partitions(
        self, window: Rect
    ) -> list[tuple[Rect, np.ndarray]]:
        """EXPLAIN introspection: ``(quadrant rect, stored ids)`` for
        every node with entries a window scan of ``window`` visits."""
        out: list[tuple[Rect, np.ndarray]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if (
                node.xu < window.xl
                or node.xl > window.xu
                or node.yu < window.yl
                or node.yl > window.yu
            ):
                continue
            ids = node.table.columns()[4]
            if ids.shape[0]:
                out.append((Rect(node.xl, node.yl, node.xu, node.yu), ids))
            if node.children is not None:
                stack.extend(node.children)
        return out

    # -- queries --------------------------------------------------------------------

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Window query; no deduplication needed (objects stored once)."""
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                stack = [self._root]
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                self._scan_window(stack, window, pieces, stats)
            with trace_span("dedup"):
                pass  # objects stored once (smallest covering quadrant)
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _scan_window(self, stack, window, pieces, stats) -> None:
        while stack:
            node = stack.pop()
            if (
                node.xu < window.xl
                or node.xl > window.xu
                or node.yu < window.yl
                or node.yl > window.yu
            ):
                continue
            xl, yl, xu, yu, ids = node.table.columns()
            if ids.shape[0]:
                if stats is not None:
                    stats.partitions_visited += 1
                    stats.rects_scanned += ids.shape[0]
                    stats.comparisons += 4 * ids.shape[0]
                    stats.visit_class("node")
                mask = (
                    (xu >= window.xl)
                    & (xl <= window.xu)
                    & (yu >= window.yl)
                    & (yl <= window.yu)
                )
                pieces.append(ids[mask])
            if node.children is not None:
                stack.extend(node.children)
