"""Replicating quad-tree with reference-point deduplication (Table V).

The paper's quad-tree competitor [11]: every object MBR is assigned to all
leaf quadrants it intersects.  When a quadrant's contents exceed a maximum
capacity (paper-tuned to 1000) it splits into four children — objects are
redistributed and replicated across the division borders — unless a
maximum depth (12) has been reached, which caps splitting under extreme
skew.  Window queries use the reference-point technique [9] to eliminate
the duplicates replication causes.

Quadrants are half-open like grid tiles (:mod:`repro.grid.base`), so the
reference point of a result lies in exactly one leaf.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import InvalidGridError
from repro.geometry.mbr import Rect, max_dist_point_rect, min_dist_point_rect
from repro.grid.storage import TileTable
from repro.obs.tracing import span as trace_span
from repro.stats import QueryStats

__all__ = ["QuadTree", "DEFAULT_CAPACITY", "DEFAULT_MAX_DEPTH"]

DEFAULT_CAPACITY = 1000
DEFAULT_MAX_DEPTH = 12

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class _Node:
    """One quadrant: a leaf with a column table, or four children."""

    __slots__ = ("xl", "yl", "xu", "yu", "depth", "table", "children")

    def __init__(self, xl: float, yl: float, xu: float, yu: float, depth: int):
        self.xl = xl
        self.yl = yl
        self.xu = xu
        self.yu = yu
        self.depth = depth
        self.table: "TileTable | None" = TileTable()
        self.children: "list[_Node] | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def intersects_window(self, w: Rect) -> bool:
        return not (
            self.xu < w.xl or self.xl > w.xu or self.yu < w.yl or self.yl > w.yu
        )


class QuadTree:
    """Space-oriented quad-tree over object MBRs (the paper's SOP rival)."""

    def __init__(
        self,
        domain: "Rect | None" = None,
        capacity: int = DEFAULT_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ):
        if capacity < 1:
            raise InvalidGridError(f"capacity must be >= 1, got {capacity}")
        if max_depth < 0:
            raise InvalidGridError(f"max_depth must be >= 0, got {max_depth}")
        self.domain = domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0)
        self.capacity = capacity
        self.max_depth = max_depth
        self._root = _Node(
            self.domain.xl, self.domain.yl, self.domain.xu, self.domain.yu, 0
        )
        self._n_objects = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: RectDataset,
        capacity: int = DEFAULT_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
        domain: "Rect | None" = None,
    ) -> "QuadTree":
        tree = cls(domain, capacity, max_depth)
        for i in range(len(data)):
            tree._insert_entry(
                float(data.xl[i]),
                float(data.yl[i]),
                float(data.xu[i]),
                float(data.yu[i]),
                i,
            )
        tree._n_objects = len(data)
        return tree

    def insert(self, rect: Rect, obj_id: "int | None" = None) -> int:
        if obj_id is None:
            obj_id = self._n_objects
        self._n_objects = max(self._n_objects, obj_id + 1)
        self._insert_entry(rect.xl, rect.yl, rect.xu, rect.yu, obj_id)
        return obj_id

    def _entry_in_node(
        self, node: _Node, xl: float, yl: float, xu: float, yu: float
    ) -> bool:
        """Half-open quadrant membership test.

        Quadrants are ``[xl, xu) x [yl, yu)`` — closed at the domain's far
        edges — so an entry touching only a quadrant's right/bottom border
        belongs to the neighbour, keeping leaf regions disjoint exactly
        like grid tiles.
        """
        if xu < node.xl or yu < node.yl:
            return False
        ok_x = xl < node.xu or (xl <= node.xu and node.xu >= self.domain.xu)
        ok_y = yl < node.yu or (yl <= node.yu and node.yu >= self.domain.yu)
        return ok_x and ok_y

    def _insert_entry(
        self, xl: float, yl: float, xu: float, yu: float, obj_id: int
    ) -> None:
        """Replicate the entry into every intersecting leaf, splitting."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not self._entry_in_node(node, xl, yl, xu, yu):
                continue
            if node.is_leaf:
                assert node.table is not None
                node.table.append(xl, yl, xu, yu, obj_id)
                if len(node.table) > self.capacity and node.depth < self.max_depth:
                    self._split(node)
                continue
            stack.extend(node.children)  # type: ignore[arg-type]

    def _split(self, node: _Node) -> None:
        """Split a leaf into four children and redistribute its entries."""
        mx = (node.xl + node.xu) / 2.0
        my = (node.yl + node.yu) / 2.0
        d = node.depth + 1
        children = [
            _Node(node.xl, node.yl, mx, my, d),
            _Node(mx, node.yl, node.xu, my, d),
            _Node(node.xl, my, mx, node.yu, d),
            _Node(mx, my, node.xu, node.yu, d),
        ]
        assert node.table is not None
        xl, yl, xu, yu, ids = node.table.columns()
        node.table = None
        node.children = children
        for k in range(ids.shape[0]):
            exl = float(xl[k])
            eyl = float(yl[k])
            exu = float(xu[k])
            eyu = float(yu[k])
            oid = int(ids[k])
            for child in children:
                if self._entry_in_node(child, exl, eyl, exu, eyu):
                    self._leaf_append(child, exl, eyl, exu, eyu, oid)
        for child in children:
            assert child.table is not None
            if len(child.table) > self.capacity and child.depth < self.max_depth:
                self._split(child)

    @staticmethod
    def _leaf_append(
        node: _Node, xl: float, yl: float, xu: float, yu: float, oid: int
    ) -> None:
        assert node.table is not None
        node.table.append(xl, yl, xu, yu, oid)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return self._n_objects

    @property
    def replica_count(self) -> int:
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                total += len(node.table)  # type: ignore[arg-type]
            else:
                stack.extend(node.children)  # type: ignore[arg-type]
        return total

    @property
    def leaf_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                stack.extend(node.children)  # type: ignore[arg-type]
        return count

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(objects={self._n_objects}, "
            f"leaves={self.leaf_count}, replicas={self.replica_count})"
        )

    # -- queries ----------------------------------------------------------------

    def _leaves_for_window(self, window: Rect):
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.intersects_window(window):
                continue
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.children)  # type: ignore[arg-type]

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Window query with reference-point duplicate elimination [9]."""
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                leaves = list(self._leaves_for_window(window))
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                for node in leaves:
                    piece = self._scan_leaf(node, window, stats)
                    if piece is not None:
                        pieces.append(piece)
            with trace_span("dedup"):
                # Reference-point dedup runs interleaved per leaf inside the
                # scan (see _scan_leaf); counted via stats.dedup_checks.
                pass
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _scan_leaf(
        self, node: _Node, window: Rect, stats: "QueryStats | None"
    ) -> "np.ndarray | None":
        assert node.table is not None
        xl, yl, xu, yu, ids = node.table.columns()
        if ids.shape[0] == 0:
            return None
        if stats is not None:
            stats.partitions_visited += 1
            stats.rects_scanned += ids.shape[0]
            stats.comparisons += 4 * ids.shape[0]
        mask = (
            (xu >= window.xl)
            & (xl <= window.xu)
            & (yu >= window.yl)
            & (yl <= window.yu)
        )
        cand = np.flatnonzero(mask)
        if cand.shape[0] == 0:
            return None
        # Reference-point test: keep a result only in the leaf containing
        # the lower corner of its intersection with the window.
        px = np.maximum(xl[cand], window.xl)
        py = np.maximum(yl[cand], window.yl)
        at_domain_x = node.xu >= self.domain.xu
        at_domain_y = node.yu >= self.domain.yu
        keep = (
            (px >= node.xl)
            & ((px < node.xu) | at_domain_x)
            & (py >= node.yl)
            & ((py < node.yu) | at_domain_y)
        )
        if stats is not None:
            stats.dedup_checks += cand.shape[0]
            stats.duplicates_generated += int(cand.shape[0] - keep.sum())
        return ids[cand[keep]]

    def disk_query(
        self, query: DiskQuery, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Disk query via a window query over the disk's MBR (Section VII).

        Results in leaves fully covered by the disk are reported directly;
        the rest are distance-verified.
        """
        with trace_span("query.disk"):
            with trace_span("filter.lookup"):
                window = query.mbr()
                radius = query.radius
                leaves = list(self._leaves_for_window(window))
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                for node in leaves:
                    piece = self._scan_disk_leaf(node, query, window, radius, stats)
                    if piece is not None:
                        pieces.append(piece)
            with trace_span("dedup"):
                # Reference-point dedup interleaved per leaf during the scan.
                pass
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _scan_disk_leaf(
        self,
        node: "_Node",
        query: DiskQuery,
        window: Rect,
        radius: float,
        stats: "QueryStats | None",
    ) -> "np.ndarray | None":
        assert node.table is not None
        xl, yl, xu, yu, ids = node.table.columns()
        if ids.shape[0] == 0:
            return None
        if stats is not None:
            stats.partitions_visited += 1
            stats.rects_scanned += ids.shape[0]
        mask = (
            (xu >= window.xl)
            & (xl <= window.xu)
            & (yu >= window.yl)
            & (yl <= window.yu)
        )
        px = np.maximum(xl, window.xl)
        py = np.maximum(yl, window.yl)
        at_domain_x = node.xu >= self.domain.xu
        at_domain_y = node.yu >= self.domain.yu
        mask &= (
            (px >= node.xl)
            & ((px < node.xu) | at_domain_x)
            & (py >= node.yl)
            & ((py < node.yu) | at_domain_y)
        )
        cand = np.flatnonzero(mask)
        if cand.shape[0] == 0:
            return None
        region = Rect(node.xl, node.yl, node.xu, node.yu)
        if max_dist_point_rect(query.cx, query.cy, region) <= radius:
            return ids[cand]
        dx = np.maximum(np.maximum(xl[cand] - query.cx, 0.0), query.cx - xu[cand])
        dy = np.maximum(np.maximum(yl[cand] - query.cy, 0.0), query.cy - yu[cand])
        within = dx * dx + dy * dy <= radius * radius
        return ids[cand[within]]
