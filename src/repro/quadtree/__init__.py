"""Quad-tree family: replicating quad-tree, its two-layer variant, MXCIF.

All three are Table V competitors; :class:`TwoLayerQuadTree` demonstrates
that the paper's secondary partitioning boosts any SOP index, not just
grids.
"""

from repro.quadtree.mxcif import MXCIFQuadTree
from repro.quadtree.quadtree import DEFAULT_CAPACITY, DEFAULT_MAX_DEPTH, QuadTree
from repro.quadtree.two_layer_quadtree import TwoLayerQuadTree

__all__ = [
    "QuadTree",
    "TwoLayerQuadTree",
    "MXCIFQuadTree",
    "DEFAULT_CAPACITY",
    "DEFAULT_MAX_DEPTH",
]
