"""Simulated distributed spatial engine (GeoSpark stand-in, Fig. 12)."""

from repro.distributed.cluster import (
    DEFAULT_JOB_OVERHEAD_S,
    DEFAULT_TASK_OVERHEAD_S,
    QueryOutcome,
    SimulatedSpatialCluster,
)

__all__ = [
    "SimulatedSpatialCluster",
    "QueryOutcome",
    "DEFAULT_JOB_OVERHEAD_S",
    "DEFAULT_TASK_OVERHEAD_S",
]
