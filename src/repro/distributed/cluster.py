"""Simulated distributed spatial engine — the Fig. 12 GeoSpark stand-in.

The paper compares its in-memory 2-layer grid against GeoSpark [34], a
Spark-based distributed system, and finds the grid >= 3 orders of
magnitude faster per query at benchmark scale, consistent with [24]'s
finding that such systems sustain "at most several hundred range queries
per minute".  The dominating cost is *not* the spatial search — it is the
cluster framework's per-job coordination: job scheduling, task dispatch,
result collection.

Since no Spark cluster is available offline, this module reproduces that
cost structure as a discrete-overhead model (DESIGN.md, substitution 4):

* the data is spatially partitioned (uniform grid partitioner, the
  GeoSpark default family) and a *real* STR R-tree is built per partition
  (GeoSpark's best-performing local index, used by the paper);
* a window query *really* executes against the relevant partitions'
  R-trees; the measured compute time is combined with calibrated
  per-job scheduling and per-task dispatch overheads drawn from the
  published throughput envelope of [24];
* multi-threaded operation divides the task-level work across ``threads``
  like Spark's executor cores would, while the job-level overhead stays
  serial — which is exactly why the paper's Fig. 12 gap barely narrows as
  threads increase.

The returned :class:`QueryOutcome` carries both the true result ids and
the simulated end-to-end latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import InvalidGridError, InvalidQueryError
from repro.geometry.mbr import Rect
from repro.grid.base import GridPartitioner, replicate
from repro.grid.storage import group_rows
from repro.obs.metrics import Histogram
from repro.obs.tracing import span as trace_span
from repro.rtree.rtree import RTree
from repro.stats import QueryStats

__all__ = ["QueryOutcome", "SimulatedSpatialCluster", "WorkerStats"]

#: default per-job scheduling overhead (s).  [24] reports at most several
#: hundred range queries *per minute* end-to-end for GeoSpark-class
#: systems; 150 ms/job sits in the middle of that envelope (~400/min).
DEFAULT_JOB_OVERHEAD_S = 0.150

#: default per-task dispatch/serialisation overhead (s).
DEFAULT_TASK_OVERHEAD_S = 0.004


@dataclass(frozen=True)
class QueryOutcome:
    """Result of one simulated distributed query."""

    ids: np.ndarray
    #: simulated end-to-end latency (seconds): overheads + compute.
    latency_s: float
    #: partitions (tasks) the query touched.
    tasks: int
    #: measured local-search compute time (seconds, all tasks).
    compute_s: float


@dataclass
class WorkerStats:
    """Per-partition ("worker") load counters, aggregated over queries."""

    #: tasks dispatched to this worker (queries that touched it).
    tasks: int = 0
    #: measured local R-tree search time on this worker (seconds).
    compute_s: float = 0.0
    #: result ids this worker contributed (before cluster-level dedup).
    hits: int = 0
    #: objects stored on this worker (with border replication).
    objects: int = 0

    def as_dict(self) -> dict:
        return {
            "tasks": self.tasks,
            "compute_s": self.compute_s,
            "hits": self.hits,
            "objects": self.objects,
        }


class SimulatedSpatialCluster:
    """GeoSpark-like engine: partitioned data + per-partition R-trees.

    Parameters
    ----------
    data:
        the dataset to distribute.
    partitions_per_dim:
        spatial partitioning granularity (``p x p`` partitions).  Objects
        crossing partition borders are replicated; duplicate results are
        eliminated with the reference-point test, as distributed systems
        do [24].
    job_overhead_s / task_overhead_s:
        calibrated coordination overheads (see module docstring).
    """

    def __init__(
        self,
        data: RectDataset,
        partitions_per_dim: int = 8,
        job_overhead_s: float = DEFAULT_JOB_OVERHEAD_S,
        task_overhead_s: float = DEFAULT_TASK_OVERHEAD_S,
        fanout: int = 16,
    ):
        if partitions_per_dim < 1:
            raise InvalidGridError(
                f"partitions_per_dim must be >= 1, got {partitions_per_dim}"
            )
        if job_overhead_s < 0 or task_overhead_s < 0:
            raise InvalidGridError("overheads must be >= 0")
        self.job_overhead_s = job_overhead_s
        self.task_overhead_s = task_overhead_s
        self.grid = GridPartitioner(partitions_per_dim, partitions_per_dim)
        self._partitions: dict[int, tuple[RTree, np.ndarray]] = {}
        rep = replicate(data, self.grid)
        self._workers: dict[int, WorkerStats] = {}
        for tile_id, rows in group_rows(rep.tile_ids):
            obj = rep.obj_ids[rows]
            local = data.take(obj)
            self._partitions[tile_id] = (RTree.build(local, fanout), obj)
            self._workers[tile_id] = WorkerStats(objects=obj.shape[0])
        self._n_objects = len(data)
        self._latency = Histogram("cluster.window.latency_ms")
        self._queries = 0

    def __len__(self) -> int:
        return self._n_objects

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    def __repr__(self) -> str:
        return (
            f"SimulatedSpatialCluster(objects={self._n_objects}, "
            f"partitions={self.partition_count}, "
            f"job_overhead={self.job_overhead_s * 1e3:.0f}ms)"
        )

    def window_query(
        self,
        window: Rect,
        threads: int = 1,
        stats: "QueryStats | None" = None,
    ) -> QueryOutcome:
        """One end-to-end window query against the simulated cluster.

        The spatial work (per-partition R-tree search + reference-point
        dedup) is executed for real and timed; job/task overheads are
        added per the calibrated model.  ``threads`` divides the parallel
        portion (task compute + dispatch) but never the serial job
        overhead — Amdahl does the rest.
        """
        if threads < 1:
            raise InvalidQueryError(f"threads must be >= 1, got {threads}")
        with trace_span("query.window"):
            with trace_span("cluster.plan"):
                ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
            pieces: list[np.ndarray] = []
            tasks = 0
            t0 = time.perf_counter()
            with trace_span("cluster.dispatch"):
                for iy in range(iy0, iy1 + 1):
                    base = iy * self.grid.nx
                    for ix in range(ix0, ix1 + 1):
                        tile_id = base + ix
                        part = self._partitions.get(tile_id)
                        if part is None:
                            continue
                        tasks += 1
                        tree, obj_ids = part
                        w0 = time.perf_counter()
                        local_hits = tree.window_query(window, stats)
                        worker = self._workers[tile_id]
                        worker.tasks += 1
                        worker.compute_s += time.perf_counter() - w0
                        worker.hits += local_hits.shape[0]
                        if local_hits.shape[0]:
                            pieces.append(obj_ids[local_hits])
            # Result collection: hash-deduplicate across partitions (objects
            # crossing partition borders are replicated, like in GeoSpark).
            with trace_span("dedup"):
                if pieces:
                    raw = np.concatenate(pieces)
                    ids = np.unique(raw)
                    if stats is not None:
                        stats.dedup_checks += raw.shape[0]
                        stats.duplicates_generated += int(
                            raw.shape[0] - ids.shape[0]
                        )
                else:
                    ids = np.empty(0, dtype=np.int64)
            compute_s = time.perf_counter() - t0
            parallel_s = compute_s + tasks * self.task_overhead_s
            latency = self.job_overhead_s + parallel_s / threads
            self._queries += 1
            self._latency.observe(latency * 1e3)
            return QueryOutcome(
                ids=ids, latency_s=latency, tasks=tasks, compute_s=compute_s
            )

    def throughput(self, windows: list[Rect], threads: int = 1) -> float:
        """End-to-end queries/second over a workload (simulated latency)."""
        total = 0.0
        for w in windows:
            total += self.window_query(w, threads).latency_s
        return len(windows) / total if total > 0 else float("inf")

    # -- observability -----------------------------------------------------------

    def cluster_report(self) -> dict:
        """Aggregate per-worker load into a cluster-level report.

        Returns a dict with cluster totals (queries served, simulated
        latency percentiles, task/compute sums), per-worker rows keyed by
        partition tile id, and a load-skew indicator (max/mean tasks per
        worker — the distributed analogue of partition balance).
        """
        workers = {tid: ws.as_dict() for tid, ws in self._workers.items()}
        task_counts = [ws.tasks for ws in self._workers.values()]
        total_tasks = sum(task_counts)
        mean_tasks = total_tasks / max(len(task_counts), 1)
        return {
            "queries": self._queries,
            "partitions": self.partition_count,
            "latency_ms": self._latency.summary(),
            "total_tasks": total_tasks,
            "total_compute_s": sum(ws.compute_s for ws in self._workers.values()),
            "total_hits": sum(ws.hits for ws in self._workers.values()),
            "load_skew": (max(task_counts) / mean_tasks) if mean_tasks else 0.0,
            "workers": workers,
        }

    def reset_metrics(self) -> None:
        """Zero the per-worker load counters and the latency histogram."""
        for ws in self._workers.values():
            ws.tasks = 0
            ws.compute_s = 0.0
            ws.hits = 0
        self._latency.reset()
        self._queries = 0
