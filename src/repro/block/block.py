"""BLOCK-style hierarchy-of-grids index (Olma et al. [23]; Table V).

BLOCK organises objects in a hierarchy of uniform grids: level ``l`` is a
``2**l x 2**l`` grid and every object is stored **exactly once** — at the
deepest level whose cell extent still covers the object's own extent, in
the cell containing the object's lower corner.  Placement is unique, so
BLOCK is data-oriented in the paper's taxonomy (partition contents are
disjoint) and queries need no deduplication.

A window query must probe *every* level: at level ``l`` an object
intersecting the window may have its lower corner up to one cell to the
low side of it, so the probed cell range is the window's, extended by one
cell at the low end per axis.  The per-level probing (and the pile-up of
large objects near the root levels) is exactly the structural overhead
that made BLOCK uncompetitive in the paper's measurements; the original
system was also built for 3D data, which this simplified reimplementation
notes but does not replicate.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import InvalidGridError
from repro.geometry.mbr import Rect
from repro.grid.storage import TileTable
from repro.obs.tracing import span as trace_span
from repro.stats import QueryStats

__all__ = ["BlockIndex"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)

DEFAULT_LEVELS = 9


class BlockIndex:
    """Hierarchy of uniform grids with unique (DOP) object placement."""

    #: EXPLAIN accounting mode: unique placement, no duplicates.
    dedup_strategy = "none"

    def __init__(self, levels: int = DEFAULT_LEVELS, domain: "Rect | None" = None):
        if levels < 1:
            raise InvalidGridError(f"levels must be >= 1, got {levels}")
        self.levels = levels
        self.domain = domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0)
        # one dict of cells per level: cell id -> TileTable
        self._grids: list[dict[int, TileTable]] = [dict() for _ in range(levels)]
        self._n_objects = 0

    # -- placement ---------------------------------------------------------

    def _level_for(self, width: float, height: float) -> int:
        """Deepest level whose cell extent covers (width, height)."""
        level = self.levels - 1
        while level > 0:
            k = 1 << level
            if self.domain.width / k >= width and self.domain.height / k >= height:
                return level
            level -= 1
        return 0

    def _cell_id(self, level: int, x: float, y: float) -> int:
        k = 1 << level
        ix = min(max(int((x - self.domain.xl) / (self.domain.width / k)), 0), k - 1)
        iy = min(max(int((y - self.domain.yl) / (self.domain.height / k)), 0), k - 1)
        return iy * k + ix

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: RectDataset,
        levels: int = DEFAULT_LEVELS,
        domain: "Rect | None" = None,
    ) -> "BlockIndex":
        index = cls(levels, domain)
        for i in range(len(data)):
            index._insert_entry(
                float(data.xl[i]),
                float(data.yl[i]),
                float(data.xu[i]),
                float(data.yu[i]),
                i,
            )
        index._n_objects = len(data)
        return index

    def insert(self, rect: Rect, obj_id: "int | None" = None) -> int:
        if obj_id is None:
            obj_id = self._n_objects
        self._n_objects = max(self._n_objects, obj_id + 1)
        self._insert_entry(rect.xl, rect.yl, rect.xu, rect.yu, obj_id)
        return obj_id

    def _insert_entry(
        self, xl: float, yl: float, xu: float, yu: float, obj_id: int
    ) -> None:
        level = self._level_for(xu - xl, yu - yl)
        cell = self._cell_id(level, xl, yl)
        table = self._grids[level].get(cell)
        if table is None:
            table = TileTable()
            self._grids[level][cell] = table
        table.append(xl, yl, xu, yu, obj_id)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return self._n_objects

    @property
    def replica_count(self) -> int:
        """Stored entries; equals the object count (unique placement)."""
        return sum(
            len(t) for grid in self._grids for t in grid.values()
        )

    def __repr__(self) -> str:
        return f"BlockIndex(objects={self._n_objects}, levels={self.levels})"

    def explain_partitions(
        self, window: Rect
    ) -> list[tuple[Rect, np.ndarray]]:
        """EXPLAIN introspection: ``(cell rect, stored ids)`` for every
        non-empty cell a window probe of ``window`` touches, across all
        levels (same one-cell low-side extension as the scan)."""
        out: list[tuple[Rect, np.ndarray]] = []
        for level, grid in enumerate(self._grids):
            if not grid:
                continue
            k = 1 << level
            cw = self.domain.width / k
            ch = self.domain.height / k
            ix0 = min(max(int((window.xl - cw - self.domain.xl) / cw), 0), k - 1)
            ix1 = min(max(int((window.xu - self.domain.xl) / cw), 0), k - 1)
            iy0 = min(max(int((window.yl - ch - self.domain.yl) / ch), 0), k - 1)
            iy1 = min(max(int((window.yu - self.domain.yl) / ch), 0), k - 1)
            for iy in range(iy0, iy1 + 1):
                base = iy * k
                for ix in range(ix0, ix1 + 1):
                    table = grid.get(base + ix)
                    if table is None or len(table) == 0:
                        continue
                    rect = Rect(
                        self.domain.xl + ix * cw,
                        self.domain.yl + iy * ch,
                        self.domain.xl + (ix + 1) * cw,
                        self.domain.yl + (iy + 1) * ch,
                    )
                    out.append((rect, table.columns()[4]))
        return out

    # -- queries -------------------------------------------------------------------

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Window query probing every level of the hierarchy."""
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                # Per-level tile ranges are computed interleaved with the
                # scan below; nothing to hoist.
                pass
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                self._scan_window_levels(window, pieces, stats)
            with trace_span("dedup"):
                pass  # objects stored once (at their size-matched level)
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _scan_window_levels(self, window, pieces, stats) -> None:
        for level, grid in enumerate(self._grids):
            if not grid:
                continue
            k = 1 << level
            cw = self.domain.width / k
            ch = self.domain.height / k
            ix0 = min(max(int((window.xl - cw - self.domain.xl) / cw), 0), k - 1)
            ix1 = min(max(int((window.xu - self.domain.xl) / cw), 0), k - 1)
            iy0 = min(max(int((window.yl - ch - self.domain.yl) / ch), 0), k - 1)
            iy1 = min(max(int((window.yu - self.domain.yl) / ch), 0), k - 1)
            for iy in range(iy0, iy1 + 1):
                base = iy * k
                for ix in range(ix0, ix1 + 1):
                    table = grid.get(base + ix)
                    if table is None:
                        continue
                    xl, yl, xu, yu, ids = table.columns()
                    if stats is not None:
                        stats.partitions_visited += 1
                        stats.rects_scanned += ids.shape[0]
                        stats.comparisons += 4 * ids.shape[0]
                        stats.visit_class(f"L{level}")
                    mask = (
                        (xu >= window.xl)
                        & (xl <= window.xu)
                        & (yu >= window.yl)
                        & (yl <= window.yu)
                    )
                    hit = ids[mask]
                    if hit.shape[0]:
                        pieces.append(hit)

    def disk_query(
        self, query: DiskQuery, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Disk query: per-level probe over the disk's MBR + distance test."""
        with trace_span("query.disk"):
            with trace_span("filter.lookup"):
                window = query.mbr()
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                self._scan_disk_levels(query, window, pieces, stats)
            with trace_span("dedup"):
                pass  # objects stored once (at their size-matched level)
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _scan_disk_levels(self, query, window, pieces, stats) -> None:
        r2 = query.radius * query.radius
        cx, cy = query.cx, query.cy
        for level, grid in enumerate(self._grids):
            if not grid:
                continue
            k = 1 << level
            cw = self.domain.width / k
            ch = self.domain.height / k
            ix0 = min(max(int((window.xl - cw - self.domain.xl) / cw), 0), k - 1)
            ix1 = min(max(int((window.xu - self.domain.xl) / cw), 0), k - 1)
            iy0 = min(max(int((window.yl - ch - self.domain.yl) / ch), 0), k - 1)
            iy1 = min(max(int((window.yu - self.domain.yl) / ch), 0), k - 1)
            for iy in range(iy0, iy1 + 1):
                base = iy * k
                for ix in range(ix0, ix1 + 1):
                    table = grid.get(base + ix)
                    if table is None:
                        continue
                    xl, yl, xu, yu, ids = table.columns()
                    if stats is not None:
                        stats.partitions_visited += 1
                        stats.rects_scanned += ids.shape[0]
                        stats.comparisons += 2 * ids.shape[0]
                        stats.visit_class(f"L{level}")
                    dx = np.maximum(np.maximum(xl - cx, 0.0), cx - xu)
                    dy = np.maximum(np.maximum(yl - cy, 0.0), cy - yu)
                    hit = ids[dx * dx + dy * dy <= r2]
                    if hit.shape[0]:
                        pieces.append(hit)
