"""BLOCK-style hierarchy-of-grids DOP competitor."""

from repro.block.block import BlockIndex

__all__ = ["BlockIndex"]
