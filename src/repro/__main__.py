"""Command-line self-check and demo: ``python -m repro``.

Runs a miniature end-to-end exercise of the library — build every index
over one synthetic dataset, cross-validate their answers, and print a
small throughput table — so users can verify an installation in seconds.

Options::

    python -m repro                 # default demo (50K rectangles)
    python -m repro --n 200000      # bigger dataset
    python -m repro --seed 3        # different data
    python -m repro --profile       # add a per-phase span-tree breakdown
    python -m repro --explain       # print EXPLAIN plans for sample queries
    python -m repro --explain --json   # the same plans as JSON
    python -m repro --serve 127.0.0.1:7207   # run the query service
    python -m repro --serve 127.0.0.1:7207 --index built.idx  # from disk
    python -m repro --serve 127.0.0.1:7207 --metrics-port 9209  # + Prometheus
    python -m repro --top 127.0.0.1:7207     # live console against a server
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import (
    BlockIndex,
    KDTree,
    MXCIFQuadTree,
    OneLayerGrid,
    QuadTree,
    RStarTree,
    RTree,
    TwoLayerGrid,
    TwoLayerKDTree,
    TwoLayerPlusGrid,
    TwoLayerQuadTree,
    __version__,
)
from repro.datasets import generate_uniform_rects, generate_window_queries


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Self-check for the two-layer partitioning library.",
    )
    parser.add_argument("--n", type=int, default=50_000, help="dataset size")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    parser.add_argument(
        "--queries", type=int, default=300, help="window queries to time"
    )
    parser.add_argument(
        "--skip-slow",
        action="store_true",
        help="skip the insertion-built R*-tree and MXCIF (slow to build)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="re-run the workload under tracing and print a span tree "
        "with per-phase timings plus latency percentiles",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print EXPLAIN plans (per-class tile scans, candidate flow, "
        "duplicate accounting) for a sample window/disk/kNN/join instead "
        "of the self-check",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --explain or --profile: emit JSON instead of (or in "
        "addition to) the console rendering",
    )
    parser.add_argument(
        "--serve",
        metavar="HOST:PORT",
        help="serve queries over TCP (newline-delimited JSON protocol); "
        "PORT 0 picks a free port, announced on stdout",
    )
    parser.add_argument(
        "--index",
        metavar="PATH",
        help="with --serve: start from a SpatialCollection.save() archive "
        "instead of building a synthetic dataset on boot",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=64,
        help="with --serve: grid partitions per dimension (default 64)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=128,
        help="with --serve: admission-control read queue depth",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="with --serve: micro-batch size cap (1 disables batching)",
    )
    parser.add_argument(
        "--coalesce-ms",
        type=float,
        default=2.0,
        help="with --serve: micro-batch coalescing window in ms",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="with --serve: scatter-gather across K shard worker "
        "processes mapping the index from shared memory (1 = "
        "single-process, the default)",
    )
    parser.add_argument(
        "--telemetry",
        choices=("on", "off"),
        default="on",
        help="with --serve: live telemetry (request traces, tile heat, "
        "slow-query log, per-verb latency histograms; default on)",
    )
    parser.add_argument(
        "--slowlog-ms",
        type=float,
        default=100.0,
        help="with --serve: capture requests slower than this in the "
        "slow-query log (default 100)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="with --serve: also serve Prometheus text on "
        "http://127.0.0.1:PORT/metrics (0 picks a free port, announced "
        "on stdout)",
    )
    parser.add_argument(
        "--top",
        metavar="HOST:PORT",
        help="live console against a running server (qps, per-verb "
        "latency percentiles, hot tiles); refresh with --interval",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="with --top: refresh interval in seconds (default 2)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="with --top: stop after N refreshes (default: run until ^C)",
    )
    args = parser.parse_args(argv)

    if args.top:
        return _top(args)
    if args.serve:
        return _serve(args)
    if args.explain:
        return _print_explain(args)

    print(f"repro {__version__} self-check: n={args.n:,}, seed={args.seed}")
    data = generate_uniform_rects(args.n, area=1e-8, seed=args.seed)
    queries = generate_window_queries(data, args.queries, 0.1, seed=args.seed)

    methods = [
        ("2-layer", lambda: TwoLayerGrid.build(data, partitions_per_dim=64)),
        ("2-layer+", lambda: TwoLayerPlusGrid.build(data, partitions_per_dim=64)),
        ("1-layer", lambda: OneLayerGrid.build(data, partitions_per_dim=64)),
        ("quad-tree", lambda: QuadTree.build(data)),
        ("quad-tree 2L", lambda: TwoLayerQuadTree.build(data)),
        ("kd-tree", lambda: KDTree.build(data)),
        ("kd-tree 2L", lambda: TwoLayerKDTree.build(data)),
        ("R-tree", lambda: RTree.build(data)),
        ("BLOCK", lambda: BlockIndex.build(data)),
    ]
    if not args.skip_slow:
        methods.append(("R*-tree", lambda: RStarTree.build(data)))
        methods.append(("MXCIF", lambda: MXCIFQuadTree.build(data)))

    reference = None
    print(f"\n{'method':<14} {'build[s]':>9} {'throughput[q/s]':>16}")
    print("-" * 42)
    for name, build in methods:
        t0 = time.perf_counter()
        index = build()
        build_s = time.perf_counter() - t0
        got = set(index.window_query(queries[0]).tolist())
        if reference is None:
            reference = got
        if got != reference:
            print(f"{name:<14} FAILED cross-validation!", file=sys.stderr)
            return 1
        t0 = time.perf_counter()
        for w in queries:
            index.window_query(w)
        qps = len(queries) / (time.perf_counter() - t0)
        print(f"{name:<14} {build_s:>9.2f} {qps:>16,.0f}")

    print("\nall indexes agree — installation OK")

    if args.profile:
        _print_profile(data, queries, as_json=args.json)
    return 0


def _serve(args) -> int:
    """Run the concurrent query service (``--serve HOST:PORT``).

    Announces ``serving on HOST:PORT ...`` on stdout once the socket is
    bound (PORT resolves 0 to the picked port), then serves until
    SIGTERM/SIGINT, draining in-flight requests before exiting 0.
    """
    import asyncio

    from repro.api import SpatialCollection
    from repro.server import ServerConfig, SpatialQueryService

    host, sep, port = args.serve.rpartition(":")
    if not sep or not port.lstrip("-").isdigit():
        print(f"--serve expects HOST:PORT, got {args.serve!r}", file=sys.stderr)
        return 2
    boot: "dict[str, float]" = {}
    if args.index:
        t0 = time.perf_counter()
        col = SpatialCollection.load(args.index, timings=boot)
        boot["total_ms"] = (time.perf_counter() - t0) * 1e3
        source = args.index
    else:
        data = generate_uniform_rects(args.n, area=1e-6, seed=args.seed)
        col = SpatialCollection.from_dataset(
            data, partitions_per_dim=args.partitions
        )
        source = f"synthetic n={args.n} seed={args.seed}"
    config = ServerConfig(
        host=host,
        port=int(port),
        queue_depth=args.queue_depth,
        max_batch=args.max_batch,
        coalesce_ms=args.coalesce_ms,
        telemetry=args.telemetry == "on",
        slowlog_ms=args.slowlog_ms,
        metrics_port=args.metrics_port,
    )
    if args.shards > 1:
        from repro.shard import ShardedQueryService

        service: SpatialQueryService = ShardedQueryService(
            col.index, col.data, config, shards=args.shards
        )
    else:
        service = SpatialQueryService(col.index, col.data, config)
    for key, value in boot.items():
        # surfaces in the `stats` verb and /metrics as server.boot.*
        service.registry.gauge(f"server.boot.{key}").set(round(value, 3))

    def announce(svc: SpatialQueryService) -> None:
        bound_host, bound_port = svc.address
        print(
            f"serving on {bound_host}:{bound_port} "
            f"({source}, objects={len(col)}, "
            f"grid={col.index.grid.nx}x{col.index.grid.ny}, "
            f"max_batch={args.max_batch}, coalesce_ms={args.coalesce_ms}, "
            f"queue_depth={args.queue_depth}, telemetry={args.telemetry}, "
            f"shards={args.shards})",
            flush=True,
        )
        # after the serving line: spawn_server() keys on the first line
        if svc.metrics_http is not None:
            m_host, m_port = svc.metrics_http.address
            print(f"metrics on http://{m_host}:{m_port}/metrics", flush=True)
        if boot:
            print(
                f"boot from {source}: read={boot.get('read_ms', 0.0):.1f}ms "
                f"build={boot.get('build_ms', 0.0):.1f}ms "
                f"total={boot.get('total_ms', 0.0):.1f}ms",
                flush=True,
            )

    asyncio.run(service.run(ready=announce))
    print("drained and stopped", flush=True)
    return 0


def _top(args) -> int:
    """Run the live console (``--top HOST:PORT``) against a server."""
    from repro.server.admin import run_top

    host, sep, port = args.top.rpartition(":")
    if not sep or not port.isdigit():
        print(f"--top expects HOST:PORT, got {args.top!r}", file=sys.stderr)
        return 2
    try:
        run_top(
            host,
            int(port),
            interval_s=args.interval,
            iterations=args.iterations,
        )
    except KeyboardInterrupt:
        pass
    except (ConnectionError, OSError) as exc:
        print(f"--top: cannot reach {args.top}: {exc}", file=sys.stderr)
        return 1
    return 0


def _print_explain(args) -> int:
    """Build a demo collection and print EXPLAIN plans for sample queries."""
    from repro.api import SpatialCollection

    data = generate_uniform_rects(args.n, area=1e-6, seed=args.seed)
    queries = generate_window_queries(data, max(args.queries, 1), 0.1, seed=args.seed)
    col = SpatialCollection.from_dataset(data, partitions_per_dim=64)
    w = queries[0]
    cx = (w.xl + w.xu) / 2.0
    cy = (w.yl + w.yu) / 2.0
    other = SpatialCollection.from_dataset(
        generate_uniform_rects(
            min(args.n, 5_000), area=1e-6, seed=args.seed + 1
        ),
        partitions_per_dim=64,
    )
    plans = [
        col.window(w.xl, w.yl, w.xu, w.yu, explain=True),
        col.disk(cx, cy, (w.xu - w.xl) / 2.0, explain=True),
        col.knn(cx, cy, 10, explain=True),
        col.join(other, explain=True),
    ]
    if args.json:
        print(json.dumps([p.as_dict() for p in plans], indent=2))
    else:
        for plan in plans:
            print(plan.format_tree())
            print()
    return 0


def _print_profile(data, queries, as_json: bool = False) -> None:
    """Re-run the workload under the profiler and print the breakdown.

    Mid-batch query failures do not abort the run: each failing query is
    recorded on the profile (``prof.errors``), the remaining queries
    still execute, and the profile is marked *truncated* in both the
    console output and the JSON summary.
    """
    from repro.api import SpatialCollection
    from repro.obs.export import format_metrics_table

    col = SpatialCollection.from_dataset(data, partitions_per_dim=64)
    with col.profile() as prof:
        for w in queries:
            try:
                col.window(w.xl, w.yl, w.xu, w.yu)
            except Exception as exc:
                print(
                    f"warning: window query failed mid-batch: "
                    f"{type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )
        cx = (data.xl.min() + data.xu.max()) / 2.0
        cy = (data.yl.min() + data.yu.max()) / 2.0
        try:
            col.knn(cx, cy, k=10)
        except Exception as exc:
            print(
                f"warning: kNN query failed mid-batch: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )

    if prof.truncated:
        first = prof.errors[0]
        print(
            f"\n!!! profile TRUNCATED: {len(prof.errors)} quer"
            f"{'y' if len(prof.errors) == 1 else 'ies'} raised "
            f"(first: {first['kind']}: {first['error']}: {first['message']})"
        )
    print("\n=== profile: two-layer grid, per-phase span tree ===")
    print(prof.span_tree())
    summary = prof.latency_summary()
    print("=== profile: per-kind latency [ms] ===")
    header = f"{'kind':<10} {'count':>7} {'p50':>9} {'p95':>9} {'p99':>9}"
    print(header)
    print("-" * len(header))
    for kind, row in sorted(summary.items()):
        print(
            f"{kind:<10} {int(row['count']):>7} {row['p50']:>9.3f} "
            f"{row['p95']:>9.3f} {row['p99']:>9.3f}"
        )
    print()
    print(format_metrics_table(prof.registry), end="")
    if as_json:
        print("\n=== profile: JSON summary ===")
        print(json.dumps(prof.summary(), indent=2, default=str))


if __name__ == "__main__":
    raise SystemExit(main())
