"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch one base class.  Invalid user input (bad coordinates, malformed
geometries, out-of-range parameters) raises subclasses of
:class:`ReproError` rather than bare ``ValueError`` where the context is
spatial, but we still subclass ``ValueError`` so generic handling works.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class InvalidGeometryError(ReproError, ValueError):
    """A geometry is malformed (e.g. a polygon with fewer than 3 vertices)."""


class InvalidRectError(ReproError, ValueError):
    """A rectangle has inverted or non-finite coordinates."""


class InvalidQueryError(ReproError, ValueError):
    """A query object is malformed (e.g. negative disk radius)."""


class InvalidGridError(ReproError, ValueError):
    """Grid construction parameters are invalid (e.g. zero partitions)."""


class DatasetError(ReproError, ValueError):
    """A dataset is malformed or generation parameters are invalid."""


class IndexStateError(ReproError, RuntimeError):
    """An index was used before being built, or mutated when immutable."""


class ObsError(ReproError, RuntimeError):
    """An observability instrument was used in an invalid state (e.g. a
    percentile requested from an empty histogram, or an EXPLAIN asked of
    an index family that does not expose partition introspection)."""


class ParallelExecutionError(ReproError, RuntimeError):
    """A parallel batch failed structurally — a worker process died
    mid-batch (OOM-killed, segfaulted) or the pool is broken.  Raised
    instead of letting ``multiprocessing`` hang forever or surface a bare
    ``BrokenPipeError`` with no context."""


class ProtocolError(ReproError, ValueError):
    """A serving-protocol frame is malformed: not valid JSON, missing
    required fields, an unknown verb, or arguments of the wrong shape."""
