"""``repro-lint``: the repo-aware AST linter.

Usage::

    python -m repro.analysis.lint src/            # lint a tree, exit 1 on findings
    python -m repro.analysis.lint --list-rules    # print the rule catalogue
    python -m repro.analysis.lint --select REP001,REP104 src/
    python -m repro.analysis.lint --fix src/      # autofix REP104, then lint
    python -m repro.analysis.lint --github src/   # CI ::error annotations

Rules live in :mod:`repro.analysis.rules`; each has a stable ``REPnnn``
code, a one-line summary (its class docstring) and, where the contract is
scoped to a package (geometry, server, core/grid), a ``scope`` of path
segments it applies to.  Findings print as ``path:line:col: CODE message``.

Suppressions
------------

A finding on line *n* is suppressed by a trailing comment on that line::

    if best == 0.0:  # repro-lint: disable=REP001

Several codes may be given, comma-separated.  A whole file opts out of a
rule with a comment line anywhere in the file::

    # repro-lint: disable-file=REP104

``disable=all`` / ``disable-file=all`` suppress every rule.  Suppression
comments are exact-match on the code — they are *visible* waivers, the
moral equivalent of ``# type: ignore[code]``, and the rule catalogue in
``docs/static-analysis.md`` asks each one to carry a justification nearby.
"""

from __future__ import annotations

import argparse
import ast
import io
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintRule",
    "ModuleInfo",
    "fix_unused_imports",
    "github_annotation",
    "lint_paths",
    "lint_source",
    "main",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def github_annotation(finding: Finding) -> str:
    """Render a finding as a GitHub Actions ``::error`` annotation.

    The workflow-command grammar terminates the message at a newline and
    treats ``%`` as an escape introducer, so those three characters are
    percent-encoded per the Actions toolkit convention.
    """
    message = (
        finding.message.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )
    return (
        f"::error file={finding.path},line={finding.line},"
        f"col={finding.col},title={finding.code}::{message}"
    )


@dataclass
class ModuleInfo:
    """A parsed module plus the path context rules scope on."""

    path: str
    #: path segments (e.g. ``("src", "repro", "geometry", "mbr.py")``),
    #: used by scoped rules to decide whether they apply.
    segments: tuple[str, ...]
    tree: ast.Module
    source: str
    #: line -> set of codes disabled on that line ("all" disables all).
    line_disables: dict[int, set[str]] = field(default_factory=dict)
    #: codes disabled for the whole file ("all" disables all).
    file_disables: set[str] = field(default_factory=set)

    def in_package(self, *names: str) -> bool:
        """Whether the module sits under any of the given path segments."""
        return any(name in self.segments[:-1] for name in names)

    def suppressed(self, code: str, line: int) -> bool:
        if "all" in self.file_disables or code in self.file_disables:
            return True
        disabled = self.line_disables.get(line)
        return disabled is not None and ("all" in disabled or code in disabled)


class LintRule:
    """Base class for lint rules.

    Subclasses set :attr:`code` and :attr:`name`, write a docstring (the
    catalogue summary), optionally restrict themselves with
    :attr:`scope` (path segments), and implement :meth:`check`.
    """

    code: str = "REP000"
    name: str = "abstract-rule"
    #: path segments the rule applies to; None = every module.
    scope: "tuple[str, ...] | None" = None

    def applies_to(self, mod: ModuleInfo) -> bool:
        return self.scope is None or mod.in_package(*self.scope)

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, mod: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )

    @classmethod
    def summary(cls) -> str:
        doc = cls.__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""


def _collect_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Parse ``# repro-lint:`` comments into per-line and per-file sets."""
    line_disables: dict[int, set[str]] = {}
    file_disables: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            kind, raw = match.groups()
            codes = {c.strip() for c in raw.split(",") if c.strip()}
            if kind == "disable-file":
                file_disables |= codes
            else:
                line_disables.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass
    return line_disables, file_disables


def parse_module(path: str, source: str) -> "ModuleInfo | None":
    """Parse one file into a :class:`ModuleInfo`; None on syntax error."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return None
    segments = tuple(Path(path).as_posix().split("/"))
    line_disables, file_disables = _collect_suppressions(source)
    return ModuleInfo(
        path=path,
        segments=segments,
        tree=tree,
        source=source,
        line_disables=line_disables,
        file_disables=file_disables,
    )


def default_rules() -> "list[LintRule]":
    from repro.analysis.rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


def lint_source(
    path: str, source: str, rules: "Sequence[LintRule] | None" = None
) -> list[Finding]:
    """Lint one in-memory module; the unit the fixture tests drive."""
    if rules is None:
        rules = default_rules()
    mod = parse_module(path, source)
    if mod is None:
        return [
            Finding(
                path=path,
                line=1,
                col=1,
                code="REP000",
                message="file does not parse; repro-lint needs valid syntax",
            )
        ]
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(mod):
            continue
        for finding in rule.check(mod):
            if not mod.suppressed(finding.code, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def _render_alias(alias: ast.alias) -> str:
    return (
        f"{alias.name} as {alias.asname}" if alias.asname else alias.name
    )


def fix_unused_imports(path: str, source: str) -> tuple[str, int]:
    """Rewrite ``source`` with REP104 unused imports removed.

    Returns ``(new_source, aliases_removed)``.  Statements that lose
    every alias are deleted outright; partially-used ``import a, b`` /
    ``from m import a, b`` statements are regenerated on one line with
    the surviving aliases (any trailing comment on the original line is
    dropped — waiver comments survive because a waived alias is never
    removed).  Files that fail to parse, sit outside the rule's scope
    (``__init__.py``) or carry file-level waivers come back unchanged.
    """
    from repro.analysis.rules import UnusedImportRule

    mod = parse_module(path, source)
    if mod is None:
        return source, 0
    rule = UnusedImportRule()
    if not rule.applies_to(mod):
        return source, 0
    doomed: dict[int, set[int]] = {}
    stmts: dict[int, ast.stmt] = {}
    for node, alias, _bound in rule.unused_aliases(mod):
        if mod.suppressed(rule.code, node.lineno):
            continue
        doomed.setdefault(id(node), set()).add(id(alias))
        stmts[id(node)] = node
    if not doomed:
        return source, 0
    lines = source.split("\n")
    removed = 0
    # Bottom-up so earlier statements' line spans stay valid.
    for node in sorted(stmts.values(), key=lambda n: -n.lineno):
        gone = doomed[id(node)]
        removed += len(gone)
        survivors = [a for a in node.names if id(a) not in gone]
        start = node.lineno - 1
        end = (node.end_lineno or node.lineno) - 1
        if not survivors:
            replacement: list[str] = []
        else:
            indent = re.match(r"[ \t]*", lines[start]).group(0)
            names = ", ".join(_render_alias(a) for a in survivors)
            if isinstance(node, ast.ImportFrom):
                origin = "." * node.level + (node.module or "")
                stmt = f"from {origin} import {names}"
            else:
                stmt = f"import {names}"
            replacement = [indent + stmt]
        lines[start : end + 1] = replacement
    return "\n".join(lines), removed


def fix_paths(paths: Iterable[str]) -> dict[str, int]:
    """Apply :func:`fix_unused_imports` in place; path -> removals."""
    changed: dict[str, int] = {}
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        fixed, removed = fix_unused_imports(path.as_posix(), source)
        if removed:
            path.write_text(fixed, encoding="utf-8")
            changed[path.as_posix()] = removed
    return changed


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    skip_dirs = {"__pycache__", ".git", "build", "dist"}
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            if p.suffix == ".py":
                yield p
            continue
        for sub in sorted(p.rglob("*.py")):
            parts = set(sub.parts)
            if parts & skip_dirs or any(
                part.endswith(".egg-info") for part in sub.parts
            ):
                continue
            yield sub


def lint_paths(
    paths: Iterable[str], rules: "Sequence[LintRule] | None" = None
) -> list[Finding]:
    """Lint files and trees; returns every unsuppressed finding."""
    if rules is None:
        rules = default_rules()
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(path.as_posix(), source, rules))
    return findings


def _select(rules: "list[LintRule]", spec: "str | None") -> list[LintRule]:
    if not spec:
        return rules
    wanted = {code.strip().upper() for code in spec.split(",") if code.strip()}
    unknown = wanted - {rule.code for rule in rules}
    if unknown:
        raise SystemExit(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return [rule for rule in rules if rule.code in wanted]


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Domain-aware static analysis for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="remove REP104 unused imports in place before linting",
    )
    parser.add_argument(
        "--github",
        action="store_true",
        help="emit GitHub Actions ::error annotations alongside findings",
    )
    args = parser.parse_args(argv)

    rules = _select(default_rules(), args.select)
    if args.list_rules:
        for rule in rules:
            scope = (
                "/".join(rule.scope) if rule.scope else "everywhere"
            )
            print(f"{rule.code}  {rule.name}  [{scope}]")
            print(f"    {rule.summary()}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis.lint src/)")

    if args.fix:
        for path, removed in sorted(fix_paths(args.paths).items()):
            print(f"{path}: removed {removed} unused import(s)")

    findings = lint_paths(args.paths, rules)
    for finding in findings:
        print(finding.render())
        if args.github:
            print(github_annotation(finding))
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
