"""Correctness tooling for the reproduction: static analysis + sanitizer.

Two mechanically-enforced layers guard the invariants the paper and the
serving stack rely on:

* :mod:`repro.analysis.lint` — a repo-aware AST linter
  (``python -m repro.analysis.lint src/``) whose rules encode domain
  contracts: no float equality on coordinates, no blocking calls on the
  event loop, no ``await`` under a ``threading.Lock``, QueryStats
  threading through every comparing kernel, packed/legacy backend parity
  on the grid APIs, plus generic hygiene (bare ``except``, mutable
  defaults, wall-clock calls, unused imports, public-API annotations).

* :mod:`repro.analysis.sanitize` — a runtime sanitizer enabled by
  ``REPRO_SANITIZE=1`` that freezes published snapshot arrays, validates
  PackedStore CSR invariants at build/compact/publish time, and
  cross-checks sampled window queries against a naive per-tile scan.

See ``docs/static-analysis.md`` for the rule catalogue and policy.
"""

from repro.analysis.sanitize import SanitizerError

__all__ = ["SanitizerError"]
