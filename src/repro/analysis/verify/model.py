"""Exhaustive model check of the scatter/gather/quarantine protocol (RV301).

A small explicit-state model of the router/worker plane — faithful to
:mod:`repro.shard.router` and :mod:`repro.shard.worker` at the level of
the properties that matter, with every source of nondeterminism explored
exhaustively over bounded runs (2–3 shards, ≤2 writes, ≤2 reads, all
single-failure schedules):

* the router applies a write locally *before* the per-link write frames
  go out, so a read stamped at the new epoch can reach a worker ahead of
  the write that produces it (the parking race);
* per-link delivery is FIFO (TCP), but cross-link order is arbitrary;
* single failures: a worker crash at any point, a worker that silently
  skips applying one write (divergence — the quarantine detector's
  reason to exist), and a write frame lost before send (the parked-
  batch stale timeout's reason to exist).

Checked properties (violations become RV301 findings):

* **P1 totality** — every issued read reaches a response (full or
  degraded) and every write resolves; nothing hangs at quiescence.
* **P2 epoch consistency** — a *full* (non-degraded) response merges
  sub-results all computed at exactly the stamped epoch.
* **P3 quarantine soundness** — a shard is quarantined iff it actually
  diverged from the deterministic write contract.
* **P4 replica uniformity** — at quiescence every live, non-quarantined
  replica sits at the router's version (the uniform epoch vector).
* **P5 no spurious degradation** — fault-free schedules never degrade.
* **P6 worker reply totality** — no batch stays parked forever on a
  live worker (the stale timeout drains it).

``MUTANTS`` switches known-bad variants (skip parking, skip the epoch
stamp, skip quarantine, skip the stale timeout) used by the test suite
to prove each property actually fires.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterator

__all__ = [
    "MUTANTS",
    "ModelConfig",
    "Violation",
    "check_model",
    "explore",
    "single_failure_configs",
]

MUTANTS = (
    "no_park",
    "no_epoch_stamp",
    "no_quarantine",
    "no_stale_timeout",
)


@dataclass(frozen=True)
class ModelConfig:
    """One bounded exploration: topology, workload, fault, mutant."""

    shards: int = 2
    writes: int = 2
    reads: int = 2
    #: shard that may crash at any point (None = no crash schedule).
    crash: "int | None" = None
    #: (shard, seq): that worker silently skips applying that write.
    skip_write: "tuple[int, int] | None" = None
    #: (shard, seq): the write frame to that shard is lost before send.
    lose_send: "tuple[int, int] | None" = None
    mutant: "str | None" = None

    @property
    def faulty(self) -> bool:
        return (
            self.crash is not None
            or self.skip_write is not None
            or self.lose_send is not None
        )


@dataclass(frozen=True)
class Violation:
    """One property violation with the event schedule that reaches it."""

    prop: str
    detail: str
    schedule: tuple[str, ...]
    config: ModelConfig


# ---------------------------------------------------------------------------
# state — plain tuples so states hash for memoization
#
# scatter record:  (bid, epoch, pending_frozenset, replies_tuple, status)
#   reply entry:   (shard, claimed_epoch, data_version, ok)
#   status:        "pending" | "ok" | "degraded"
# write record:    (seq, pending_sends_frozenset, awaiting_frozenset,
#                   acks_tuple)   — at most one in flight (writes serialize)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _State:
    router_version: int
    writes_issued: int
    reads_issued: int
    inbox: tuple  # per shard: tuple of frames
    outbox: tuple  # per shard: tuple of replies
    worker_version: tuple
    parked: tuple  # per shard: tuple of (bid, epoch)
    alive: tuple
    quarantined: tuple
    in_flight_write: "tuple | None"
    scatters: tuple
    diverged: tuple  # per shard: observed divergence from ack check


def _initial(cfg: ModelConfig) -> _State:
    k = cfg.shards
    return _State(
        router_version=0,
        writes_issued=0,
        reads_issued=0,
        inbox=((),) * k,
        outbox=((),) * k,
        worker_version=(0,) * k,
        parked=((),) * k,
        alive=(True,) * k,
        quarantined=(False,) * k,
        in_flight_write=None,
        scatters=(),
        diverged=(False,) * k,
    )


def _tset(t: tuple, i: int, v: Any) -> tuple:
    return t[:i] + (v,) + t[i + 1 :]


def _finalize_scatter(sc: tuple, cfg: ModelConfig) -> tuple:
    bid, epoch, pending, replies, _ = sc
    if any(not ok for (_, _, _, ok) in replies):
        return (bid, epoch, pending, replies, "degraded")
    if cfg.mutant != "no_epoch_stamp":
        for (_, claimed, _, _) in replies:
            if claimed != epoch:
                return (bid, epoch, pending, replies, "degraded")
    return (bid, epoch, pending, replies, "ok")


def _mark_dead(state: _State, k: int, *, quarantine: bool) -> _State:
    """Link death: fail pending futures, clear channels (router view)."""
    scatters = []
    for sc in state.scatters:
        bid, epoch, pending, replies, status = sc
        if status == "pending" and k in pending:
            # the shard's future raises -> frames[k] is None -> degraded
            scatters.append((bid, epoch, frozenset(), replies, "degraded"))
        else:
            scatters.append(sc)
    ifw = state.in_flight_write
    if ifw is not None:
        seq, pending_sends, awaiting, acks = ifw
        pending_sends = pending_sends - {k}
        awaiting = awaiting - {k}
        ifw = (seq, pending_sends, awaiting, acks)
        if not pending_sends and not awaiting:
            ifw = None
    return replace(
        state,
        alive=_tset(state.alive, k, False),
        quarantined=_tset(state.quarantined, k, True)
        if quarantine
        else state.quarantined,
        inbox=_tset(state.inbox, k, ()),
        outbox=_tset(state.outbox, k, ()),
        parked=_tset(state.parked, k, ()),
        scatters=tuple(scatters),
        in_flight_write=ifw,
    )


def _successors(
    state: _State, cfg: ModelConfig
) -> Iterator[tuple[str, _State]]:
    k_range = range(cfg.shards)

    # -- router: apply a write locally (serialized: one in flight) ---------
    if state.writes_issued < cfg.writes and state.in_flight_write is None:
        seq = state.writes_issued + 1
        targets = frozenset(k for k in k_range if state.alive[k])
        yield (
            f"apply_write_local({seq})",
            replace(
                state,
                writes_issued=seq,
                router_version=state.router_version + 1,
                in_flight_write=(seq, targets, frozenset(), ()),
            ),
        )

    # -- router: push the write frame to one shard -------------------------
    if state.in_flight_write is not None:
        seq, pending_sends, awaiting, acks = state.in_flight_write
        for k in sorted(pending_sends):
            if cfg.lose_send == (k, seq):
                # frame lost: never delivered, never acked
                new = (seq, pending_sends - {k}, awaiting, acks)
                if not new[1] and not new[2]:
                    new = None  # type: ignore[assignment]
                yield (
                    f"lose_write_send({k},{seq})",
                    replace(state, in_flight_write=new),
                )
            else:
                yield (
                    f"send_write({k},{seq})",
                    replace(
                        state,
                        inbox=_tset(
                            state.inbox, k, state.inbox[k] + (("write", seq),)
                        ),
                        in_flight_write=(
                            seq,
                            pending_sends - {k},
                            awaiting | {k},
                            acks,
                        ),
                    ),
                )

    # -- router: scatter a read --------------------------------------------
    if state.reads_issued < cfg.reads:
        bid = state.reads_issued + 1
        epoch = state.router_version
        if any(not state.alive[k] for k in k_range):
            # real router: partial results withheld — degraded pre-send
            yield (
                f"issue_read_degraded({bid})",
                replace(
                    state,
                    reads_issued=bid,
                    scatters=state.scatters
                    + ((bid, epoch, frozenset(), (), "degraded"),),
                ),
            )
        else:
            inbox = state.inbox
            for k in k_range:
                inbox = _tset(inbox, k, inbox[k] + (("batch", bid, epoch),))
            yield (
                f"issue_read({bid},e{epoch})",
                replace(
                    state,
                    reads_issued=bid,
                    inbox=inbox,
                    scatters=state.scatters
                    + ((bid, epoch, frozenset(k_range), (), "pending"),),
                ),
            )

    # -- worker: process one inbound frame ---------------------------------
    for k in k_range:
        if not state.alive[k] or not state.inbox[k]:
            continue
        frame = state.inbox[k][0]
        rest = state.inbox[k][1:]
        if frame[0] == "write":
            seq = frame[1]
            if cfg.skip_write == (k, seq):
                version = state.worker_version[k]  # silently not applied
            else:
                version = state.worker_version[k] + 1
            new = replace(
                state,
                inbox=_tset(state.inbox, k, rest),
                worker_version=_tset(state.worker_version, k, version),
                outbox=_tset(
                    state.outbox,
                    k,
                    state.outbox[k] + (("write_r", seq, version),),
                ),
            )
            # drain parked batches that became runnable
            runnable = [
                (bid, ep) for (bid, ep) in new.parked[k] if ep <= version
            ]
            still = tuple(
                (bid, ep) for (bid, ep) in new.parked[k] if ep > version
            )
            out = new.outbox[k]
            for bid, ep in runnable:
                out = out + (("batch_r", bid, ep, ep, True),)
            new = replace(
                new,
                parked=_tset(new.parked, k, still),
                outbox=_tset(new.outbox, k, out),
            )
            yield (f"worker_write({k},{seq})", new)
        else:
            _, bid, epoch = frame
            version = state.worker_version[k]
            if cfg.mutant == "no_epoch_stamp" or epoch <= version:
                used = version if cfg.mutant == "no_epoch_stamp" else epoch
                yield (
                    f"worker_batch({k},{bid})",
                    replace(
                        state,
                        inbox=_tset(state.inbox, k, rest),
                        outbox=_tset(
                            state.outbox,
                            k,
                            state.outbox[k]
                            + (("batch_r", bid, used, used, True),),
                        ),
                    ),
                )
            elif cfg.mutant == "no_park":
                # executes against its current (older) snapshot
                yield (
                    f"worker_batch_no_park({k},{bid})",
                    replace(
                        state,
                        inbox=_tset(state.inbox, k, rest),
                        outbox=_tset(
                            state.outbox,
                            k,
                            state.outbox[k]
                            + (("batch_r", bid, version, version, True),),
                        ),
                    ),
                )
            else:
                yield (
                    f"worker_park({k},{bid})",
                    replace(
                        state,
                        inbox=_tset(state.inbox, k, rest),
                        parked=_tset(
                            state.parked, k, state.parked[k] + ((bid, epoch),)
                        ),
                    ),
                )

    # -- worker: stale-timeout a parked batch ------------------------------
    # The real timeout (5 s) dwarfs delivery latency, so the model only
    # fires it when no write still in the system can lift the parked
    # epoch — i.e. the write genuinely never arrives (a lost send).
    if cfg.mutant != "no_stale_timeout":
        for k in k_range:
            if state.alive[k] and state.parked[k]:
                bid, epoch = state.parked[k][0]
                if epoch <= _max_future_version(state, cfg, k):
                    continue
                yield (
                    f"stale_timeout({k},{bid})",
                    replace(
                        state,
                        parked=_tset(state.parked, k, state.parked[k][1:]),
                        outbox=_tset(
                            state.outbox,
                            k,
                            state.outbox[k]
                            + (
                                (
                                    "batch_r",
                                    bid,
                                    state.worker_version[k],
                                    state.worker_version[k],
                                    False,
                                ),
                            ),
                        ),
                    ),
                )

    # -- router: receive one reply -----------------------------------------
    for k in k_range:
        if not state.alive[k] or not state.outbox[k]:
            continue
        reply = state.outbox[k][0]
        rest = state.outbox[k][1:]
        if reply[0] == "batch_r":
            _, bid, claimed, data, ok = reply
            scatters = []
            for sc in state.scatters:
                sbid, epoch, pending, replies, status = sc
                if sbid == bid and status == "pending":
                    replies = replies + ((k, claimed, data, ok),)
                    pending = pending - {k}
                    sc = (sbid, epoch, pending, replies, status)
                    if not pending:
                        sc = _finalize_scatter(sc, cfg)
                scatters.append(sc)
            yield (
                f"router_recv_batch({k},{bid})",
                replace(
                    state,
                    outbox=_tset(state.outbox, k, rest),
                    scatters=tuple(scatters),
                ),
            )
        else:
            _, seq, version = reply
            new = replace(state, outbox=_tset(state.outbox, k, rest))
            ifw = new.in_flight_write
            if ifw is not None and ifw[0] == seq:
                _, pending_sends, awaiting, acks = ifw
                awaiting = awaiting - {k}
                acks = acks + ((k, version),)
                ifw2: "tuple | None" = (seq, pending_sends, awaiting, acks)
                if not pending_sends and not awaiting:
                    ifw2 = None
                new = replace(new, in_flight_write=ifw2)
            diverged = version != seq  # deterministic contract: v == seq
            if diverged:
                new = replace(new, diverged=_tset(new.diverged, k, True))
                if cfg.mutant != "no_quarantine":
                    new = _mark_dead(new, k, quarantine=True)
            yield (f"router_recv_write_r({k},{seq})", new)

    # -- router: write timeout (only when the ack can never arrive) --------
    if state.in_flight_write is not None:
        seq, pending_sends, awaiting, acks = state.in_flight_write
        stuck = {
            k
            for k in awaiting
            if not state.alive[k]
        }
        lost = {
            k
            for k in pending_sends
            if cfg.lose_send == (k, seq)
        }
        # a lost send leaves k forever unacked once every other shard acked
        if not pending_sends and stuck == awaiting and awaiting:
            new = state
            for k in sorted(stuck):
                new = _mark_dead(new, k, quarantine=False)
            if new.in_flight_write is not None:
                new = replace(new, in_flight_write=None)
            yield ("write_timeout", new)
        elif pending_sends and pending_sends == lost and not awaiting:
            yield (
                "write_timeout_lost",
                replace(state, in_flight_write=None),
            )

    # -- router: scatter timeout (only for permanently-stuck shards) -------
    for sc in state.scatters:
        bid, epoch, pending, replies, status = sc
        if status != "pending":
            continue
        stuck = all(
            _shard_cannot_reply(state, cfg, k, bid, epoch)
            for k in pending
        )
        if pending and stuck:
            scatters = tuple(
                (bid, epoch, frozenset(), replies, "degraded")
                if s[0] == bid
                else s
                for s in state.scatters
            )
            yield (
                f"scatter_timeout({bid})",
                replace(state, scatters=scatters),
            )

    # -- environment: single crash -----------------------------------------
    if cfg.crash is not None and state.alive[cfg.crash]:
        yield (
            f"crash({cfg.crash})",
            _mark_dead(state, cfg.crash, quarantine=False),
        )


def _max_future_version(state: _State, cfg: ModelConfig, k: int) -> int:
    """Highest version shard k can still reach from writes in the system."""
    max_future = state.worker_version[k] + sum(
        1 for f in state.inbox[k] if f[0] == "write"
    )
    if state.in_flight_write is not None:
        seq, pending_sends, _, _ = state.in_flight_write
        if k in pending_sends and cfg.lose_send != (k, seq):
            max_future += 1
    max_future += cfg.writes - state.writes_issued
    return max_future


def _shard_cannot_reply(
    state: _State, cfg: ModelConfig, k: int, bid: int, epoch: int
) -> bool:
    """True when shard k can never answer batch ``bid`` by itself."""
    if not state.alive[k]:
        return True
    in_parked = any(b == bid for (b, _) in state.parked[k])
    in_inbox = any(
        f[0] == "batch" and f[1] == bid for f in state.inbox[k]
    )
    in_outbox = any(
        f[0] == "batch_r" and f[1] == bid for f in state.outbox[k]
    )
    if in_outbox or in_inbox:
        return False
    if not in_parked:
        return True  # reply already consumed or shard reset
    if cfg.mutant != "no_stale_timeout":
        return False  # the stale timeout will answer it
    return epoch > _max_future_version(state, cfg, k)


def _check_quiescent(
    state: _State, cfg: ModelConfig, schedule: tuple[str, ...]
) -> Iterator[Violation]:
    for sc in state.scatters:
        _, epoch, _, replies, status = sc
        if status == "pending":
            yield Violation(
                "P1",
                f"read bid={sc[0]} never reached a response "
                f"(pending on shards {sorted(sc[2])})",
                schedule,
                cfg,
            )
        elif status == "ok":
            for (k, claimed, data, ok) in replies:
                if claimed != epoch or data != epoch:
                    yield Violation(
                        "P2",
                        f"full response bid={sc[0]} stamped epoch {epoch} "
                        f"merged shard {k} data computed at version {data} "
                        f"(claimed {claimed})",
                        schedule,
                        cfg,
                    )
            if cfg.faulty is False and len(replies) != cfg.shards:
                yield Violation(
                    "P2",
                    f"full response bid={sc[0]} merged only "
                    f"{len(replies)}/{cfg.shards} shards",
                    schedule,
                    cfg,
                )
    if state.in_flight_write is not None:
        yield Violation(
            "P1",
            f"write seq={state.in_flight_write[0]} never resolved",
            schedule,
            cfg,
        )
    for k in range(cfg.shards):
        if state.quarantined[k] and not state.diverged[k]:
            yield Violation(
                "P3",
                f"shard {k} quarantined without observed divergence",
                schedule,
                cfg,
            )
        if state.diverged[k] and not state.quarantined[k]:
            yield Violation(
                "P3",
                f"shard {k} diverged from the deterministic write contract "
                "but was not quarantined",
                schedule,
                cfg,
            )
        if state.alive[k] and state.parked[k]:
            yield Violation(
                "P6",
                f"batch(es) {[b for b, _ in state.parked[k]]} parked "
                f"forever on live shard {k}",
                schedule,
                cfg,
            )
        if (
            not cfg.faulty
            and state.alive[k]
            and not state.quarantined[k]
            and state.worker_version[k] != state.router_version
        ):
            yield Violation(
                "P4",
                f"replica {k} at version {state.worker_version[k]} but "
                f"router at {state.router_version} in a fault-free run",
                schedule,
                cfg,
            )
    if not cfg.faulty:
        for sc in state.scatters:
            if sc[4] == "degraded":
                yield Violation(
                    "P5",
                    f"read bid={sc[0]} degraded in a fault-free schedule",
                    schedule,
                    cfg,
                )


def explore(cfg: ModelConfig, *, max_states: int = 400_000) -> list[Violation]:
    """Exhaustively explore every interleaving of one configuration.

    Returns the violations found (deduplicated by property + detail);
    raises RuntimeError if the state bound is hit, so a config that
    explodes is a loud failure rather than silent partial coverage.
    """
    start = _initial(cfg)
    seen: set[_State] = {start}
    stack: list[tuple[_State, tuple[str, ...]]] = [(start, ())]
    violations: dict[tuple[str, str], Violation] = {}
    while stack:
        state, schedule = stack.pop()
        successors = list(_successors(state, cfg))
        if not successors:
            for violation in _check_quiescent(state, cfg, schedule):
                violations.setdefault(
                    (violation.prop, violation.detail), violation
                )
            continue
        for name, nxt in successors:
            if nxt in seen:
                continue
            seen.add(nxt)
            if len(seen) > max_states:
                raise RuntimeError(
                    f"model exploration exceeded {max_states} states "
                    f"for {cfg}"
                )
            stack.append((nxt, schedule + (name,)))
    return sorted(violations.values(), key=lambda v: (v.prop, v.detail))


def single_failure_configs(
    shards: int, writes: int, reads: int, *, mutant: "str | None" = None
) -> Iterator[ModelConfig]:
    """The fault-free run plus every single-failure schedule."""
    base = ModelConfig(
        shards=shards, writes=writes, reads=reads, mutant=mutant
    )
    yield base
    for k in range(shards):
        yield replace(base, crash=k)
        for seq in range(1, writes + 1):
            yield replace(base, skip_write=(k, seq))
            yield replace(base, lose_send=(k, seq))


def check_model(
    *, mutant: "str | None" = None, thorough: bool = True
) -> list[Violation]:
    """Model-check the protocol over 2 and (optionally) 3 shards."""
    violations: list[Violation] = []
    for cfg in single_failure_configs(2, 2, 2, mutant=mutant):
        violations.extend(explore(cfg))
    if thorough:
        for cfg in single_failure_configs(3, 1, 1, mutant=mutant):
            violations.extend(explore(cfg))
    return violations
