"""Repo-wide program model and call graph for the verify checkers.

The static analyses in :mod:`repro.analysis.verify` are interprocedural:
they need to know, from a ``with self._write_lock:`` body in one module,
which functions in *other* modules are transitively reachable.  This
module builds the shared substrate:

* :class:`Program` — every module under a root parsed once, with
  per-module import maps, a function table keyed by qualified name
  (``repro.server.snapshot.SnapshotStore.insert``), a class table with
  statically-resolved bases, and a light ``self.<attr>`` type map
  harvested from ``self.x = ClassName(...)`` assignments (so
  ``self.store.insert()`` resolves to ``SnapshotStore.insert``).
* :class:`CallGraph` — resolved call edges per function.  Resolution is
  deliberately best-effort and *over-approximating*: a call that cannot
  be typed falls back to matching every program method of that name
  (bounded, so `.get()`-style generic names do not explode the graph).
  Over-approximation is the right failure mode for a checker whose
  findings carry visible waivers.

Nested function and lambda bodies are attributed to their enclosing
function: a callback defined under a lock is treated as running under
it, which over-approximates (the safe direction) when the callback
actually escapes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionNode",
    "ClassNode",
    "ModuleNode",
    "Program",
    "dotted_name",
    "terminal_name",
]

#: name-match fallback is skipped above this many candidates — a generic
#: method name (``get``, ``close``) says nothing about the real target.
_FALLBACK_CAP = 4


def dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> "str | None":
    """The last identifier of an expression (unwrapping subscripts)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class ModuleNode:
    """One parsed module plus its import environment."""

    dotted: str
    path: str
    tree: ast.Module
    source: str
    #: local binding -> fully dotted target ("np" -> "numpy",
    #: "encode_frame" -> "repro.shard.wire.encode_frame").
    imports: dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionNode:
    """One function or method in the program."""

    qualname: str
    module: str
    cls: "str | None"  # owning class qualname, if a method
    name: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    path: str
    is_async: bool


@dataclass
class ClassNode:
    """One class: its statically-visible bases and method table."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: raw base expressions as dotted strings ("SpatialQueryService").
    bases: list[str] = field(default_factory=list)
    #: method name -> function qualname.
    methods: dict[str, str] = field(default_factory=dict)
    #: self.<attr> -> class qualname, from `self.x = ClassName(...)`.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One call expression and the program functions it may target."""

    caller: str
    node: ast.Call
    #: resolved target qualnames (possibly several for fallback matches).
    targets: tuple[str, ...]
    #: the raw dotted callee text, for diagnostics.
    raw: "str | None"
    #: True when targets came from the name-match fallback.
    ambiguous: bool


def _module_dotted(root: Path, path: Path) -> str:
    rel = path.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _iter_files(root: Path, package: str) -> Iterator[Path]:
    pkg_root = root / package.replace(".", "/")
    for path in sorted(pkg_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


class Program:
    """Every module under ``root/package`` parsed into one queryable model."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleNode] = {}
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassNode] = {}
        self.methods_by_name: dict[str, list[str]] = {}

    @classmethod
    def from_root(cls, root: "str | Path", package: str = "repro") -> "Program":
        """Parse ``root/package/**/*.py`` into a Program."""
        prog = cls()
        rootp = Path(root)
        for path in _iter_files(rootp, package):
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue  # repro-lint's REP000 owns unparseable files
            prog.add_module(_module_dotted(rootp, path), str(path), tree, source)
        prog.finish()
        return prog

    @classmethod
    def from_sources(cls, sources: dict[str, tuple[str, str]]) -> "Program":
        """Build from in-memory ``{dotted: (path, source)}`` (tests)."""
        prog = cls()
        for dotted, (path, source) in sources.items():
            prog.add_module(dotted, path, ast.parse(source), source)
        prog.finish()
        return prog

    # -- construction ------------------------------------------------------

    def add_module(
        self, dotted: str, path: str, tree: ast.Module, source: str
    ) -> None:
        mod = ModuleNode(dotted=dotted, path=path, tree=tree, source=source)
        self.modules[dotted] = mod
        self._collect_imports(mod)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(mod, stmt)

    def finish(self) -> None:
        """Resolve deferred cross-module facts (attr types via bases)."""
        for cnode in self.classes.values():
            for name in cnode.methods:
                self.methods_by_name.setdefault(name, []).append(
                    cnode.methods[name]
                )

    def _collect_imports(self, mod: ModuleNode) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None and node.level == 0:
                    continue
                base = node.module or ""
                if node.level:
                    # relative import: anchor on this module's package
                    pkg = mod.dotted.rsplit(".", node.level)[0]
                    base = f"{pkg}.{base}" if base else pkg
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    mod.imports[bound] = f"{base}.{alias.name}"

    def _add_function(
        self,
        mod: ModuleNode,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        owner: "ClassNode | None",
    ) -> None:
        if owner is None:
            qual = f"{mod.dotted}.{node.name}"
        else:
            qual = f"{owner.qualname}.{node.name}"
        self.functions[qual] = FunctionNode(
            qualname=qual,
            module=mod.dotted,
            cls=owner.qualname if owner is not None else None,
            name=node.name,
            node=node,
            path=mod.path,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        if owner is not None:
            owner.methods[node.name] = qual

    def _add_class(self, mod: ModuleNode, node: ast.ClassDef) -> None:
        qual = f"{mod.dotted}.{node.name}"
        cnode = ClassNode(
            qualname=qual,
            module=mod.dotted,
            name=node.name,
            node=node,
            bases=[d for b in node.bases if (d := dotted_name(b)) is not None],
        )
        self.classes[qual] = cnode
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, cnode)
        self._collect_attr_types(mod, cnode)

    def _collect_attr_types(self, mod: ModuleNode, cnode: ClassNode) -> None:
        """Harvest ``self.x = ClassName(...)`` across the class body."""
        for node in ast.walk(cnode.node):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            target_cls = self._resolve_class_name(mod, node.value.func)
            if target_cls is None:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cnode.attr_types.setdefault(target.attr, target_cls)

    # -- resolution helpers ------------------------------------------------

    def _resolve_class_name(
        self, mod: ModuleNode, func: ast.AST
    ) -> "str | None":
        """Qualname of the program class a call expression constructs."""
        raw = dotted_name(func)
        if raw is None:
            return None
        resolved = self.resolve_dotted(mod, raw)
        return resolved if resolved in self.classes else None

    def resolve_dotted(self, mod: ModuleNode, raw: str) -> "str | None":
        """Map a dotted source name to a program qualname, if any.

        ``encode_frame`` -> ``repro.shard.wire.encode_frame`` (import),
        ``SnapshotStore.insert`` -> the method, local names -> module
        members.  Returns None for externals.
        """
        head, _, rest = raw.partition(".")
        candidates: list[str] = []
        local = f"{mod.dotted}.{head}"
        if local in self.functions or local in self.classes:
            candidates.append(local)
        imported = mod.imports.get(head)
        if imported is not None:
            candidates.append(imported)
        for cand in candidates:
            full = f"{cand}.{rest}" if rest else cand
            if full in self.functions or full in self.classes:
                return full
            if full in self.modules:
                return full
            # imported module attribute: repro.shard.wire + encode_frame
            if cand in self.modules and rest:
                sub = f"{cand}.{rest}"
                if sub in self.functions or sub in self.classes:
                    return sub
        return None

    def mro(self, class_qual: str) -> Iterator[ClassNode]:
        """The class and its statically-resolvable ancestors."""
        seen: set[str] = set()
        stack = [class_qual]
        while stack:
            qual = stack.pop(0)
            if qual in seen or qual not in self.classes:
                continue
            seen.add(qual)
            cnode = self.classes[qual]
            yield cnode
            mod = self.modules[cnode.module]
            for base in cnode.bases:
                resolved = self.resolve_dotted(mod, base)
                if resolved is not None:
                    stack.append(resolved)

    def resolve_method(self, class_qual: str, name: str) -> "str | None":
        for cnode in self.mro(class_qual):
            if name in cnode.methods:
                return cnode.methods[name]
        return None

    def attr_type(self, class_qual: str, attr: str) -> "str | None":
        for cnode in self.mro(class_qual):
            if attr in cnode.attr_types:
                return cnode.attr_types[attr]
        return None


class CallGraph:
    """Resolved call edges for every function in a :class:`Program`."""

    def __init__(self, program: Program):
        self.program = program
        self.calls: dict[str, list[CallSite]] = {}
        for fn in program.functions.values():
            self.calls[fn.qualname] = list(self._resolve_function(fn))

    # -- call resolution ---------------------------------------------------

    def _resolve_function(self, fn: FunctionNode) -> Iterator[CallSite]:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                targets, raw, ambiguous = self._resolve_call(fn, node)
                yield CallSite(
                    caller=fn.qualname,
                    node=node,
                    targets=tuple(targets),
                    raw=raw,
                    ambiguous=ambiguous,
                )

    def _resolve_call(
        self, fn: FunctionNode, call: ast.Call
    ) -> tuple[list[str], "str | None", bool]:
        mod = self.program.modules[fn.module]
        raw = dotted_name(call.func)
        # 1. plain / dotted names resolvable through the import map
        if raw is not None and not raw.startswith(("self.", "cls.")):
            resolved = self.program.resolve_dotted(mod, raw)
            if resolved is not None:
                return self._as_targets(resolved), raw, False
        # 2. self./cls. chains
        if raw is not None and raw.startswith(("self.", "cls.")) and fn.cls:
            parts = raw.split(".")
            if len(parts) == 2:
                target = self.program.resolve_method(fn.cls, parts[1])
                if target is not None:
                    return [target], raw, False
            elif len(parts) == 3:
                # self.<attr>.<meth> via the harvested attr-type map
                owner = self.program.attr_type(fn.cls, parts[1])
                if owner is not None:
                    target = self.program.resolve_method(owner, parts[2])
                    if target is not None:
                        return [target], raw, False
        # 3. bounded name-match fallback on the terminal attribute
        name = terminal_name(call.func)
        if name is not None and isinstance(call.func, ast.Attribute):
            candidates = self.program.methods_by_name.get(name, [])
            if 0 < len(candidates) <= _FALLBACK_CAP:
                return list(candidates), raw or name, True
        return [], raw, False

    def _as_targets(self, resolved: str) -> list[str]:
        """Expand a resolved qualname to the functions a call runs.

        Calling a class runs its ``__init__`` (searched up the MRO);
        a bare module reference is not callable and yields nothing.
        """
        if resolved in self.program.functions:
            return [resolved]
        if resolved in self.program.classes:
            init = self.program.resolve_method(resolved, "__init__")
            return [init] if init is not None else []
        return []

    # -- traversal ---------------------------------------------------------

    def callees(self, qualname: str) -> Iterator[CallSite]:
        yield from self.calls.get(qualname, [])

    def reachable(
        self, starts: Iterable[str], *, include_ambiguous: bool = True
    ) -> set[str]:
        """Every function reachable from ``starts`` through call edges."""
        seen: set[str] = set()
        stack = [s for s in starts]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for site in self.calls.get(qual, ()):
                if site.ambiguous and not include_ambiguous:
                    continue
                stack.extend(t for t in site.targets if t not in seen)
        return seen

    def find_path(
        self,
        start: str,
        goal_pred: "callable",
        *,
        include_ambiguous: bool = True,
    ) -> "list[str] | None":
        """A call chain ``[start, ..., f]`` with ``goal_pred(f)`` true."""
        seen = {start}
        queue: list[list[str]] = [[start]]
        while queue:
            path = queue.pop(0)
            qual = path[-1]
            if goal_pred(qual):
                return path
            for site in self.calls.get(qual, ()):
                if site.ambiguous and not include_ambiguous:
                    continue
                for target in site.targets:
                    if target not in seen:
                        seen.add(target)
                        queue.append(path + [target])
        return None
