"""Static wire-protocol totality checks (RV201–RV205).

The shard plane speaks the NDJSON envelope protocol documented in the
:mod:`repro.shard.wire` docstring table; the public edge speaks the verb
table in :mod:`repro.server.protocol`.  This checker extracts both
vocabularies *from the source* and proves totality against the actual
handler code:

* **RV201 unhandled-frame** — a frame kind is sent somewhere but no
  dispatch branch anywhere receives it: the receiver drops it on the
  floor and the sender's future hangs until a timeout cleans up.
* **RV202 unsent-frame** — a dispatch branch (or a wire.py table row)
  handles a kind nothing ever sends: dead protocol surface that rots.
* **RV203 frame-key-mismatch** — a send site omits a key the wire.py
  table declares for that kind, or omits a key some receiver branch
  *subscripts* (``frame["epoch"]``; ``.get()`` access is optional by
  construction).  Receiver-required keys are traced interprocedurally
  through calls the dispatch branch makes with the frame.
* **RV204 verb-totality** — every verb in ``protocol.VERBS`` reaches a
  handler comparison in service/router/worker code, and every verb
  compared in handler code exists in ``VERBS`` (dead branch otherwise).
* **RV205 trace-echo** — every ``encode_response``/``encode_error``
  call site with a real request id passes ``trace=``; the protocol-v2
  contract echoes the client's trace id on *every* response and error
  frame.  Sites whose first argument is the literal ``None`` (decode
  failures — no request exists) are exempt.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.lint import Finding
from repro.analysis.verify.callgraph import (
    CallGraph,
    FunctionNode,
    Program,
    dotted_name,
)

__all__ = [
    "FrameSpec",
    "HandlerBranch",
    "SendSite",
    "check_protocol",
    "parse_wire_vocabulary",
]

_ROW_RE = re.compile(r"^``(\w+)``\s+(w -> r|r -> w)\s+(.*)$")
_SPAN_RE = re.compile(r"``([^`]+)``")


@dataclass(frozen=True)
class FrameSpec:
    """One row of the wire.py frame table."""

    kind: str
    direction: str  # "r->w" | "w->r"
    required: tuple[str, ...]
    #: alternation groups ("result | error"): at least one per group.
    choices: tuple[frozenset[str], ...]


def parse_wire_vocabulary(docstring: str) -> dict[str, FrameSpec]:
    """Extract the frame table from the wire.py module docstring.

    Rows start with ````kind``  direction  payload`` and may continue on
    indented lines; payload keys are the ````key```` spans, ``a | b``
    spans become alternation groups, and a payload of ``none`` (the
    ``shutdown`` row) means an empty payload.
    """
    specs: dict[str, FrameSpec] = {}
    current: "tuple[str, str, list[str]] | None" = None

    def flush() -> None:
        nonlocal current
        if current is None:
            return
        kind, direction, chunks = current
        required: list[str] = []
        choices: list[frozenset[str]] = []
        for span in _SPAN_RE.findall(" ".join(chunks)):
            if "|" in span:
                choices.append(
                    frozenset(p.strip() for p in span.split("|") if p.strip())
                )
            elif span.strip() and span.strip() != "none":
                required.append(span.strip())
        specs[kind] = FrameSpec(
            kind=kind,
            direction=direction.replace(" ", ""),
            required=tuple(required),
            choices=tuple(choices),
        )
        current = None

    for line in docstring.splitlines():
        stripped = line.strip()
        match = _ROW_RE.match(stripped)
        if match:
            flush()
            current = (match.group(1), match.group(2), [match.group(3)])
        elif current is not None:
            if stripped.startswith("=") or not stripped:
                flush()
            else:
                current[2].append(stripped)
    flush()
    return specs


@dataclass(frozen=True)
class SendSite:
    """A dict literal ``{"t": kind, ...}`` built to be sent on the wire."""

    kind: str
    fn: str
    path: str
    node: ast.Dict
    keys: frozenset[str]
    complete: bool  # False when the literal has **spreads/computed keys


@dataclass
class HandlerBranch:
    """One ``kind == "x"`` dispatch branch and the frame var it reads."""

    kind: str
    fn: str
    path: str
    node: ast.AST  # the comparison (for RV202 location)
    frame_var: "str | None"
    body: list[ast.stmt] = field(default_factory=list)


def _collect_send_sites(program: Program) -> list[SendSite]:
    sites: list[SendSite] = []
    for fn in program.functions.values():
        if ".shard." not in f".{fn.module}." and not fn.module.endswith(
            ".shard"
        ):
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Dict):
                continue
            kind: "str | None" = None
            keys: set[str] = set()
            complete = True
            for key, value in zip(node.keys, node.values):
                if key is None:  # **spread
                    complete = False
                    continue
                if not isinstance(key, ast.Constant) or not isinstance(
                    key.value, str
                ):
                    complete = False
                    continue
                keys.add(key.value)
                if (
                    key.value == "t"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    kind = value.value
            if kind is not None:
                sites.append(
                    SendSite(
                        kind=kind,
                        fn=fn.qualname,
                        path=fn.path,
                        node=node,
                        keys=frozenset(keys - {"t"}),
                        complete=complete,
                    )
                )
    return sites


def _kind_comparisons(
    fn: FunctionNode,
) -> Iterator[tuple[str, ast.Compare, "str | None"]]:
    """(kind constant, compare node, frame var) for ``t``-dispatches."""
    # vars assigned from <frame>["t"] / <frame>.get("t")
    kind_vars: dict[str, str] = {}
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            frame_var = _t_access_source(node.value)
            if isinstance(target, ast.Name) and frame_var is not None:
                kind_vars[target.id] = frame_var
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Compare) or len(node.comparators) != 1:
            continue
        rhs = node.comparators[0]
        if not isinstance(rhs, ast.Constant) or not isinstance(rhs.value, str):
            continue
        lhs = node.left
        frame_var: "str | None" = None
        if isinstance(lhs, ast.Name) and lhs.id in kind_vars:
            frame_var = kind_vars[lhs.id]
        else:
            frame_var = _t_access_source(lhs)
            if frame_var is None:
                continue
        yield rhs.value, node, frame_var


def _t_access_source(node: ast.AST) -> "str | None":
    """The var name X for ``X["t"]`` or ``X.get("t")`` expressions."""
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == "t"
    ):
        return node.value.id
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and isinstance(node.func.value, ast.Name)
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "t"
    ):
        return node.func.value.id
    return None


def _collect_handlers(program: Program) -> list[HandlerBranch]:
    """Every dispatch branch, with the statements it guards."""
    handlers: list[HandlerBranch] = []
    for fn in program.functions.values():
        if ".shard." not in f".{fn.module}.":
            continue
        compares = list(_kind_comparisons(fn))
        if not compares:
            continue
        # map each comparison to the If body it guards (when it is a test)
        for kind, cmp_node, frame_var in compares:
            body: list[ast.stmt] = []
            for node in ast.walk(fn.node):
                if isinstance(node, ast.If) and _test_contains(
                    node.test, cmp_node
                ):
                    body = node.body
                    break
            handlers.append(
                HandlerBranch(
                    kind=kind,
                    fn=fn.qualname,
                    path=fn.path,
                    node=cmp_node,
                    frame_var=frame_var,
                    body=body,
                )
            )
    return handlers


def _test_contains(test: ast.AST, needle: ast.AST) -> bool:
    return any(node is needle for node in ast.walk(test))


class _RequiredKeys:
    """Interprocedural ``param["key"]`` usage, traced through calls."""

    def __init__(self, program: Program, graph: CallGraph):
        self.program = program
        self.graph = graph
        self._memo: dict[tuple[str, str], set[str]] = {}

    def for_branch(self, branch: HandlerBranch) -> set[str]:
        if branch.frame_var is None:
            return set()
        keys: set[str] = set()
        for stmt in branch.body:
            for node in ast.walk(stmt):
                keys |= self._direct_keys(node, branch.frame_var)
                if isinstance(node, ast.Call):
                    keys |= self._through_call(branch.fn, node, branch.frame_var)
        return keys

    def _direct_keys(self, node: ast.AST, var: str) -> set[str]:
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == var
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and isinstance(node.ctx, ast.Load)
        ):
            return {node.slice.value}
        return set()

    def _through_call(
        self, caller: str, call: ast.Call, var: str
    ) -> set[str]:
        positions = [
            i
            for i, arg in enumerate(call.args)
            if isinstance(arg, ast.Name) and arg.id == var
        ]
        kw_names = [
            kw.arg
            for kw in call.keywords
            if isinstance(kw.value, ast.Name)
            and kw.value.id == var
            and kw.arg is not None
        ]
        if not positions and not kw_names:
            return set()
        keys: set[str] = set()
        for site in self.graph.calls.get(caller, ()):
            if site.node is not call:
                continue
            if site.ambiguous and len(site.targets) != 1:
                continue
            for target in site.targets:
                fn = self.program.functions.get(target)
                if fn is None:
                    continue
                params = [a.arg for a in fn.node.args.args]
                if fn.cls is not None and params and params[0] in (
                    "self",
                    "cls",
                ):
                    params = params[1:]
                for pos in positions:
                    if pos < len(params):
                        keys |= self.required(target, params[pos])
                for name in kw_names:
                    if name in params:
                        keys |= self.required(target, name)
        return keys

    def required(self, fn_qual: str, param: str) -> set[str]:
        memo_key = (fn_qual, param)
        if memo_key in self._memo:
            return self._memo[memo_key]
        self._memo[memo_key] = set()  # cycle guard
        fn = self.program.functions.get(fn_qual)
        if fn is None:
            return set()
        keys: set[str] = set()
        for node in ast.walk(fn.node):
            keys |= self._direct_keys(node, param)
            if isinstance(node, ast.Call):
                keys |= self._through_call(fn_qual, node, param)
        self._memo[memo_key] = keys
        return keys


def _emit(
    out: list[Finding], path: str, node: ast.AST, code: str, message: str
) -> None:
    out.append(
        Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )
    )


def _check_frames(
    program: Program, graph: CallGraph, out: list[Finding]
) -> None:
    wire = program.modules.get("repro.shard.wire")
    vocab: dict[str, FrameSpec] = {}
    if wire is not None:
        doc = ast.get_docstring(wire.tree) or ""
        vocab = parse_wire_vocabulary(doc)
    sends = _collect_send_sites(program)
    handlers = _collect_handlers(program)
    handled_kinds = {h.kind for h in handlers}
    sent_kinds = {s.kind for s in sends}

    req_keys = _RequiredKeys(program, graph)
    by_kind_required: dict[str, set[str]] = {}
    for handler in handlers:
        by_kind_required.setdefault(handler.kind, set()).update(
            req_keys.for_branch(handler)
        )

    for site in sends:
        if site.kind not in handled_kinds:
            _emit(
                out,
                site.path,
                site.node,
                "RV201",
                f"frame kind {site.kind!r} sent from {site.fn} has no "
                "dispatch branch on the receiving side; the peer drops it "
                "and the sender's future never resolves",
            )
        if vocab and site.kind not in vocab:
            _emit(
                out,
                site.path,
                site.node,
                "RV203",
                f"frame kind {site.kind!r} sent from {site.fn} is not "
                "documented in the wire.py frame table",
            )
        elif site.complete and site.kind in vocab:
            spec = vocab[site.kind]
            missing = [k for k in spec.required if k not in site.keys]
            for key in missing:
                _emit(
                    out,
                    site.path,
                    site.node,
                    "RV203",
                    f"send site of {site.kind!r} in {site.fn} omits "
                    f"documented key {key!r}",
                )
            for group in spec.choices:
                if not (group & site.keys):
                    _emit(
                        out,
                        site.path,
                        site.node,
                        "RV203",
                        f"send site of {site.kind!r} in {site.fn} satisfies "
                        f"none of the alternation {sorted(group)}",
                    )
        if site.complete:
            for key in sorted(
                by_kind_required.get(site.kind, set()) - site.keys
            ):
                _emit(
                    out,
                    site.path,
                    site.node,
                    "RV203",
                    f"send site of {site.kind!r} in {site.fn} omits key "
                    f"{key!r} which a receiver branch subscripts "
                    "unconditionally (KeyError on the peer)",
                )

    for handler in handlers:
        if handler.kind not in sent_kinds:
            _emit(
                out,
                handler.path,
                handler.node,
                "RV202",
                f"dispatch branch for frame kind {handler.kind!r} in "
                f"{handler.fn} is dead: nothing ever sends it",
            )
    if vocab:
        wire_path = wire.path if wire is not None else "wire.py"
        for kind in sorted(set(vocab) - sent_kinds):
            _emit(
                out,
                wire_path,
                ast.Constant(value=kind, lineno=1, col_offset=0),
                "RV202",
                f"wire.py documents frame kind {kind!r} but no send site "
                "builds it",
            )


def _verbs_from_protocol(program: Program) -> set[str]:
    mod = program.modules.get("repro.server.protocol")
    verbs: set[str] = set()
    if mod is None:
        return verbs
    for stmt in mod.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "VERBS"
            and isinstance(stmt.value, ast.Dict)
        ):
            for key in stmt.value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    verbs.add(key.value)
    return verbs


_HANDLER_MODULES = (
    "repro.server.service",
    "repro.shard.router",
    "repro.shard.worker",
)


def _verb_comparisons(
    program: Program,
) -> list[tuple[str, FunctionNode, ast.AST]]:
    """String constants compared against a ``*verb``-named expression."""
    out: list[tuple[str, FunctionNode, ast.AST]] = []
    for fn in program.functions.values():
        if fn.module not in _HANDLER_MODULES:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Compare):
                continue
            if not _is_verb_expr(node.left):
                continue
            for comparator in node.comparators:
                for const in _string_constants(comparator):
                    out.append((const, fn, node))
    return out


def _is_verb_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id.endswith("verb")
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("verb")
    return False


def _string_constants(node: ast.AST) -> Iterator[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        yield node.value
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for elt in node.elts:
            yield from _string_constants(elt)


def _check_verbs(program: Program, out: list[Finding]) -> None:
    verbs = _verbs_from_protocol(program)
    if not verbs:
        return
    comparisons = _verb_comparisons(program)
    handled = {verb for verb, _, _ in comparisons}
    # WRITE_VERBS routes through the write path without a per-verb compare
    # in _dispatch; the write executor compares "insert" and falls through
    # to delete, which the comparison scan already picks up.
    proto = program.modules.get("repro.server.protocol")
    proto_path = proto.path if proto is not None else "protocol.py"
    for verb in sorted(verbs - handled):
        _emit(
            out,
            proto_path,
            ast.Constant(value=verb, lineno=1, col_offset=0),
            "RV204",
            f"verb {verb!r} is in protocol.VERBS but no handler in "
            "service/router/worker compares it; requests for it can only "
            "fall through to a generic error",
        )
    for verb, fn, node in comparisons:
        if verb not in verbs:
            _emit(
                out,
                fn.path,
                node,
                "RV204",
                f"handler in {fn.qualname} compares verb {verb!r} which is "
                "not in protocol.VERBS: dead branch (the edge validator "
                "rejects unknown verbs first)",
            )


_RESPONSE_MODULES = (
    "repro.server.service",
    "repro.shard.router",
)


def _check_trace_echo(program: Program, out: list[Finding]) -> None:
    for fn in program.functions.values():
        if fn.module not in _RESPONSE_MODULES:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if raw not in ("encode_error", "encode_response"):
                continue
            if node.args and (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            ):
                continue  # no request exists (decode failure); exempt
            if any(kw.arg == "trace" for kw in node.keywords):
                continue
            _emit(
                out,
                fn.path,
                node,
                "RV205",
                f"{raw}() in {fn.qualname} does not pass trace=; the "
                "protocol-v2 contract echoes the client's trace id on "
                "every response and error frame",
            )


def check_protocol(program: Program, graph: CallGraph) -> list[Finding]:
    """Run RV201–RV205; findings are unwaived."""
    out: list[Finding] = []
    _check_frames(program, graph, out)
    _check_verbs(program, out)
    _check_trace_echo(program, out)
    out.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return out
