"""Interprocedural concurrency analysis (RV101–RV105).

Upgrades the lexical REP002/REP003 lint rules to whole-program checks
over the :mod:`~repro.analysis.verify.callgraph`:

* **RV101 lock-order-cycle** — build a lock-acquisition-order graph
  (edge A→B when B is acquired, lexically or through any call chain,
  while A is held) and report cycles, including re-acquisition of a
  non-reentrant ``threading.Lock``.  Lock identity is ``Class.attr`` or
  ``module.name``: instance-insensitive, which over-approximates when
  two distinct instances of one class interact.
* **RV102 blocking-under-lock** — a hard-blocking call (``time.sleep``,
  sockets, subprocess, ``open``) or an unbounded numpy build is
  *transitively* reachable from a ``with <lock>:`` body.
* **RV103 blocking-in-async** — a hard-blocking call is reachable from
  an ``async def`` through one or more *sync* callees (depth ≥ 1; the
  lexical depth-0 case is REP003's).
* **RV104 publish-outside-lock** — in a lock-owning class, an attribute
  that is assigned under the lock somewhere (a *guarded* attribute,
  e.g. ``SnapshotStore._current``) is assigned outside any lock body in
  a method other than ``__init__``.
* **RV105 unfrozen-column-write** — an in-place write to a spatial
  column array (``xl``/``yl``/…/``ids``/``offsets``) in a server/shard
  module that neither freezes arrays (``setflags``/``freeze_arrays``)
  nor bumps a version/epoch in the enclosing function: a torn read
  waiting to happen under concurrent readers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.lint import Finding
from repro.analysis.rules import _BLOCKING_CALLS, _NP_HEAVY_CALLS
from repro.analysis.verify.callgraph import (
    CallGraph,
    FunctionNode,
    Program,
    dotted_name,
    terminal_name,
)

__all__ = ["LockSite", "check_concurrency", "collect_lock_model"]

_LOCK_CTORS = {
    "threading.Lock": "sync",
    "threading.RLock": "rlock",
    "asyncio.Lock": "async",
    "multiprocessing.Lock": "sync",
}

#: spatial column names whose arrays are published to concurrent readers.
_COLUMN_NAMES = frozenset(
    {"xl", "yl", "xu", "yu", "ids", "offsets", "fast_q"}
)

_FREEZE_TOKENS = ("setflags", "writeable", "freeze_array")
_EPOCH_NAMES = frozenset({"version", "epoch", "seq", "_version", "_epoch"})


@dataclass(frozen=True)
class LockSite:
    """One ``with <lock>:`` acquisition inside a function."""

    fn: str
    lock_id: str
    kind: str  # "sync" | "rlock" | "async" | "unknown"
    node: ast.AST  # the With/AsyncWith statement
    is_async_with: bool


def _is_lockish(expr: ast.AST) -> bool:
    name = terminal_name(expr)
    return name is not None and "lock" in name.lower()


def collect_lock_model(
    program: Program,
) -> tuple[dict[str, str], dict[str, list[LockSite]]]:
    """(lock kinds by identity, lock sites by function qualname)."""
    kinds: dict[str, str] = {}
    for cnode in program.classes.values():
        for node in ast.walk(cnode.node):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            raw = dotted_name(node.value.func)
            if raw not in _LOCK_CTORS:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    kinds[f"{cnode.name}.{target.attr}"] = _LOCK_CTORS[raw]
    for mod in program.modules.values():
        for stmt in mod.tree.body:
            if not isinstance(stmt, ast.Assign) or not isinstance(
                stmt.value, ast.Call
            ):
                continue
            raw = dotted_name(stmt.value.func)
            if raw not in _LOCK_CTORS:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    kinds[f"{mod.dotted}.{target.id}"] = _LOCK_CTORS[raw]

    sites: dict[str, list[LockSite]] = {}
    for fn in program.functions.values():
        sites[fn.qualname] = list(_lock_sites(program, fn, kinds))
    return kinds, sites


def _lock_identity(
    program: Program, fn: FunctionNode, expr: ast.AST, kinds: dict[str, str]
) -> tuple[str, str]:
    """(identity, kind) for a lock context expression."""
    raw = dotted_name(expr)
    if raw is not None and raw.startswith("self.") and fn.cls is not None:
        attr = raw.split(".", 1)[1]
        for cnode in program.mro(fn.cls):
            key = f"{cnode.name}.{attr}"
            if key in kinds:
                return key, kinds[key]
        owner = program.classes[fn.cls].name
        return f"{owner}.{attr}", "unknown"
    if raw is not None and "." not in raw:
        key = f"{fn.module}.{raw}"
        if key in kinds:
            return key, kinds[key]
        return f"{fn.qualname}.<local>.{raw}", "unknown"
    name = terminal_name(expr) or "<lock>"
    return f"{fn.module}.<expr>.{name}", "unknown"


def _lock_sites(
    program: Program, fn: FunctionNode, kinds: dict[str, str]
) -> Iterator[LockSite]:
    for node in ast.walk(fn.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                continue  # with open(...) etc., not a lock object
            if not _is_lockish(expr):
                continue
            lock_id, kind = _lock_identity(program, fn, expr, kinds)
            yield LockSite(
                fn=fn.qualname,
                lock_id=lock_id,
                kind=kind,
                node=node,
                is_async_with=isinstance(node, ast.AsyncWith),
            )


def _blocking_dotted(call: ast.Call) -> "str | None":
    """The blocking-vocabulary name this call matches, if any."""
    raw = dotted_name(call.func)
    if raw is None:
        return None
    if raw in _BLOCKING_CALLS or raw in _NP_HEAVY_CALLS:
        return raw
    if raw == "open":
        return "open"
    return None


def _hard_blocking_dotted(call: ast.Call) -> "str | None":
    raw = dotted_name(call.func)
    if raw is None:
        return None
    if raw in _BLOCKING_CALLS or raw == "open":
        return raw
    return None


def _function_blocking_sites(
    fn: FunctionNode, *, hard_only: bool
) -> list[tuple[ast.Call, str]]:
    match = _hard_blocking_dotted if hard_only else _blocking_dotted
    out: list[tuple[ast.Call, str]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            hit = match(node)
            if hit is not None:
                out.append((node, hit))
    return out


class _ConcurrencyChecker:
    def __init__(self, program: Program, graph: CallGraph):
        self.program = program
        self.graph = graph
        self.kinds, self.sites = collect_lock_model(program)
        self.findings: list[Finding] = []
        # function -> lock ids acquired lexically anywhere in its body
        self.lexical: dict[str, set[str]] = {
            fn: {s.lock_id for s in sites} for fn, sites in self.sites.items()
        }
        self._blocking_cache: dict[tuple[str, bool], "tuple | None"] = {}
        self._acquires_cache: dict[str, set[str]] = {}

    def _emit(
        self, fn: FunctionNode, node: ast.AST, code: str, message: str
    ) -> None:
        self.findings.append(
            Finding(
                path=fn.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    # -- reachability helpers ---------------------------------------------

    def _acquired_transitively(self, start: str) -> set[str]:
        """Lock ids acquired anywhere in the call closure of ``start``."""
        cached = self._acquires_cache.get(start)
        if cached is not None:
            return cached
        acquired: set[str] = set()
        for fn in self.graph.reachable([start]):
            acquired |= self.lexical.get(fn, set())
        self._acquires_cache[start] = acquired
        return acquired

    def _blocking_chain(
        self, start: str, *, hard_only: bool
    ) -> "tuple[list[str], str] | None":
        """(call chain, blocking name) if blocking is reachable from start."""
        key = (start, hard_only)
        if key in self._blocking_cache:
            return self._blocking_cache[key]

        def has_blocking(qual: str) -> bool:
            fn = self.program.functions.get(qual)
            return fn is not None and bool(
                _function_blocking_sites(fn, hard_only=hard_only)
            )

        path = self.graph.find_path(
            start, has_blocking, include_ambiguous=False
        )
        result = None
        if path is not None:
            fn = self.program.functions[path[-1]]
            _, name = _function_blocking_sites(fn, hard_only=hard_only)[0]
            result = (path, name)
        self._blocking_cache[key] = result
        return result

    # -- RV101 -------------------------------------------------------------

    def check_lock_order(self) -> None:
        # edges[(a, b)] = (fn, node, via) — first witness of acquiring b
        # while holding a.
        edges: dict[tuple[str, str], tuple[FunctionNode, ast.AST, str]] = {}
        for fn_qual, sites in self.sites.items():
            fn = self.program.functions[fn_qual]
            for site in sites:
                held = site.lock_id
                for inner in ast.walk(site.node):
                    if inner is site.node:
                        continue
                    # lexical nested acquisition
                    if isinstance(inner, (ast.With, ast.AsyncWith)):
                        for other in self.sites[fn_qual]:
                            if other.node is inner and other.lock_id != held:
                                edges.setdefault(
                                    (held, other.lock_id),
                                    (fn, inner, "lexically"),
                                )
                            if (
                                other.node is inner
                                and other.lock_id == held
                                and site.kind == "sync"
                            ):
                                self._emit(
                                    fn,
                                    inner,
                                    "RV101",
                                    f"non-reentrant lock {held} re-acquired "
                                    f"while already held in {fn_qual} — "
                                    "self-deadlock",
                                )
                    # transitive acquisition through a call
                    if isinstance(inner, ast.Call):
                        for tgt_site in self.graph.calls.get(fn_qual, ()):
                            if tgt_site.node is not inner:
                                continue
                            for target in tgt_site.targets:
                                for acq in self._acquired_transitively(target):
                                    if acq == held:
                                        if site.kind == "sync":
                                            self._emit(
                                                fn,
                                                inner,
                                                "RV101",
                                                f"call {tgt_site.raw}() under "
                                                f"lock {held} can re-acquire "
                                                f"{held} (via {target}) — "
                                                "self-deadlock on a "
                                                "non-reentrant lock",
                                            )
                                    else:
                                        edges.setdefault(
                                            (held, acq),
                                            (fn, inner, f"via {target}"),
                                        )
        self._report_cycles(edges)

    def _report_cycles(
        self,
        edges: dict[tuple[str, str], tuple[FunctionNode, ast.AST, str]],
    ) -> None:
        graph: dict[str, set[str]] = {}
        for a, b in edges:
            graph.setdefault(a, set()).add(b)
        # DFS cycle detection with path recovery
        seen: set[str] = set()
        for root in sorted(graph):
            if root in seen:
                continue
            stack: list[tuple[str, list[str]]] = [(root, [root])]
            on_path: set[str] = set()
            while stack:
                node, path = stack.pop()
                on_path = set(path)
                seen.add(node)
                for nxt in sorted(graph.get(node, ())):
                    if nxt in on_path:
                        cycle = path[path.index(nxt) :] + [nxt]
                        fn, loc, via = edges[(node, nxt)]
                        self._emit(
                            fn,
                            loc,
                            "RV101",
                            "lock-order cycle "
                            + " -> ".join(cycle)
                            + f" (edge {node} -> {nxt} acquired {via} in "
                            f"{fn.qualname}; a concurrent thread taking the "
                            "locks in the opposite order deadlocks)",
                        )
                    elif nxt not in seen:
                        stack.append((nxt, path + [nxt]))

    # -- RV102 -------------------------------------------------------------

    def check_blocking_under_lock(self) -> None:
        for fn_qual, sites in self.sites.items():
            fn = self.program.functions[fn_qual]
            for site in sites:
                if site.kind not in ("sync", "rlock", "unknown"):
                    continue
                if site.is_async_with:
                    continue
                body = [n for n in ast.walk(site.node) if n is not site.node]
                for inner in body:
                    if not isinstance(inner, ast.Call):
                        continue
                    # lexical blocking call directly under the lock
                    hit = _blocking_dotted(inner)
                    if hit is not None:
                        self._emit(
                            fn,
                            inner,
                            "RV102",
                            f"{hit}() called while holding {site.lock_id} "
                            f"in {fn_qual}; every reader/writer queued on "
                            "the lock stalls behind it",
                        )
                        continue
                    # transitive: any resolved callee reaching blocking code
                    for call_site in self.graph.calls.get(fn_qual, ()):
                        if call_site.node is not inner or call_site.ambiguous:
                            continue
                        for target in call_site.targets:
                            chain = self._blocking_chain(
                                target, hard_only=False
                            )
                            if chain is None:
                                continue
                            path, name = chain
                            self._emit(
                                fn,
                                inner,
                                "RV102",
                                f"{call_site.raw}() under {site.lock_id} "
                                f"reaches blocking {name}() through "
                                + " -> ".join(path),
                            )
                            break

    # -- RV103 -------------------------------------------------------------

    def check_blocking_in_async(self) -> None:
        for fn in self.program.functions.values():
            if not fn.is_async:
                continue
            reported: set[str] = set()
            for call_site in self.graph.calls.get(fn.qualname, ()):
                if call_site.ambiguous:
                    continue
                for target in call_site.targets:
                    if target == fn.qualname or target in reported:
                        continue
                    chain = self._blocking_chain(target, hard_only=True)
                    if chain is None:
                        continue
                    path, name = chain
                    tgt_fn = self.program.functions.get(target)
                    if tgt_fn is not None and tgt_fn.is_async:
                        # awaited async callee: its own RV103 pass covers it
                        continue
                    reported.add(target)
                    self._emit(
                        fn,
                        call_site.node,
                        "RV103",
                        f"async {fn.qualname} reaches blocking {name}() "
                        "through sync chain " + " -> ".join(path)
                        + "; the event loop stalls for its full duration",
                    )

    # -- RV104 -------------------------------------------------------------

    def check_publish_outside_lock(self) -> None:
        for cnode in self.program.classes.values():
            owned = {
                key
                for key in self.kinds
                if key.startswith(f"{cnode.name}.")
                and self.kinds[key] in ("sync", "rlock")
            }
            if not owned:
                continue
            guarded: set[str] = set()
            # pass 1: attributes assigned under the lock anywhere
            for name, fq in cnode.methods.items():
                fn = self.program.functions[fq]
                for site in self.sites.get(fq, ()):
                    if site.lock_id not in owned:
                        continue
                    for inner in ast.walk(site.node):
                        guarded |= set(_self_attr_targets(inner))
            if not guarded:
                continue
            # pass 2: same attributes assigned outside every lock body
            for name, fq in cnode.methods.items():
                if name == "__init__":
                    continue
                fn = self.program.functions[fq]
                locked_nodes: set[int] = set()
                for site in self.sites.get(fq, ()):
                    if site.lock_id in owned:
                        locked_nodes |= {
                            id(n) for n in ast.walk(site.node)
                        }
                for node in ast.walk(fn.node):
                    if id(node) in locked_nodes:
                        continue
                    for attr in _self_attr_targets(node):
                        if attr in guarded:
                            self._emit(
                                fn,
                                node,
                                "RV104",
                                f"self.{attr} is published under "
                                f"{sorted(owned)[0]} elsewhere but assigned "
                                f"without the lock in {fq}; concurrent "
                                "writers can interleave and readers can "
                                "observe a torn update",
                            )

    # -- RV105 -------------------------------------------------------------

    def check_unfrozen_column_writes(self) -> None:
        for mod in self.program.modules.values():
            parts = mod.dotted.split(".")
            if not (
                len(parts) >= 2 and parts[1] in ("server", "shard")
            ):
                continue
            has_freeze = any(tok in mod.source for tok in _FREEZE_TOKENS)
            if has_freeze:
                continue
            for fn in self.program.functions.values():
                if fn.module != mod.dotted:
                    continue
                bumps_epoch = any(
                    attr in _EPOCH_NAMES
                    for node in ast.walk(fn.node)
                    for attr in _self_attr_targets(node)
                )
                for node in ast.walk(fn.node):
                    target = _subscript_store_target(node)
                    if target is None:
                        continue
                    name = terminal_name(target.value)
                    if name in _COLUMN_NAMES and not bumps_epoch:
                        self._emit(
                            fn,
                            node,
                            "RV105",
                            f"in-place write to column array {name!r} in "
                            f"{fn.qualname} with no freeze discipline "
                            "(setflags/freeze_arrays) and no version/epoch "
                            "bump; concurrent readers can see a torn column",
                        )

    def run(self) -> list[Finding]:
        self.check_lock_order()
        self.check_blocking_under_lock()
        self.check_blocking_in_async()
        self.check_publish_outside_lock()
        self.check_unfrozen_column_writes()
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return self.findings


def _self_attr_targets(node: ast.AST) -> Iterator[str]:
    """Attribute names assigned as ``self.X = ...`` / ``self.X += ...``."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield target.attr


def _subscript_store_target(node: ast.AST) -> "ast.Subscript | None":
    """The subscript target of ``X[...] = v`` / ``X[...] += v``, if any."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                return target
    elif isinstance(node, ast.AugAssign) and isinstance(
        node.target, ast.Subscript
    ):
        return node.target
    return None


def check_concurrency(program: Program, graph: CallGraph) -> list[Finding]:
    """Run RV101–RV105 over the whole program; findings are unwaived."""
    return _ConcurrencyChecker(program, graph).run()
