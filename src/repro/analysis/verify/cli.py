"""``python -m repro.analysis.verify`` — run all three checkers.

Usage::

    python -m repro.analysis.verify                # whole repo, all checks
    python -m repro.analysis.verify --select RV101,RV205
    python -m repro.analysis.verify --list-rules
    python -m repro.analysis.verify --github       # CI annotations
    python -m repro.analysis.verify --skip-model --skip-explorer

Exit status 1 when any unwaived finding remains, mirroring repro-lint;
waivers use ``# repro-verify: disable=RVnnn`` (see :mod:`.base`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.lint import Finding, github_annotation
from repro.analysis.verify.base import collect_waivers
from repro.analysis.verify.callgraph import CallGraph, Program
from repro.analysis.verify.concurrency import check_concurrency
from repro.analysis.verify.protocol_check import check_protocol

__all__ = ["RULES", "main", "verify_program"]

#: the rule catalogue: code -> (name, one-line summary)
RULES: dict[str, tuple[str, str]] = {
    "RV101": (
        "lock-order-cycle",
        "locks acquired in conflicting orders (or re-acquired) across "
        "any call chain: potential deadlock",
    ),
    "RV102": (
        "blocking-under-lock",
        "a blocking or unbounded-numpy call is transitively reachable "
        "while a threading lock is held",
    ),
    "RV103": (
        "blocking-in-async",
        "a blocking call is reachable from an async def through sync "
        "callees (the lexical case is REP003)",
    ),
    "RV104": (
        "publish-outside-lock",
        "an attribute published under the class's lock elsewhere is "
        "assigned without the lock",
    ),
    "RV105": (
        "unfrozen-column-write",
        "in-place write to a shared spatial column with no freeze "
        "discipline and no version bump",
    ),
    "RV201": (
        "unhandled-frame",
        "a wire frame kind is sent but no dispatch branch receives it",
    ),
    "RV202": (
        "unsent-frame",
        "a dispatch branch or wire.py table row handles a kind nothing "
        "sends",
    ),
    "RV203": (
        "frame-key-mismatch",
        "a send site omits a key the wire table declares or a receiver "
        "subscripts unconditionally",
    ),
    "RV204": (
        "verb-totality",
        "protocol.VERBS and the verb handler comparisons disagree",
    ),
    "RV205": (
        "trace-echo",
        "a response/error encode site drops the trace= echo the v2 "
        "protocol requires on every branch",
    ),
    "RV301": (
        "protocol-model-violation",
        "exhaustive model check of the scatter/gather/quarantine state "
        "machine found a schedule violating P1-P6",
    ),
    "RV401": (
        "interleaving-violation",
        "the deterministic interleaving explorer found a snapshot "
        "publish/read or write-replication schedule breaking isolation",
    ),
}


def _anchor(program: Program, qualname: str, default_path: str) -> tuple[str, int]:
    fn = program.functions.get(qualname)
    if fn is not None:
        return fn.path, fn.node.lineno
    return default_path, 1


def _model_findings(program: Program, *, thorough: bool) -> list[Finding]:
    from repro.analysis.verify.model import check_model

    path, line = _anchor(
        program,
        "repro.shard.router.ShardedQueryService._merge",
        "src/repro/shard/router.py",
    )
    findings: list[Finding] = []
    for violation in check_model(thorough=thorough):
        schedule = " ; ".join(violation.schedule[-8:])
        findings.append(
            Finding(
                path=path,
                line=line,
                col=1,
                code="RV301",
                message=(
                    f"[{violation.prop}] {violation.detail} "
                    f"(config={violation.config}, schedule tail: {schedule})"
                ),
            )
        )
    return findings


def _explorer_findings(program: Program) -> list[Finding]:
    from repro.analysis.verify.schedule import (
        default_worker_loop,
        explore_replication,
        explore_snapshot_store,
        make_scripted_store,
    )
    from repro.geometry.mbr import Rect

    findings: list[Finding] = []
    store, rects = make_scripted_store()
    ops = [
        ("insert", Rect(0.4, 0.4, 0.5, 0.5)),
        ("delete", 3),
        ("insert", Rect(0.1, 0.6, 0.2, 0.7)),
        ("delete", 100),  # miss: version must not advance
        ("delete", 3),  # repeat miss on a tombstone
    ]
    snap_path, snap_line = _anchor(
        program,
        "repro.server.snapshot.SnapshotStore.insert",
        "src/repro/server/snapshot.py",
    )
    report = explore_snapshot_store(store, rects, ops)
    for violation in report.violations:
        findings.append(
            Finding(
                path=snap_path,
                line=snap_line,
                col=1,
                code="RV401",
                message=f"snapshot publish/read: {violation}",
            )
        )
    worker_path, worker_line = _anchor(
        program,
        "repro.shard.worker._WorkerLoop.apply_write",
        "src/repro/shard/worker.py",
    )
    report = explore_replication(default_worker_loop)
    for violation in report.violations:
        findings.append(
            Finding(
                path=worker_path,
                line=worker_line,
                col=1,
                code="RV401",
                message=f"write replication: {violation}",
            )
        )
    return findings


def verify_program(
    root: "str | Path" = "src",
    *,
    select: "set[str] | None" = None,
    run_model: bool = True,
    run_explorer: bool = True,
    thorough_model: bool = True,
) -> list[Finding]:
    """Run every selected checker over ``root``; waivers applied."""
    program = Program.from_root(root)
    graph = CallGraph(program)
    findings: list[Finding] = []
    findings.extend(check_concurrency(program, graph))
    findings.extend(check_protocol(program, graph))
    if run_model and (select is None or "RV301" in select):
        findings.extend(_model_findings(program, thorough=thorough_model))
    if run_explorer and (select is None or "RV401" in select):
        findings.extend(_explorer_findings(program))
    if select is not None:
        findings = [f for f in findings if f.code in select]
    waivers = {
        mod.path: collect_waivers(mod.source)
        for mod in program.modules.values()
    }
    kept = [
        f
        for f in findings
        if f.path not in waivers
        or not waivers[f.path].suppressed(f.code, f.line)
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept


def _parse_select(spec: "str | None") -> "set[str] | None":
    if not spec:
        return None
    wanted = {code.strip().upper() for code in spec.split(",") if code.strip()}
    unknown = wanted - set(RULES)
    if unknown:
        raise SystemExit(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return wanted


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.verify",
        description=(
            "Interprocedural concurrency analysis, wire-protocol model "
            "checking and deterministic interleaving exploration."
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default="src",
        help="source root to analyse (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated RV codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the catalogue"
    )
    parser.add_argument(
        "--github",
        action="store_true",
        help="emit GitHub Actions ::error annotations",
    )
    parser.add_argument(
        "--skip-model",
        action="store_true",
        help="skip the RV301 protocol model check",
    )
    parser.add_argument(
        "--skip-explorer",
        action="store_true",
        help="skip the RV401 interleaving explorer",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="model-check 2 shards only (skip the 3-shard pass)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, (name, summary) in RULES.items():
            print(f"{code}  {name}")
            print(f"    {summary}")
        return 0

    findings = verify_program(
        args.root,
        select=_parse_select(args.select),
        run_model=not args.skip_model,
        run_explorer=not args.skip_explorer,
        thorough_model=not args.fast,
    )
    for finding in findings:
        print(finding.render())
        if args.github:
            print(github_annotation(finding))
    if findings:
        print(
            f"repro-verify: {len(findings)} finding(s)", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
