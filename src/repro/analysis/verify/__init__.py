"""``repro-verify``: interprocedural and cross-process correctness tooling.

Three complementary checkers, run together as
``python -m repro.analysis.verify``:

* :mod:`repro.analysis.verify.concurrency` — interprocedural
  concurrency analysis over a repo-wide call graph
  (:mod:`repro.analysis.verify.callgraph`): lock-acquisition-order
  cycles (potential deadlocks), blocking calls *transitively* reachable
  under a held ``threading.Lock`` or from an ``async def`` (upgrading
  the lexical REP002/REP003 lint rules), snapshot publications outside
  the writer lock, and shared-column writes in modules without the
  freeze discipline.

* :mod:`repro.analysis.verify.protocol_check` +
  :mod:`repro.analysis.verify.model` — wire-protocol totality checks
  (every shard frame sent has a receiver, every frame key a receiver
  requires is sent on every send site, every public verb reaches a
  handler, trace ids are echoed on every response branch) plus an
  exhaustive explicit-state model check of the scatter/gather/
  degraded/quarantine state machine over 2–3 shards and all
  single-failure schedules.

* :mod:`repro.analysis.verify.schedule` — a deterministic interleaving
  explorer that drives instrumented yield points in
  :class:`~repro.server.snapshot.SnapshotStore` publish/read and the
  real :class:`~repro.shard.worker._WorkerLoop` write-replication code
  through *every* bounded schedule, promoting the probabilistic hammer
  tests into exhaustive small-schedule proofs.

Findings use ``RVnnn`` codes and the same waiver style as repro-lint,
under the ``repro-verify`` tag::

    self._current = snap  # repro-verify: disable=RV104

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from repro.analysis.verify.callgraph import CallGraph, Program
from repro.analysis.verify.cli import main, verify_program

__all__ = ["CallGraph", "Program", "main", "verify_program"]
