"""Shared finding/waiver plumbing for the verify checkers.

Findings reuse :class:`repro.analysis.lint.Finding` so both tools render
and annotate identically; waivers use the same comment grammar under the
``repro-verify`` tag::

    self._current = snap  # repro-verify: disable=RV104
    # repro-verify: disable-file=RV105

``disable=all`` works as in repro-lint.  Model-check and interleaving
findings (RV301/RV401) are attached to real source lines of the code
under test, so the same line-waiver mechanism applies — though in
practice those two are bugs to fix, not to waive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.lint import Finding

__all__ = ["Finding", "Waivers", "collect_waivers"]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-verify:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass
class Waivers:
    """Per-file waiver state parsed from ``# repro-verify:`` comments."""

    line_disables: dict[int, set[str]] = field(default_factory=dict)
    file_disables: set[str] = field(default_factory=set)

    def suppressed(self, code: str, line: int) -> bool:
        if "all" in self.file_disables or code in self.file_disables:
            return True
        disabled = self.line_disables.get(line)
        return disabled is not None and ("all" in disabled or code in disabled)


def collect_waivers(source: str) -> Waivers:
    """Parse one file's ``# repro-verify:`` comments."""
    waivers = Waivers()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            kind, raw = match.groups()
            codes = {c.strip() for c in raw.split(",") if c.strip()}
            if kind == "disable-file":
                waivers.file_disables |= codes
            else:
                waivers.line_disables.setdefault(tok.start[0], set()).update(
                    codes
                )
    except tokenize.TokenError:
        pass
    return waivers
