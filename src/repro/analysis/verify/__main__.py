"""Entry point: ``python -m repro.analysis.verify``."""

from __future__ import annotations

import sys

from repro.analysis.verify.cli import main

if __name__ == "__main__":
    sys.exit(main())
