"""Deterministic interleaving explorer (RV401).

Promotes the probabilistic "hammer" concurrency tests into *exhaustive*
small-schedule proofs, for the two places where serving correctness
rides on an interleaving argument:

* **Snapshot publish/read** — a reader is one atomic ``store.current``
  load, so its every possible interleaving against a writer is captured
  by probing reader-visible state at each writer yield point
  (:meth:`~repro.server.snapshot.SnapshotStore._yield_point`).  The
  explorer scripts a write sequence, probes at *every* yield point, and
  checks that whatever snapshot is visible is exactly one committed
  version's state (against a brute-force oracle).  That is an
  exhaustive proof over the bounded schedule space, not a sampling.

* **Write replication** — the worker's frame processor
  (:class:`~repro.shard.worker._WorkerLoop`) is pure and synchronous,
  so the explorer drives K real replicas through *all* per-link FIFO
  interleavings of write and batch frames and checks the deterministic
  replication contract: identical ack-version sequences, batch replies
  cut at exactly the stamped epoch (parking), identical results across
  replicas, equal to the oracle, and no batch parked forever.

``TornPublishStore`` and ``EagerWorkerLoop`` are seeded known-bad
mutants proving each detector fires; they exist for the verify test
corpus and must never be imported by serving code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import factorial
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.geometry.mbr import Rect
from repro.core.two_layer import TwoLayerGrid
from repro.server.snapshot import Snapshot, SnapshotStore
from repro.shard.worker import _STALE_AFTER_S, _WorkerLoop

__all__ = [
    "EagerWorkerLoop",
    "ExplorationReport",
    "TornPublishStore",
    "all_interleavings",
    "explore_replication",
    "explore_snapshot_store",
    "interleaving_count",
    "make_scripted_store",
    "replication_frames",
]


def all_interleavings(*seqs: Sequence[Any]) -> Iterator[tuple[Any, ...]]:
    """Every merge of the sequences that preserves each one's order."""
    seqs = tuple(tuple(s) for s in seqs)

    def rec(positions: tuple[int, ...]) -> Iterator[tuple[Any, ...]]:
        if all(p == len(s) for p, s in zip(positions, seqs)):
            yield ()
            return
        for i, (p, s) in enumerate(zip(positions, seqs)):
            if p < len(s):
                nxt = positions[:i] + (p + 1,) + positions[i + 1 :]
                for rest in rec(nxt):
                    yield (s[p],) + rest

    yield from rec((0,) * len(seqs))


def interleaving_count(*lengths: int) -> int:
    """Multinomial count of order-preserving merges (exhaustiveness check)."""
    total = factorial(sum(lengths))
    for n in lengths:
        total //= factorial(n)
    return total


@dataclass
class ExplorationReport:
    """Outcome of one exhaustive exploration."""

    schedules: int = 0
    probes: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ---------------------------------------------------------------------------
# snapshot publish/read
# ---------------------------------------------------------------------------

#: (verb, payload): ("insert", Rect) or ("delete", object id)
WriteOp = tuple[str, Any]


def make_scripted_store(
    n: int = 24, partitions_per_dim: int = 4
) -> tuple[SnapshotStore, list[Rect]]:
    """A small deterministic store plus its initial rectangles."""
    rng = np.random.default_rng(7)
    xl = rng.uniform(0.0, 0.9, n)
    yl = rng.uniform(0.0, 0.9, n)
    xu = xl + rng.uniform(0.01, 0.1, n)
    yu = yl + rng.uniform(0.01, 0.1, n)
    data = RectDataset(xl, yl, xu, yu)
    index = TwoLayerGrid.build(data, partitions_per_dim=partitions_per_dim)
    rects = [Rect(*t) for t in zip(xl, yl, xu, yu)]
    return SnapshotStore(index, data), rects


def _intersects(rect: Rect, probe: Rect) -> bool:
    return not (
        rect.xu < probe.xl
        or rect.xl > probe.xu
        or rect.yu < probe.yl
        or rect.yl > probe.yu
    )


class _Oracle:
    """Brute-force replay of the write script: version -> live rects."""

    def __init__(self, rects: list[Rect]):
        self.rows: list[Rect] = list(rects)
        self.live: set[int] = set(range(len(rects)))
        self.by_version: dict[int, set[int]] = {0: set(self.live)}
        self.version = 0

    def apply(self, op: WriteOp) -> None:
        verb, payload = op
        if verb == "insert":
            obj_id = len(self.rows)
            self.rows.append(payload)
            self.live.add(obj_id)
            self.version += 1
        elif verb == "delete":
            if payload not in self.live:
                return  # miss: version does not advance
            self.live.discard(payload)
            self.version += 1
        else:
            raise ValueError(f"unknown write op {verb!r}")
        self.by_version[self.version] = set(self.live)

    def expected(self, version: int, probe: Rect) -> "set[int] | None":
        live = self.by_version.get(version)
        if live is None:
            return None
        return {
            i for i in live if _intersects(self.rows[i], probe)
        }


def explore_snapshot_store(
    store: SnapshotStore,
    rects: list[Rect],
    ops: Sequence[WriteOp],
    probes: "Sequence[Rect] | None" = None,
) -> ExplorationReport:
    """Probe reader-visible state at every writer yield point.

    The store's write path announces each internal step through
    ``_yield_point``; at each one the probe performs what any concurrent
    reader would (one atomic ``current`` load, then queries against that
    pinned snapshot) and checks the result against the brute-force
    oracle for the snapshot's version.  Readers never see a version
    that is not exactly one committed state — the torn-update freedom
    the COW design promises — and this covers *all* reader/writer
    interleavings of the bounded schedule, because ``current`` can only
    change at yield-point boundaries.
    """
    if probes is None:
        probes = [
            Rect(0.0, 0.0, 1.1, 1.1),
            Rect(0.2, 0.2, 0.6, 0.6),
            Rect(0.5, 0.1, 0.9, 0.5),
        ]
    oracle = _Oracle(rects)
    report = ExplorationReport()

    def probe_now(tag: str) -> None:
        snap: Snapshot = store.current
        pinned_version = snap.version
        for probe in probes:
            got = set(snap.index.window_query(probe).tolist())
            want = oracle.expected(pinned_version, probe)
            report.probes += 1
            if want is None:
                report.violations.append(
                    f"at {tag}: visible snapshot version {pinned_version} "
                    "was never committed"
                )
            elif got != want:
                report.violations.append(
                    f"at {tag}: snapshot v{pinned_version} returned "
                    f"{sorted(got)} for {probe}, oracle says {sorted(want)}"
                    " — torn or inconsistent publication"
                )
        # a second load within the same probe must be just as consistent
        again = store.current
        if again.version < pinned_version:
            report.violations.append(
                f"at {tag}: version went backwards "
                f"({pinned_version} -> {again.version})"
            )

    store._yield_point = probe_now  # type: ignore[method-assign]
    try:
        probe_now("initial")
        for op in ops:
            verb, payload = op
            # the oracle learns the op first: once the store publishes,
            # the new version must already be a committed oracle state
            oracle.apply(op)
            if verb == "insert":
                store.insert(payload)
            else:
                store.delete(payload)
            probe_now(f"after.{verb}")
            report.schedules += 1
    finally:
        del store.__dict__["_yield_point"]
    return report


class TornPublishStore(SnapshotStore):
    """Known-bad mutant: publishes version before the index is swapped.

    A reader landing between the two publications sees version ``v+1``
    carrying version ``v``'s index — exactly the torn update the atomic
    single-swap discipline rules out.  Test corpus only.
    """

    def insert(self, rect: Rect) -> tuple[int, int]:
        with self._write_lock:
            snap = self._current
            torn = Snapshot(snap.index, snap.data, snap.version + 1)
            self._current = torn  # first half of the torn publish
            self._yield_point("insert.pre_publish")
            obj_id = snap.index._n_objects
        self._current = snap  # restore, then do the real insert
        real_id, version = super().insert(rect)
        return real_id, version


# ---------------------------------------------------------------------------
# write replication
# ---------------------------------------------------------------------------


def replication_frames(
    rects: list[Rect], writes: int = 2, reads: int = 2
) -> tuple[list[dict], list[dict]]:
    """A deterministic (write frames, batch frames) script.

    Batches are stamped at the *final* epoch, so any schedule that
    delivers a batch before the writes exercises the parking path.
    """
    write_frames = [
        {
            "t": "write",
            "seq": seq,
            "verb": "insert",
            "args": {
                "xl": 0.1 + 0.02 * seq,
                "yl": 0.1 + 0.02 * seq,
                "xu": 0.3 + 0.02 * seq,
                "yu": 0.3 + 0.02 * seq,
            },
        }
        for seq in range(1, writes + 1)
    ]
    batch_frames = [
        {
            "t": "batch",
            "bid": bid,
            "epoch": writes,  # stamped at the post-write epoch
            "reqs": [
                {
                    "id": bid * 10,
                    "verb": "window",
                    "args": {
                        "xl": 0.0,
                        "yl": 0.0,
                        "xu": 1.2,
                        "yu": 1.2,
                        "predicate": "intersects",
                    },
                }
            ],
        }
        for bid in range(1, reads + 1)
    ]
    return write_frames, batch_frames


def _drive_schedule(
    loop: _WorkerLoop, schedule: Sequence[dict]
) -> tuple[list[dict], list[tuple[int, int]]]:
    """Deliver frames in order; returns (batch replies, write acks)."""
    now = 0.0
    batch_replies: list[dict] = []
    acks: list[tuple[int, int]] = []
    for frame in schedule:
        now += 0.001
        if frame["t"] == "write":
            reply = loop.apply_write(frame)
            acks.append((reply["seq"], reply["version"]))
            batch_replies.extend(loop.drain_parked(now))
        else:
            reply = loop.try_batch(frame)
            if reply is None:
                loop.park(frame, now)
            else:
                batch_replies.append(reply)
    # final drain far past the stale deadline: parked batches whose
    # write never arrived must fail structurally, never hang
    batch_replies.extend(loop.drain_parked(now + _STALE_AFTER_S + 1.0))
    return batch_replies, acks


def explore_replication(
    make_loop: Callable[[], _WorkerLoop],
    replicas: int = 2,
    writes: int = 2,
    reads: int = 2,
) -> ExplorationReport:
    """Drive K real worker loops through all per-link frame interleavings.

    Per-link delivery is FIFO (TCP), so a replica's possible schedules
    are exactly the order-preserving merges of its write stream and its
    batch stream; replicas are independent, so the full space is the
    product.  Each replica must produce the identical ack-version
    sequence (deterministic replication — the quarantine detector's
    foundation), and every batch reply must be cut at exactly the
    stamped epoch with oracle-identical results.
    """
    probe_store, rects = make_scripted_store()
    write_frames, batch_frames = replication_frames(rects, writes, reads)
    oracle = _Oracle(rects)
    for frame in write_frames:
        a = frame["args"]
        oracle.apply(("insert", Rect(a["xl"], a["yl"], a["xu"], a["yu"])))
    final_epoch = writes
    probe = Rect(0.0, 0.0, 1.2, 1.2)
    expected_ids = oracle.expected(final_epoch, probe)
    assert expected_ids is not None

    report = ExplorationReport()
    schedules = [
        list(s) for s in all_interleavings(write_frames, batch_frames)
    ]
    expected_count = interleaving_count(len(write_frames), len(batch_frames))
    if len(schedules) != expected_count:
        report.violations.append(
            f"interleaving generator produced {len(schedules)} schedules, "
            f"multinomial count says {expected_count}"
        )
    # replicas are independent: checking every replica against the same
    # per-link schedule set and asserting schedule-invariant outcomes
    # covers the full product space without enumerating it.
    reference_acks: "list[tuple[int, int]] | None" = None
    for schedule in schedules:
        for replica in range(replicas):
            loop = make_loop()
            replies, acks = _drive_schedule(loop, schedule)
            report.schedules += 1
            if reference_acks is None:
                reference_acks = acks
            elif acks != reference_acks:
                report.violations.append(
                    f"replica {replica} acked {acks}, expected "
                    f"{reference_acks}: replication is not deterministic"
                )
            if loop.parked:
                report.violations.append(
                    f"replica {replica} left {len(loop.parked)} batch(es) "
                    "parked after the stale deadline"
                )
            seen_bids = set()
            for reply in replies:
                report.probes += 1
                seen_bids.add(reply["bid"])
                if reply["epoch"] != final_epoch:
                    report.violations.append(
                        f"batch {reply['bid']} answered at epoch "
                        f"{reply['epoch']}, stamped {final_epoch} "
                        f"(schedule {[f['t'] for f in schedule]})"
                    )
                    continue
                for res in reply["results"]:
                    if not res.get("ok"):
                        report.violations.append(
                            f"batch {reply['bid']} failed: {res}"
                        )
                    elif set(res["result"]["ids"]) != expected_ids:
                        report.violations.append(
                            f"batch {reply['bid']} returned "
                            f"{sorted(res['result']['ids'])}, oracle says "
                            f"{sorted(expected_ids)}"
                        )
            if seen_bids != {f["bid"] for f in batch_frames}:
                report.violations.append(
                    f"replica {replica} never answered batches "
                    f"{sorted({f['bid'] for f in batch_frames} - seen_bids)}"
                )
    return report


class EagerWorkerLoop(_WorkerLoop):
    """Known-bad mutant: runs ahead-of-replica batches immediately.

    Skipping the park executes a future-stamped batch against an older
    snapshot — the reply's epoch differs from the stamp, which the
    explorer (and the router's merge check) must catch.  Test corpus
    only.
    """

    def try_batch(self, frame: dict) -> "dict | None":
        epoch = frame["epoch"]
        snap = self._snapshot_at(epoch)
        if snap is None:
            snap = self.store.current  # wrong: not the stamped version
        return self._run_batch(snap, frame)


def default_worker_loop() -> _WorkerLoop:
    """A fresh replica over the deterministic scripted state."""
    store, _ = make_scripted_store()
    return _WorkerLoop(store.current.index, store.current.data)
