"""The repro-lint rule catalogue.

Each rule encodes one invariant of this codebase (see
``docs/static-analysis.md`` for the full catalogue with rationale):

=======  ==================================================================
REP001   no float ``==``/``!=`` against float literals in geometry code
REP002   no blocking calls / heavy numpy builds inside ``async def``
REP003   no ``await`` or blocking I/O while holding a ``threading.Lock``
REP004   comparing kernels must thread ``QueryStats`` (EXPLAIN parity)
REP005   grid query/update methods must serve both storage backends
REP006   no module-level mutable state in ``repro.shard`` worker code
REP007   no raw index-file opens without the format-version check
REP101   no bare ``except:``
REP102   no mutable default arguments
REP103   no wall-clock time calls outside ``repro.obs`` / ``repro.bench``
REP104   no unused imports
REP105   public APIs in typed packages must be fully annotated
=======  ==================================================================

Rules are intentionally syntactic: they over-approximate, and intentional
exceptions carry a visible ``# repro-lint: disable=CODE`` waiver next to a
justification, exactly like a ``# type: ignore[code]``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.lint import Finding, LintRule, ModuleInfo

__all__ = ["ALL_RULES"]

#: MBR coordinate column / bound names, the vocabulary of every kernel.
_COORD_NAMES = frozenset({"xl", "yl", "xu", "yu"})
#: query-side operand names a kernel comparison may use.
_QUERY_NAMES = frozenset(
    {"window", "rect", "query", "q", "qx", "qy", "cx", "cy", "radius"}
)

#: dotted call names that block the thread (and therefore the event loop).
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.socket",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.waitpid",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
    }
)

#: numpy calls that rebuild/sort whole arrays — unbounded CPU work that
#: must not run inline on the event loop (push it into a sync kernel
#: executed per micro-batch instead).
_NP_HEAVY_CALLS = frozenset(
    {
        "np.sort",
        "np.argsort",
        "np.lexsort",
        "np.concatenate",
        "np.unique",
        "numpy.sort",
        "numpy.argsort",
        "numpy.lexsort",
        "numpy.concatenate",
        "numpy.unique",
    }
)

#: wall-clock reads; nondeterministic and unmockable, unlike the
#: monotonic perf_counter the obs.Timed / tracing layer standardises on.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
        "datetime.date.today",
    }
)

_KERNEL_NAME_RE = re.compile(r"window|disk|knn|scan|fused|kernel|query")
_PARITY_NAME_RE = re.compile(r"query|window|disk|count|explain")


def _dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_name(node: ast.AST) -> "str | None":
    """The last identifier of an expression (unwrapping subscripts)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _walk_shallow(nodes: "list[ast.stmt]") -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class
    definitions (their bodies run in a different execution context)."""
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def _functions(tree: ast.Module) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class FloatEqualityRule(LintRule):
    """Float ``==``/``!=`` against a float literal in geometry code —
    exact equality on computed coordinates is almost always a latent bug
    (FP rounding makes it silently unreachable); restructure the test as
    an inequality (``<= 0.0`` on a nonnegative distance) or an explicit
    tolerance check."""

    code = "REP001"
    name = "float-literal-equality"
    scope = ("geometry",)

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in operands
            ):
                yield self.finding(
                    mod,
                    node,
                    "float equality against a literal; use an inequality "
                    "or tolerance test on computed coordinates",
                )


class BlockingCallInAsyncRule(LintRule):
    """Blocking call (``time.sleep``, sync ``open``/socket/subprocess
    I/O) or unbounded numpy build directly inside an ``async def`` —
    stalls the event loop for every connection; await an executor or move
    the work into the sync batch kernel."""

    code = "REP002"
    name = "blocking-call-in-async"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for fn in _functions(mod.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in _walk_shallow(fn.body):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted_name(node.func)
                if dotted == "open" or (
                    isinstance(node.func, ast.Name) and node.func.id == "open"
                ):
                    yield self.finding(
                        mod,
                        node,
                        f"sync open() inside async def {fn.name!r} blocks "
                        "the event loop",
                    )
                elif dotted in _BLOCKING_CALLS:
                    yield self.finding(
                        mod,
                        node,
                        f"blocking call {dotted}() inside async def "
                        f"{fn.name!r} stalls the event loop",
                    )
                elif dotted in _NP_HEAVY_CALLS:
                    yield self.finding(
                        mod,
                        node,
                        f"unbounded numpy build {dotted}() inside async "
                        f"def {fn.name!r}; run it in the sync batch kernel",
                    )


class AwaitUnderLockRule(LintRule):
    """``await`` or blocking I/O while holding a ``threading.Lock``
    (sync ``with ...lock:`` block) — the event loop suspends the task
    mid-critical-section, or the I/O stalls every thread contending for
    the lock.  Keep lock bodies to pure in-memory state transitions."""

    code = "REP003"
    name = "await-under-lock"

    @staticmethod
    def _is_lock_ctx(item: ast.withitem) -> bool:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        name = _terminal_name(expr)
        return name is not None and "lock" in name.lower()

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            # async with = an asyncio.Lock, designed to be held across
            # awaits; only sync `with` acquires a threading.Lock.
            if not isinstance(node, ast.With):
                continue
            if not any(self._is_lock_ctx(item) for item in node.items):
                continue
            for inner in _walk_shallow(node.body):
                if isinstance(inner, ast.Await):
                    yield self.finding(
                        mod,
                        inner,
                        "await while holding a threading lock; the lock "
                        "is held across an arbitrary suspension",
                    )
                elif isinstance(inner, ast.Call):
                    dotted = _dotted_name(inner.func)
                    if dotted in _BLOCKING_CALLS:
                        yield self.finding(
                            mod,
                            inner,
                            f"blocking call {dotted}() while holding a "
                            "threading lock",
                        )


class StatsThreadingRule(LintRule):
    """A query kernel in ``repro.core``/``repro.grid`` compares MBR
    coordinates but declares no ``stats`` parameter — its work is
    invisible to QueryStats/EXPLAIN, silently breaking the paper's
    Section IV-B accounting parity.  Thread ``stats`` through, or waive
    explicitly for an intentional stats-free fast path."""

    code = "REP004"
    name = "kernel-stats-threading"
    scope = ("core", "grid")

    #: numpy comparison ufuncs — kernels that compare via
    #: ``np.greater_equal(cols, bounds)`` instead of operators.
    _CMP_UFUNCS = frozenset({"greater_equal", "less_equal", "greater", "less"})

    @staticmethod
    def _is_mbr_comparison(node: ast.Compare) -> bool:
        if not any(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)) for op in node.ops
        ):
            return False
        operands = [node.left, *node.comparators]
        names = [_terminal_name(o) for o in operands]
        if not any(n in _COORD_NAMES for n in names):
            return False
        return all(
            n in _COORD_NAMES
            or n in _QUERY_NAMES
            or isinstance(o, ast.Constant)
            for n, o in zip(names, operands)
        )

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for fn in _functions(mod.tree):
            if not _KERNEL_NAME_RE.search(fn.name):
                continue
            params = {
                a.arg
                for a in [
                    *fn.args.posonlyargs,
                    *fn.args.args,
                    *fn.args.kwonlyargs,
                ]
            }
            if "stats" in params:
                continue
            # local aliases of comparison ufuncs (`ge = np.greater_equal`)
            cmp_aliases = set(self._CMP_UFUNCS)
            for node in _walk_shallow(fn.body):
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Attribute
                ):
                    if node.value.attr in self._CMP_UFUNCS:
                        cmp_aliases.update(
                            t.id for t in node.targets if isinstance(t, ast.Name)
                        )
            for node in _walk_shallow(fn.body):
                compares = isinstance(node, ast.Compare) and self._is_mbr_comparison(
                    node
                )
                if not compares and isinstance(node, ast.Call):
                    compares = _terminal_name(node.func) in cmp_aliases
                if compares:
                    yield self.finding(
                        mod,
                        fn,
                        f"kernel {fn.name!r} compares MBR coordinates but "
                        "takes no `stats` parameter; QueryStats/EXPLAIN "
                        "cannot account its work",
                    )
                    break


class BackendParityRule(LintRule):
    """A public query/update method on a dual-backend grid class reaches
    only one of the packed base (``_store``) / tile-dict overlay
    (``_tiles``) — under the other storage mode it silently misses rows.
    Every public read path must consult both; ``delete``/``compact``
    must maintain both."""

    code = "REP005"
    name = "packed-legacy-parity"
    scope = ("core", "grid")

    @staticmethod
    def _method_facts(
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> tuple[bool, bool, set[str]]:
        uses_store = False
        uses_tiles = False
        refs: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute):
                if node.attr == "_store":
                    uses_store = True
                elif node.attr == "_tiles":
                    uses_tiles = True
                else:
                    refs.add(node.attr)
        return uses_store, uses_tiles, refs

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for cls in ast.walk(mod.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            facts = {name: self._method_facts(fn) for name, fn in methods.items()}
            # dual-backend classes are the ones that own both layouts
            if not any(f[0] for f in facts.values()) or not any(
                f[1] for f in facts.values()
            ):
                continue
            closure: dict[str, tuple[bool, bool]] = {}

            def reach(name: str, seen: "frozenset[str]") -> tuple[bool, bool]:
                if name in closure:
                    return closure[name]
                if name in seen:
                    return False, False
                store, tiles, refs = facts[name]
                for ref in refs & methods.keys():
                    s, t = reach(ref, seen | {name})
                    store = store or s
                    tiles = tiles or t
                closure[name] = (store, tiles)
                return store, tiles

            for name, fn in methods.items():
                if name.startswith("_") or not _PARITY_NAME_RE.search(name):
                    continue
                store, tiles = reach(name, frozenset())
                if not store and not tiles:
                    continue  # backend-independent helper
                if name == "insert":
                    # inserts land in the delta overlay on both backends
                    missing = None if tiles else "_tiles"
                elif store and tiles:
                    missing = None
                else:
                    missing = "_tiles" if store else "_store"
                if missing:
                    present = "_store" if missing == "_tiles" else "_tiles"
                    yield self.finding(
                        mod,
                        fn,
                        f"{cls.name}.{name} reaches {present} but never "
                        f"{missing}; the "
                        f"{'legacy' if missing == '_tiles' else 'packed'} "
                        "backend would be ignored",
                    )


class SpawnUnsafeGlobalRule(LintRule):
    """Module-level mutable state in :mod:`repro.shard` — shard worker
    processes re-import these modules under the ``spawn`` start method,
    so a mutable global materialises once *per process*: mutations in
    the router and in each worker silently diverge, which is exactly the
    class of bug the shard subsystem's replicate-by-broadcast design
    exists to rule out.  Keep cross-process state in the shm arena or on
    instances created after the fork point; module constants must be
    immutable (tuple/frozenset/scalar)."""

    code = "REP006"
    name = "spawn-unsafe-global"
    scope = ("shard",)

    _MUTABLE_CALLS = frozenset(
        {
            "list",
            "dict",
            "set",
            "bytearray",
            "deque",
            "defaultdict",
            "Counter",
            "OrderedDict",
        }
    )

    def _is_mutable(self, node: "ast.expr | None") -> bool:
        if node is None:
            return False
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            return name in self._MUTABLE_CALLS
        return False

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        # module scope only: class/function bodies build per-instance or
        # per-call state, which is exactly where shard state belongs.
        stack: list[ast.AST] = list(mod.tree.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = getattr(node, "value", None)
                if self._is_mutable(value):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    names = [
                        _terminal_name(t) or "<target>" for t in targets
                    ]
                    if all(
                        n.startswith("__") and n.endswith("__") for n in names
                    ):
                        continue  # __all__ and friends: set once, by idiom
                    yield self.finding(
                        mod,
                        node,
                        f"module-level mutable {', '.join(names)!r}: each "
                        "spawned shard worker gets its own diverging copy; "
                        "use an immutable constant or per-instance state",
                    )
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Global):
                yield self.finding(
                    mod,
                    node,
                    f"'global {', '.join(node.names)}' mutates module "
                    "state that is per-process under spawn; pass state "
                    "explicitly or keep it on an instance",
                )


class UncheckedIndexOpenRule(LintRule):
    """Raw index-file opens in :mod:`repro.core` / :mod:`repro.grid`
    without the columnar format-version check — ``np.load`` /
    ``np.memmap`` interpret whatever bytes they are pointed at, so a
    module that maps index files while never touching the
    :mod:`repro.core.format` helpers (``is_columnar`` / ``read_header``
    / ``read_container``) can silently misread an archive written by an
    older or newer format.  Funnel every open through those helpers;
    the rule passes any module that references them (syntactic
    over-approximation, like the rest of the catalogue)."""

    code = "REP007"
    name = "unchecked-index-open"
    scope = ("core", "grid")

    _RAW_OPENS = frozenset(
        {
            "np.load",
            "numpy.load",
            "np.memmap",
            "numpy.memmap",
            "np.lib.format.open_memmap",
            "numpy.lib.format.open_memmap",
        }
    )
    #: referencing any of these marks the module as format-aware.
    _HELPERS = frozenset({"is_columnar", "read_header", "read_container"})

    def _format_aware(self, mod: ModuleInfo) -> bool:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Name) and node.id in self._HELPERS:
                return True
            if isinstance(node, ast.Attribute) and node.attr in self._HELPERS:
                return True
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in self._HELPERS
            ):
                return True
        return False

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if self._format_aware(mod):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name in self._RAW_OPENS:
                yield self.finding(
                    mod,
                    node,
                    f"{name} opens an index file without the format-"
                    "version check; go through repro.core.format "
                    "(is_columnar / read_header / read_container) so "
                    "old or foreign archives fail structurally",
                )


class BareExceptRule(LintRule):
    """Bare ``except:`` — swallows KeyboardInterrupt/SystemExit and
    masks real faults; catch a concrete exception (``ReproError``,
    ``OSError``, ...) or at minimum ``Exception``."""

    code = "REP101"
    name = "bare-except"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    mod, node, "bare except; name the exception class"
                )


class MutableDefaultRule(LintRule):
    """Mutable default argument (list/dict/set literal or constructor) —
    shared across every call; default to None and materialise inside."""

    code = "REP102"
    name = "mutable-default-argument"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: "ast.expr | None") -> bool:
        if node is None:
            return False
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
        )

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for fn in _functions(mod.tree):
            for default in [*fn.args.defaults, *fn.args.kw_defaults]:
                if self._is_mutable(default):
                    yield self.finding(
                        mod,
                        default,
                        f"mutable default in {fn.name!r}; use None and "
                        "build the container in the body",
                    )


class WallClockRule(LintRule):
    """Wall-clock read (``time.time``, ``datetime.now``, ...) outside
    the observability/benchmark layers — nondeterministic, unmockable,
    and jumps under NTP; measure with the monotonic ``obs.Timed`` /
    tracing spans instead."""

    code = "REP103"
    name = "wall-clock-call"

    def applies_to(self, mod: ModuleInfo) -> bool:
        return not mod.in_package("obs", "bench")

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield self.finding(
                    mod,
                    node,
                    f"wall-clock call {dotted}(); use time.perf_counter "
                    "via obs.Timed / tracing spans",
                )


class UnusedImportRule(LintRule):
    """Imported name never referenced (including inside string forward
    annotations and ``__all__``) — dead weight that hides real
    dependencies; remove it."""

    code = "REP104"
    name = "unused-import"

    def applies_to(self, mod: ModuleInfo) -> bool:
        # package __init__ modules import for re-export by convention
        return mod.segments[-1] != "__init__.py"

    @staticmethod
    def _annotation_names(tree: ast.Module) -> set[str]:
        """Names referenced from annotations, unwrapping string
        forward references (`"PackedStore | None"`)."""
        names: set[str] = set()
        annotations: list[ast.expr] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                annotations.extend(
                    a.annotation
                    for a in [
                        *node.args.posonlyargs,
                        *node.args.args,
                        *node.args.kwonlyargs,
                        node.args.vararg,
                        node.args.kwarg,
                    ]
                    if a is not None and a.annotation is not None
                )
                if node.returns is not None:
                    annotations.append(node.returns)
            elif isinstance(node, ast.AnnAssign):
                annotations.append(node.annotation)
        for ann in annotations:
            for sub in ast.walk(ann):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
                elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    try:
                        parsed = ast.parse(sub.value, mode="eval")
                    except SyntaxError:
                        continue
                    names.update(
                        n.id for n in ast.walk(parsed) if isinstance(n, ast.Name)
                    )
        return names

    def unused_aliases(
        self, mod: ModuleInfo
    ) -> "list[tuple[ast.stmt, ast.alias, str]]":
        """(import statement, alias, bound name) for every unused import.

        Shared by :meth:`check` and the ``repro-lint --fix`` rewriter so
        detection and autofix can never disagree.
        """
        imports: list[tuple[str, ast.stmt, ast.alias]] = []
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    imports.append((bound, node, alias))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imports.append((alias.asname or alias.name, node, alias))
        if not imports:
            return []
        used: set[str] = set()
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if "__all__" in targets:
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Constant) and isinstance(
                            sub.value, str
                        ):
                            used.add(sub.value)
        used |= self._annotation_names(mod.tree)
        return [
            (node, alias, bound)
            for bound, node, alias in imports
            if bound not in used and not bound.startswith("_")
        ]

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node, _alias, bound in self.unused_aliases(mod):
            yield self.finding(
                mod, node, f"imported name {bound!r} is never used"
            )


class PublicAnnotationRule(LintRule):
    """Public function/method in a strictly-typed package missing
    parameter or return annotations — the ``mypy --strict`` gate covers
    these packages; un-annotated public APIs silently opt their callers
    out of checking."""

    code = "REP105"
    name = "missing-public-annotations"
    scope = ("core", "grid", "server", "obs", "analysis")

    def _check_fn(
        self,
        mod: ModuleInfo,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        owner: "str | None",
    ) -> Iterator[Finding]:
        where = f"{owner}.{fn.name}" if owner else fn.name
        args = [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
        if owner is not None and args and args[0].arg in ("self", "cls"):
            args = args[1:]
        missing = [a.arg for a in args if a.annotation is None]
        for extra in (fn.args.vararg, fn.args.kwarg):
            if extra is not None and extra.annotation is None:
                missing.append(f"*{extra.arg}")
        if missing:
            yield self.finding(
                mod,
                fn,
                f"{where} is missing parameter annotation(s): "
                + ", ".join(missing),
            )
        if fn.returns is None and fn.name != "__init__":
            yield self.finding(
                mod, fn, f"{where} is missing a return annotation"
            )

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not stmt.name.startswith("_"):
                    yield from self._check_fn(mod, stmt, None)
            elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith("_"):
                for sub in stmt.body:
                    if not isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if sub.name.startswith("_") and sub.name != "__init__":
                        continue
                    yield from self._check_fn(mod, sub, stmt.name)


ALL_RULES: "tuple[type[LintRule], ...]" = (
    FloatEqualityRule,
    BlockingCallInAsyncRule,
    AwaitUnderLockRule,
    StatsThreadingRule,
    BackendParityRule,
    SpawnUnsafeGlobalRule,
    UncheckedIndexOpenRule,
    BareExceptRule,
    MutableDefaultRule,
    WallClockRule,
    UnusedImportRule,
    PublicAnnotationRule,
)
