"""Runtime sanitizer for the packed/concurrent core (``REPRO_SANITIZE=1``).

When enabled, the storage and serving layers call into this module at
their invariant boundaries:

* **build/compact** — :func:`check_packed_store` validates the CSR base:
  offsets monotone, ``offsets[0] == 0``, ``offsets[-1] == n_rows``, all
  five columns equally long, and the tombstone state (bitmap length,
  per-group counts, total) internally consistent.
* **publish** — :func:`check_snapshot` re-validates the published base,
  checks the delta overlay is disjoint from live base rows
  (:func:`check_delta_disjoint`), and freezes the base columns so a
  stray in-place write raises immediately.
* **query** — :func:`on_window_query` cross-checks a *sample* of window
  results against a naive per-tile scan (every
  ``REPRO_SANITIZE_SAMPLE``-th query, default 16), catching dedup or
  kernel regressions the moment they produce a wrong id set.

Every violation raises :class:`SanitizerError` carrying the failed check
name and a structured detail mapping — grep-able in logs, assertable in
tests.  With ``REPRO_SANITIZE`` unset the hooks are a single cached
env-read and branch.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.grid.storage import PackedStore

__all__ = [
    "SanitizerError",
    "enabled",
    "check_packed_store",
    "check_delta_disjoint",
    "check_snapshot",
    "freeze_array",
    "naive_window_ids",
    "on_window_query",
    "verify_window_result",
]


class SanitizerError(ReproError):
    """A runtime invariant violation caught by the sanitizer."""

    def __init__(self, check: str, where: str, details: "Mapping[str, Any]"):
        self.check = check
        self.where = where
        self.details = dict(details)
        detail_str = ", ".join(f"{k}={v!r}" for k, v in self.details.items())
        super().__init__(f"sanitizer: {check} failed at {where} ({detail_str})")


def enabled() -> bool:
    """Whether the sanitizer is on (``REPRO_SANITIZE`` set and not 0)."""
    return os.environ.get("REPRO_SANITIZE", "0") not in ("", "0")


def _sample_every() -> int:
    raw = os.environ.get("REPRO_SANITIZE_SAMPLE", "16")
    try:
        return max(1, int(raw))
    except ValueError:
        return 16


def _fail(check: str, where: str, **details: Any) -> None:
    raise SanitizerError(check, where, details)


# -- PackedStore invariants ------------------------------------------------


def check_packed_store(store: "PackedStore", where: str) -> None:
    """Validate the CSR invariants of one packed base."""
    offsets = store.offsets
    n_rows = store.ids.shape[0]
    if offsets.ndim != 1 or offsets.shape[0] < 1:
        _fail("offsets_shape", where, shape=offsets.shape)
    if int(offsets[0]) != 0:
        _fail("offsets_origin", where, first=int(offsets[0]))
    if np.any(np.diff(offsets) < 0):
        bad = int(np.flatnonzero(np.diff(offsets) < 0)[0])
        _fail(
            "offsets_monotone",
            where,
            group=bad,
            at=int(offsets[bad]),
            next=int(offsets[bad + 1]),
        )
    if int(offsets[-1]) != n_rows:
        _fail("offsets_cover_rows", where, tail=int(offsets[-1]), n_rows=n_rows)
    n_groups = offsets.shape[0] - 1
    if n_groups % max(store.n_classes, 1) != 0:
        _fail(
            "groups_divisible_by_classes",
            where,
            n_groups=n_groups,
            n_classes=store.n_classes,
        )
    for name in ("xl", "yl", "xu", "yu"):
        col = getattr(store, name)
        if col.shape[0] != n_rows:
            _fail("column_length", where, column=name, length=col.shape[0], n_rows=n_rows)
    if store.dead is None:
        if store.n_dead != 0:
            _fail("dead_count_without_bitmap", where, n_dead=store.n_dead)
        return
    if store.dead.shape[0] != n_rows:
        _fail(
            "tombstone_bitmap_bounds",
            where,
            bitmap=store.dead.shape[0],
            n_rows=n_rows,
        )
    if store.dead_per_group is None or store.dead_per_group.shape[0] != n_groups:
        _fail(
            "tombstone_group_counts_shape",
            where,
            groups=n_groups,
            counts=None
            if store.dead_per_group is None
            else store.dead_per_group.shape[0],
        )
    total = int(store.dead.sum())
    if total != store.n_dead:
        _fail("tombstone_total", where, bitmap_total=total, n_dead=store.n_dead)
    dead_rows = np.flatnonzero(store.dead)
    groups = np.searchsorted(offsets, dead_rows, side="right") - 1
    per_group = np.bincount(groups, minlength=n_groups)
    if not np.array_equal(per_group, store.dead_per_group):
        bad = int(np.flatnonzero(per_group != store.dead_per_group)[0])
        _fail(
            "tombstone_group_counts",
            where,
            group=bad,
            actual=int(per_group[bad]),
            recorded=int(store.dead_per_group[bad]),
        )


def check_delta_disjoint(
    store: "PackedStore",
    tiles: "Mapping[int, Any]",
    where: str,
    n_classes: "int | None" = None,
) -> None:
    """The delta overlay must never duplicate a live base row's id.

    ``tiles`` maps tile id to either one TileTable (1-layer) or a list of
    per-class tables (2-layer); a delta id that is also live in the same
    tile's base rows would be returned twice by every query.
    """
    n_classes = store.n_classes if n_classes is None else n_classes
    for tile_id, entry in tiles.items():
        tables = entry if isinstance(entry, (list, tuple)) else [entry]
        for code, table in enumerate(tables):
            if table is None:
                continue
            _, _, _, _, delta_ids = table.columns()
            if delta_ids.shape[0] == 0:
                continue
            for base_code in range(n_classes):
                cols = store.group_columns(tile_id * n_classes + base_code)
                if cols is None:
                    continue
                overlap = np.intersect1d(delta_ids, cols[4])
                if overlap.shape[0]:
                    _fail(
                        "delta_base_disjoint",
                        where,
                        tile=tile_id,
                        delta_class=code,
                        base_class=base_code,
                        ids=overlap[:8].tolist(),
                    )


# -- snapshot immutability -------------------------------------------------


def freeze_array(array: "np.ndarray | None") -> None:
    """Mark one array read-only (no-op for None / already-frozen)."""
    if array is not None:
        array.flags.writeable = False


def freeze_arrays(arrays: "Iterable[np.ndarray | None]") -> None:
    for array in arrays:
        freeze_array(array)


def check_snapshot(index: Any, where: str) -> None:
    """Publish-time validation of a (possibly forked) grid index."""
    store = getattr(index, "_store", None)
    if store is None:
        return
    check_packed_store(store, where)
    check_delta_disjoint(store, getattr(index, "_tiles", {}), where)
    freeze_arrays((store.offsets, store.xl, store.yl, store.xu, store.yu, store.ids))


# -- query cross-checking --------------------------------------------------


def naive_window_ids(grid: Any, window: Any) -> np.ndarray:
    """Reference result: scan every overlapping tile, dedup via a set.

    Uses only the public tile accessors (``tile_class_table`` /
    ``tile_table``), so it exercises none of the fused kernels it is
    checking.
    """
    g = grid.grid
    ix0, ix1 = g.tile_ix(window.xl), g.tile_ix(window.xu)
    iy0, iy1 = g.tile_iy(window.yl), g.tile_iy(window.yu)
    hits: set[int] = set()
    two_layer = hasattr(grid, "tile_class_table")
    for iy in range(iy0, iy1 + 1):
        for ix in range(ix0, ix1 + 1):
            tables = (
                [grid.tile_class_table(ix, iy, code) for code in range(4)]
                if two_layer
                else [grid.tile_table(ix, iy)]
            )
            for table in tables:
                if table is None:
                    continue
                xl, yl, xu, yu, ids = table.columns()
                mask = (
                    (xl <= window.xu)
                    & (xu >= window.xl)
                    & (yl <= window.yu)
                    & (yu >= window.yl)
                )
                hits.update(int(i) for i in ids[mask])
    return np.array(sorted(hits), dtype=np.int64)


def verify_window_result(grid: Any, window: Any, ids: np.ndarray) -> None:
    """Raise unless ``ids`` matches the naive per-tile reference scan."""
    got = np.sort(np.asarray(ids, dtype=np.int64))
    if np.unique(got).shape[0] != got.shape[0]:
        dupes, counts = np.unique(got, return_counts=True)
        _fail(
            "window_dedup",
            "window_query",
            duplicate_ids=dupes[counts > 1][:8].tolist(),
        )
    expected = naive_window_ids(grid, window)
    if not np.array_equal(got, expected):
        missing = np.setdiff1d(expected, got)
        extra = np.setdiff1d(got, expected)
        _fail(
            "window_result_parity",
            "window_query",
            missing=missing[:8].tolist(),
            extra=extra[:8].tolist(),
            expected=int(expected.shape[0]),
            got=int(got.shape[0]),
        )


_query_counter = 0


def on_window_query(grid: Any, window: Any, ids: np.ndarray) -> None:
    """Sampled post-query hook: every Nth call runs the full cross-check."""
    global _query_counter
    _query_counter += 1
    if _query_counter % _sample_every():
        return
    store = getattr(grid, "_store", None)
    if store is not None:
        check_packed_store(store, "window_query")
    verify_window_result(grid, window, ids)
