"""repro — reproduction of "A Two-layer Partitioning for Non-point Spatial Data".

Tsitsigkos, Lampropoulos, Bouros, Mamoulis, Terrovitis — ICDE 2021.

The library centres on an in-memory regular-grid spatial index whose tiles
are *secondarily partitioned* into four object classes (A, B, C, D).  Range
queries over the two-layer index avoid generating duplicate results
entirely, instead of generating and then eliminating them, and need at most
one comparison per dimension per candidate.

Quick start::

    from repro import Rect, TwoLayerGrid
    from repro.datasets import generate_uniform_rects

    data = generate_uniform_rects(10_000, area=1e-6, seed=7)
    index = TwoLayerGrid.build(data, partitions_per_dim=64)
    results = index.window_query(Rect(0.2, 0.2, 0.3, 0.3))

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.errors import (
    DatasetError,
    IndexStateError,
    InvalidGeometryError,
    InvalidGridError,
    InvalidQueryError,
    InvalidRectError,
    ReproError,
)
from repro.geometry import LineString, Point, Polygon, Rect, Segment

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "InvalidGeometryError",
    "InvalidRectError",
    "InvalidQueryError",
    "InvalidGridError",
    "DatasetError",
    "IndexStateError",
    # geometry
    "Rect",
    "Point",
    "Segment",
    "LineString",
    "Polygon",
    # indexes (populated below)
    "OneLayerGrid",
    "TwoLayerGrid",
    "TwoLayerPlusGrid",
    "QuadTree",
    "TwoLayerQuadTree",
    "MXCIFQuadTree",
    "RTree",
    "RStarTree",
    "BlockIndex",
    "KDTree",
    "TwoLayerKDTree",
    # facade
    "SpatialCollection",
    # datasets
    "RectDataset",
    # observability
    "MetricsRegistry",
    "Profile",
    "Tracer",
]

# Index classes are imported at the bottom so that the geometry and dataset
# layers never depend on index modules (no import cycles).
from repro.datasets.dataset import RectDataset  # noqa: E402
from repro.grid.one_layer import OneLayerGrid  # noqa: E402
from repro.core.two_layer import TwoLayerGrid  # noqa: E402
from repro.core.two_layer_plus import TwoLayerPlusGrid  # noqa: E402
from repro.quadtree.quadtree import QuadTree  # noqa: E402
from repro.quadtree.two_layer_quadtree import TwoLayerQuadTree  # noqa: E402
from repro.quadtree.mxcif import MXCIFQuadTree  # noqa: E402
from repro.rtree.rtree import RStarTree, RTree  # noqa: E402
from repro.block.block import BlockIndex  # noqa: E402
from repro.kdtree.kdtree import KDTree, TwoLayerKDTree  # noqa: E402
from repro.api import SpatialCollection  # noqa: E402
from repro.obs import MetricsRegistry, Profile, Tracer  # noqa: E402
