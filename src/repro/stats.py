"""Optional per-query instrumentation counters.

Every index in the library accepts an optional :class:`QueryStats` object
on its query methods.  When provided, the index counts the work it did —
rectangles scanned, coordinate comparisons performed, duplicates generated
and eliminated, refinement tests run/avoided, nodes or tiles visited.  The
counters power the paper's analytical claims (e.g. Corollary 1: at most
two comparisons per rectangle; Fig. 6: >90% of refinements avoided) and
the ablation benchmarks.  Passing ``None`` (the default) keeps queries on
their fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["QueryStats"]


@dataclass
class QueryStats:
    """Work counters accumulated over one or more queries."""

    #: tiles / quadrants / nodes visited during the query.
    partitions_visited: int = 0
    #: rectangles fetched and examined in visited partitions.
    rects_scanned: int = 0
    #: raw coordinate comparisons executed in the filtering step.
    comparisons: int = 0
    #: results that were generated more than once (before deduplication).
    duplicates_generated: int = 0
    #: duplicate checks performed (reference-point tests / hash probes).
    dedup_checks: int = 0
    #: candidates that entered the refinement stage.
    refinement_tests: int = 0
    #: candidates certified by the Lemma-5 secondary filter (no refinement).
    refinements_avoided: int = 0
    #: comparisons spent in the secondary (Lemma 5) filter.
    secondary_filter_comparisons: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def visit_class(self, label: str) -> None:
        """Hook called by indexes once per secondary-partition scan.

        ``label`` names the secondary partition being scanned: a class
        letter (``"A"``..``"D"``) for class-partitioned families, a class
        pair (``"A·B"``) for joins, ``"tile"``/``"leaf"``/``"node"`` for
        flat families, or ``"L<level>"`` for BLOCK.  The base class
        ignores it — only :class:`repro.obs.explain.ExplainStats`
        overrides this to build the per-class breakdown of a
        :class:`~repro.obs.explain.QueryPlan` — so the hook is free on
        the normal stats path.
        """

    def visit_tile(self, tile_id: int, scanned: int, present: int) -> None:
        """Hook called by indexes once per tile actually scanned.

        ``scanned`` is the number of rows examined in the tile for this
        query (after class pruning); ``present`` is the number of live
        rows stored in the tile across all secondary partitions, so
        ``present - scanned`` is the duplicate-candidate work the class
        pruning avoided there.  The base class ignores it — only
        :class:`repro.obs.live.HeatStats` overrides it to feed the
        per-tile heat accumulator — so the hook is free on the normal
        stats path.
        """

    def visit_tiles(
        self, tile_ids: "object", scanned: "object", present: "object"
    ) -> None:
        """Vectorised :meth:`visit_tile` for fused kernels.

        All three arguments are parallel integer arrays (one entry per
        tile in a fused region).  Kept loosely typed so this module
        stays numpy-free; overriders coerce with ``np.asarray``.
        """

    def merge(self, other: "QueryStats") -> None:
        """Add another stats object's counters into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __add__(self, other: "QueryStats") -> "QueryStats":
        """Counter-wise sum as a new object; operands are untouched."""
        if not isinstance(other, QueryStats):
            return NotImplemented
        return QueryStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __iadd__(self, other: "QueryStats") -> "QueryStats":
        """In-place counter-wise sum (operator form of :meth:`merge`)."""
        if not isinstance(other, QueryStats):
            return NotImplemented
        self.merge(other)
        return self

    def snapshot(self) -> "QueryStats":
        """An independent copy of the current counter values.

        Take a snapshot before a query against a long-lived stats object,
        then :meth:`diff` afterwards to get that query's delta.
        """
        return QueryStats(**self.as_dict())

    def diff(self, since: "QueryStats") -> "QueryStats":
        """Counter-wise ``self - since`` as a new object (per-query delta)."""
        return QueryStats(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"QueryStats({parts})"
