"""Primary space-oriented partitioning: the regular grid (Section III).

The grid divides the data space into ``nx * ny`` disjoint *tiles* using
axis-parallel lines.  Tiles are **half-open**: tile ``(ix, iy)`` covers
``[x0 + ix*tw, x0 + (ix+1)*tw) x [y0 + iy*th, y0 + (iy+1)*th)`` with the
last tile per axis closed at the domain edge.  Half-openness makes tile
membership of any point unique, which in turn makes the *class-A tile* of
every rectangle unique — the property the two-layer scheme's duplicate
avoidance rests on.

An object is assigned (replicated) to every tile its MBR intersects.  The
tiles intersecting a window are found in O(1) by the algebraic index
computation of Section IV.

This module also provides :func:`replicate`, the vectorised
object-to-tile assignment shared by the 1-layer and 2-layer indices.  Each
replica carries a *class code* (Section III):

====  =====  =================================================
code  class  meaning (for the replica's tile T)
====  =====  =================================================
0     A      starts inside T in both dimensions
1     B      starts inside T in x, before T in y
2     C      starts before T in x, inside T in y
3     D      starts before T in both dimensions
====  =====  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import InvalidGridError
from repro.geometry.mbr import Rect

__all__ = [
    "CLASS_A",
    "CLASS_B",
    "CLASS_C",
    "CLASS_D",
    "CLASS_NAMES",
    "GridPartitioner",
    "Replication",
    "replicate",
]

CLASS_A = 0
CLASS_B = 1
CLASS_C = 2
CLASS_D = 3
CLASS_NAMES = ("A", "B", "C", "D")

#: default indexed domain — datasets in this library are normalised to it.
UNIT_DOMAIN = Rect(0.0, 0.0, 1.0, 1.0)


class GridPartitioner:
    """Tile arithmetic for a regular ``nx * ny`` grid over a domain."""

    __slots__ = ("domain", "nx", "ny", "tile_w", "tile_h")

    def __init__(self, nx: int, ny: int, domain: Rect = UNIT_DOMAIN):
        if nx < 1 or ny < 1:
            raise InvalidGridError(f"grid needs >= 1 partition per dim, got {nx}x{ny}")
        if domain.width <= 0 or domain.height <= 0:
            raise InvalidGridError(f"grid domain must have positive area: {domain}")
        self.domain = domain
        self.nx = nx
        self.ny = ny
        self.tile_w = domain.width / nx
        self.tile_h = domain.height / ny

    @property
    def tile_count(self) -> int:
        return self.nx * self.ny

    # -- persistence -----------------------------------------------------

    def meta(self) -> "dict[str, Any]":
        """JSON-serialisable description, for index container metadata."""
        return {
            "nx": self.nx,
            "ny": self.ny,
            "domain": list(self.domain.as_tuple()),
        }

    @classmethod
    def from_meta(cls, meta: "dict[str, Any]") -> "GridPartitioner":
        """Rebuild a partitioner from :meth:`meta` output."""
        return cls(int(meta["nx"]), int(meta["ny"]), Rect(*meta["domain"]))

    def __repr__(self) -> str:
        return f"GridPartitioner({self.nx}x{self.ny}, domain={self.domain.as_tuple()})"

    # -- scalar tile arithmetic ------------------------------------------

    def tile_ix(self, x: float) -> int:
        """Column of the tile containing coordinate ``x`` (clamped)."""
        ix = int((x - self.domain.xl) / self.tile_w)
        return min(max(ix, 0), self.nx - 1)

    def tile_iy(self, y: float) -> int:
        """Row of the tile containing coordinate ``y`` (clamped)."""
        iy = int((y - self.domain.yl) / self.tile_h)
        return min(max(iy, 0), self.ny - 1)

    def tile_id(self, ix: int, iy: int) -> int:
        """Linear id of tile ``(ix, iy)`` (row-major)."""
        return iy * self.nx + ix

    def tile_coords(self, tile_id: int) -> tuple[int, int]:
        return tile_id % self.nx, tile_id // self.nx

    def tile_rect(self, ix: int, iy: int) -> Rect:
        """The (closed Rect representation of the) extent of a tile.

        The last tile per axis ends exactly at the domain edge:
        ``xl + tile_w`` can round to just under ``domain.xu``, and that
        1-ulp gap would let a distance test exclude a boundary point the
        tile actually owns (e.g. a radius-0 disk query at ``x = 1.0``).
        """
        xl = self.domain.xl + ix * self.tile_w
        yl = self.domain.yl + iy * self.tile_h
        xu = self.domain.xu if ix == self.nx - 1 else xl + self.tile_w
        yu = self.domain.yu if iy == self.ny - 1 else yl + self.tile_h
        return Rect(xl, yl, xu, yu)

    def tile_range_for_window(self, window: Rect) -> tuple[int, int, int, int]:
        """``(ix0, ix1, iy0, iy1)`` of tiles intersecting ``window`` — O(1).

        This is the algebraic tile lookup of Section IV; the range is
        clamped to the grid, so windows may extend beyond the domain.
        """
        return (
            self.tile_ix(window.xl),
            self.tile_ix(window.xu),
            self.tile_iy(window.yl),
            self.tile_iy(window.yu),
        )

    # -- vectorised tile arithmetic ------------------------------------------

    def tile_ix_array(self, xs: np.ndarray) -> np.ndarray:
        ixs = ((xs - self.domain.xl) / self.tile_w).astype(np.int64)
        return np.clip(ixs, 0, self.nx - 1)

    def tile_iy_array(self, ys: np.ndarray) -> np.ndarray:
        iys = ((ys - self.domain.yl) / self.tile_h).astype(np.int64)
        return np.clip(iys, 0, self.ny - 1)


@dataclass(frozen=True)
class Replication:
    """Flat replica table: one row per (object, tile) assignment.

    ``tile_ids``, ``obj_ids`` and ``class_codes`` are parallel arrays.
    ``total`` equals the stored-entry count the paper reports as index
    size; ``replication_ratio`` is ``total / n_objects``.
    """

    tile_ids: np.ndarray
    obj_ids: np.ndarray
    class_codes: np.ndarray

    @property
    def total(self) -> int:
        return int(self.tile_ids.shape[0])

    def replication_ratio(self, n_objects: int) -> float:
        return self.total / max(n_objects, 1)


def replicate(data: RectDataset, grid: GridPartitioner) -> Replication:
    """Assign every object to every tile its MBR intersects (vectorised).

    For each replica the class code is derived from whether the object's
    start point falls inside the replica tile per dimension: the tile
    ``(ix0, iy0)`` containing ``(r.xl, r.yl)`` hosts the (unique) class-A
    replica; tiles to the right host C/D, tiles below host B/D.
    """
    n = len(data)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return Replication(empty, empty.copy(), empty.copy())

    ix0 = grid.tile_ix_array(data.xl)
    ix1 = grid.tile_ix_array(data.xu)
    iy0 = grid.tile_iy_array(data.yl)
    iy1 = grid.tile_iy_array(data.yu)

    span_x = ix1 - ix0 + 1
    span_y = iy1 - iy0 + 1
    reps = span_x * span_y
    total = int(reps.sum())

    obj_ids = np.repeat(np.arange(n, dtype=np.int64), reps)
    # Rank of each replica within its object: 0 .. reps[obj]-1.
    starts = np.cumsum(reps) - reps
    rank = np.arange(total, dtype=np.int64) - np.repeat(starts, reps)
    sx = span_x[obj_ids]
    dx = rank % sx
    dy = rank // sx
    ix = ix0[obj_ids] + dx
    iy = iy0[obj_ids] + dy

    tile_ids = iy * grid.nx + ix
    class_codes = (2 * (dx > 0) + (dy > 0)).astype(np.int64)
    return Replication(tile_ids, obj_ids, class_codes)
