"""Per-tile column storage shared by the grid indices.

Each tile (or each secondary partition of a tile, for the two-layer index)
stores its assigned (MBR, id) pairs as five parallel NumPy arrays — a
column layout that keeps per-tile query evaluation vectorised.  Updates
append to a small Python-list tail that is folded into the arrays lazily,
so inserts stay O(1) (the property Table VI measures) while queries always
see compacted columns.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TileTable", "group_rows"]

_EMPTY_F = np.empty(0, dtype=np.float64)
_EMPTY_I = np.empty(0, dtype=np.int64)


class TileTable:
    """A dynamic column store of (MBR, id) pairs."""

    __slots__ = ("_xl", "_yl", "_xu", "_yu", "_ids", "_pending")

    def __init__(
        self,
        xl: np.ndarray = _EMPTY_F,
        yl: np.ndarray = _EMPTY_F,
        xu: np.ndarray = _EMPTY_F,
        yu: np.ndarray = _EMPTY_F,
        ids: np.ndarray = _EMPTY_I,
    ):
        self._xl = xl
        self._yl = yl
        self._xu = xu
        self._yu = yu
        self._ids = ids
        self._pending: list[tuple[float, float, float, float, int]] = []

    def __len__(self) -> int:
        return self._xl.shape[0] + len(self._pending)

    def append(
        self, xl: float, yl: float, xu: float, yu: float, obj_id: int
    ) -> None:
        """O(1) insert of one (MBR, id) pair."""
        self._pending.append((xl, yl, xu, yu, obj_id))

    def _compact(self) -> None:
        if not self._pending:
            return
        tail = np.asarray(self._pending, dtype=np.float64)
        self._pending.clear()
        self._xl = np.concatenate([self._xl, tail[:, 0]])
        self._yl = np.concatenate([self._yl, tail[:, 1]])
        self._xu = np.concatenate([self._xu, tail[:, 2]])
        self._yu = np.concatenate([self._yu, tail[:, 3]])
        self._ids = np.concatenate([self._ids, tail[:, 4].astype(np.int64)])

    def columns(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(xl, yl, xu, yu, ids)`` with any pending inserts folded in."""
        self._compact()
        return self._xl, self._yl, self._xu, self._yu, self._ids

    def delete(self, obj_id: int) -> int:
        """Remove every entry with the given id; returns how many."""
        self._compact()
        keep = self._ids != obj_id
        removed = int(self._ids.shape[0] - keep.sum())
        if removed:
            self._xl = self._xl[keep]
            self._yl = self._yl[keep]
            self._xu = self._xu[keep]
            self._yu = self._yu[keep]
            self._ids = self._ids[keep]
        return removed

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the stored entries."""
        self._compact()
        return (
            self._xl.nbytes
            + self._yl.nbytes
            + self._xu.nbytes
            + self._yu.nbytes
            + self._ids.nbytes
        )


def group_rows(keys: np.ndarray, order: "np.ndarray | None" = None):
    """Group row indices by key; yields ``(key, row_indices)`` pairs.

    ``keys`` is an int array (e.g. tile ids, or tile ids fused with class
    codes).  Sorting is the only O(n log n) step of index construction.
    """
    if keys.shape[0] == 0:
        return
    if order is None:
        order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [sorted_keys.shape[0]]])
    for s, e in zip(starts, ends):
        yield int(sorted_keys[s]), order[s:e]
