"""Tile storage shared by the grid indices: CSR base + per-tile deltas.

Two complementary layouts live here:

* :class:`TileTable` — a small dynamic column store of (MBR, id) pairs.
  Updates append to a Python-list tail that is folded into the arrays
  lazily, so inserts stay O(1) (the property Table VI measures) while
  reads always see compacted columns.  The grid indices use it for the
  mutable *delta overlay* that absorbs inserts on top of a packed base
  (and, in legacy storage mode, for all tile data).

* :class:`PackedStore` — the packed CSR base: one global struct-of-arrays
  ``(xl, yl, xu, yu, ids)`` sorted by a fused ``(tile_id, class)`` group
  key, plus an ``offsets`` array of length ``n_groups + 1`` mapping each
  group to its contiguous row range.  Queries gather whole multi-tile row
  ranges with one vectorised offsets walk instead of chasing per-tile
  dictionaries, which is what the fused query kernels of
  :mod:`repro.core.two_layer` build on.  Deletes tombstone rows in place
  (a parallel ``dead`` bitmap) so removing an object never rebuilds the
  base.

The environment variable ``REPRO_PACKED`` selects the default backend for
newly built indexes: unset or ``"1"`` → packed CSR base, ``"0"`` → the
legacy per-tile dictionaries (useful for parity testing).
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from repro.analysis import sanitize as _sanitize

__all__ = [
    "TileTable",
    "PackedStore",
    "group_rows",
    "ranges_to_rows",
    "packed_storage_default",
    "resolve_storage_mode",
]

_EMPTY_F = np.empty(0, dtype=np.float64)
_EMPTY_I = np.empty(0, dtype=np.int64)

#: bytes per stored entry (4 float64 coordinates + 1 int64 id).
_ENTRY_BYTES = 5 * 8

#: ``"compiled"`` is packed CSR storage with the Numba kernel tier on
#: top (see :mod:`repro.grid.kernels`); it degrades to plain packed
#: when numba is not importable.
STORAGE_MODES = ("packed", "legacy", "compiled")


def packed_storage_default() -> bool:
    """Whether new indexes default to the packed CSR backend.

    Controlled by ``REPRO_PACKED``: unset or any value other than ``"0"``
    means packed; ``"0"`` forces the legacy per-tile dict layout.
    """
    return os.environ.get("REPRO_PACKED", "1") != "0"


def resolve_storage_mode(storage: "str | None") -> bool:
    """Map a ``storage=`` argument to "use packed?"; ``None`` asks the env."""
    if storage is None:
        return packed_storage_default()
    if storage not in STORAGE_MODES:
        raise ValueError(
            f"unknown storage mode {storage!r}; expected one of {STORAGE_MODES}"
        )
    return storage in ("packed", "compiled")


class TileTable:
    """A dynamic column store of (MBR, id) pairs."""

    __slots__ = ("_xl", "_yl", "_xu", "_yu", "_ids", "_pending")

    def __init__(
        self,
        xl: np.ndarray = _EMPTY_F,
        yl: np.ndarray = _EMPTY_F,
        xu: np.ndarray = _EMPTY_F,
        yu: np.ndarray = _EMPTY_F,
        ids: np.ndarray = _EMPTY_I,
    ):
        self._xl = xl
        self._yl = yl
        self._xu = xu
        self._yu = yu
        self._ids = ids
        self._pending: list[tuple[float, float, float, float, int]] = []

    def __len__(self) -> int:
        return self._xl.shape[0] + len(self._pending)

    def append(
        self, xl: float, yl: float, xu: float, yu: float, obj_id: int
    ) -> None:
        """O(1) insert of one (MBR, id) pair."""
        self._pending.append((xl, yl, xu, yu, obj_id))

    def _compact(self) -> None:
        if not self._pending:
            return
        tail = np.asarray(self._pending, dtype=np.float64)
        self._pending.clear()
        self._xl = np.concatenate([self._xl, tail[:, 0]])
        self._yl = np.concatenate([self._yl, tail[:, 1]])
        self._xu = np.concatenate([self._xu, tail[:, 2]])
        self._yu = np.concatenate([self._yu, tail[:, 3]])
        self._ids = np.concatenate([self._ids, tail[:, 4].astype(np.int64)])

    def columns(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(xl, yl, xu, yu, ids)`` with any pending inserts folded in."""
        self._compact()
        return self._xl, self._yl, self._xu, self._yu, self._ids

    def delete(self, obj_id: int) -> int:
        """Remove every entry with the given id; returns how many.

        Empty tables report 0 without touching any state.
        """
        if len(self) == 0:
            return 0
        self._compact()
        keep = self._ids != obj_id
        removed = int(self._ids.shape[0] - keep.sum())
        if removed:
            self._xl = self._xl[keep]
            self._yl = self._yl[keep]
            self._xu = self._xu[keep]
            self._yu = self._yu[keep]
            self._ids = self._ids[keep]
        return removed

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the stored entries.

        A pure read: the pending append tail is costed at its folded size
        without actually folding it (``nbytes`` must never mutate state —
        published snapshots share compacted tables across threads).
        """
        return (
            self._xl.nbytes
            + self._yl.nbytes
            + self._xu.nbytes
            + self._yu.nbytes
            + self._ids.nbytes
            + len(self._pending) * _ENTRY_BYTES
        )


def group_rows(
    keys: np.ndarray, order: "np.ndarray | None" = None
) -> "Iterator[tuple[int, np.ndarray]]":
    """Group row indices by key; yields ``(key, row_indices)`` pairs.

    ``keys`` is an int array (e.g. tile ids, or tile ids fused with class
    codes).  Sorting is the only O(n log n) step of index construction.
    """
    if keys.shape[0] == 0:
        return
    if order is None:
        order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [sorted_keys.shape[0]]])
    for s, e in zip(starts, ends):
        yield int(sorted_keys[s]), order[s:e]


def ranges_to_rows(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], ends[i])`` ranges into one index array.

    The vectorised multi-``arange``: one global ``arange`` shifted per
    range, no Python loop — the offsets walk the fused kernels gather
    rows with.
    """
    counts = ends - starts
    nz = counts > 0
    if not nz.all():
        starts = starts[nz]
        counts = counts[nz]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_I
    shifts = np.cumsum(counts)
    out = np.arange(total, dtype=np.int64)
    out += np.repeat(starts - (shifts - counts), counts)
    return out


class PackedStore:
    """CSR-packed (MBR, id) rows grouped by a fused ``(tile, class)`` key.

    ``offsets`` has ``n_groups + 1`` entries; group ``g`` owns rows
    ``[offsets[g], offsets[g+1])`` of the five column arrays, and the
    groups of one tile are adjacent (group key = ``tile_id * n_classes +
    class_code``), so a whole tile — or a whole run of tiles — is one
    contiguous row range.

    The base is append-never: inserts go to the owning index's delta
    overlay, deletes tombstone rows here via the lazily-allocated ``dead``
    bitmap (plus per-group dead counts so live sizes stay O(1)).  Forks
    for copy-on-write serving share the column arrays by reference and
    copy only the tombstone state (:meth:`with_private_dead`).
    """

    __slots__ = (
        "n_classes",
        "offsets",
        "xl",
        "yl",
        "xu",
        "yu",
        "ids",
        "dead",
        "dead_per_group",
        "n_dead",
    )

    def __init__(
        self,
        n_classes: int,
        offsets: np.ndarray,
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        yu: np.ndarray,
        ids: np.ndarray,
    ):
        self.n_classes = n_classes
        self.offsets = offsets
        self.xl = xl
        self.yl = yl
        self.xu = xu
        self.yu = yu
        self.ids = ids
        self.dead: "np.ndarray | None" = None
        self.dead_per_group: "np.ndarray | None" = None
        self.n_dead = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        n_groups: int,
        n_classes: int,
        keys: np.ndarray,
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        yu: np.ndarray,
        ids: np.ndarray,
    ) -> "PackedStore":
        """Build from per-row group keys; rows need not be pre-sorted.

        Already key-sorted input (the persistence fast path: archives
        written from a packed index are emitted in key order) is detected
        with one O(n) check and adopted zero-copy — no argsort, no
        per-group slicing.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.shape[0] and not (np.diff(keys) >= 0).all():
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            xl, yl, xu, yu, ids = (
                xl[order], yl[order], xu[order], yu[order], ids[order],
            )
        offsets = np.zeros(n_groups + 1, dtype=np.int64)
        if keys.shape[0]:
            np.cumsum(np.bincount(keys, minlength=n_groups), out=offsets[1:])
        store = cls(n_classes, offsets, xl, yl, xu, yu, ids)
        # REPRO_SANITIZE=1: every base build (bulk load, compact,
        # persistence restore) passes through here — validate the CSR
        # invariants at the choke point.
        if _sanitize.enabled():
            _sanitize.check_packed_store(store, "PackedStore.from_rows")
        return store

    @classmethod
    def adopt(
        cls,
        n_classes: int,
        offsets: np.ndarray,
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        yu: np.ndarray,
        ids: np.ndarray,
    ) -> "PackedStore":
        """Wrap already-CSR columns without touching a single row.

        The columnar container (:mod:`repro.core.format`) persists the
        ``offsets`` array alongside the key-sorted columns, so a load is
        pure adoption: no bincount, no sortedness scan — nothing that
        would fault the column slabs in before the first query.  The
        caller vouches for CSR validity (the container's format-version
        check is the provenance gate); ``REPRO_SANITIZE=1`` re-validates
        anyway, at the cost of paging everything in.
        """
        store = cls(n_classes, offsets, xl, yl, xu, yu, ids)
        if _sanitize.enabled():
            _sanitize.check_packed_store(store, "PackedStore.adopt")
        return store

    # -- sizes ------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.ids.shape[0]

    @property
    def n_live(self) -> int:
        return self.ids.shape[0] - self.n_dead

    @property
    def nbytes(self) -> int:
        total = (
            self.offsets.nbytes
            + self.xl.nbytes
            + self.yl.nbytes
            + self.xu.nbytes
            + self.yu.nbytes
            + self.ids.nbytes
        )
        if self.dead is not None:
            total += self.dead.nbytes + self.dead_per_group.nbytes
        return total

    def group_counts(self) -> np.ndarray:
        """Live rows per group (length ``n_groups``)."""
        counts = np.diff(self.offsets)
        if self.n_dead:
            counts = counts - self.dead_per_group
        return counts

    def tile_counts(self) -> np.ndarray:
        """Live rows per tile (length ``n_groups / n_classes``)."""
        if self.n_classes == 1:
            return self.group_counts()
        return self.group_counts().reshape(-1, self.n_classes).sum(axis=1)

    def live_counts_for(self, keys: np.ndarray) -> np.ndarray:
        """Live row counts of the given groups (vectorised)."""
        counts = self.offsets[keys + 1] - self.offsets[keys]
        if self.n_dead:
            counts = counts - self.dead_per_group[keys]
        return counts

    # -- row access -------------------------------------------------------

    def gather(self, keys: np.ndarray) -> np.ndarray:
        """Live row indices of the given groups, stitched in group order."""
        rows = ranges_to_rows(self.offsets[keys], self.offsets[keys + 1])
        if self.n_dead and rows.shape[0]:
            rows = rows[~self.dead[rows]]
        return rows

    def group_columns(
        self, key: int
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None":
        """Live ``(xl, yl, xu, yu, ids)`` of one group, or ``None`` if empty.

        Zero-copy views when the group carries no tombstones.
        """
        s = int(self.offsets[key])
        e = int(self.offsets[key + 1])
        if s == e:
            return None
        sl = slice(s, e)
        if self.n_dead and self.dead_per_group[key]:
            if int(self.dead_per_group[key]) == e - s:
                return None
            keep = ~self.dead[sl]
            return (
                self.xl[sl][keep],
                self.yl[sl][keep],
                self.xu[sl][keep],
                self.yu[sl][keep],
                self.ids[sl][keep],
            )
        return (self.xl[sl], self.yl[sl], self.xu[sl], self.yu[sl], self.ids[sl])

    def find_rows(self, key: int, obj_id: int) -> np.ndarray:
        """Row indices in one group holding ``obj_id`` (tombstoned excluded)."""
        s = int(self.offsets[key])
        e = int(self.offsets[key + 1])
        if s == e:
            return _EMPTY_I
        rows = s + np.flatnonzero(self.ids[s:e] == obj_id)
        if self.n_dead and rows.shape[0]:
            rows = rows[~self.dead[rows]]
        return rows

    def flat_live_rows(
        self,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """``(keys, xl, yl, xu, yu, ids)`` of every live row, in key order.

        Zero-copy (views of the base columns) when nothing is tombstoned;
        persistence uses this to emit archives that reload without a sort.
        """
        keys = np.repeat(
            np.arange(self.offsets.shape[0] - 1, dtype=np.int64),
            np.diff(self.offsets),
        )
        if not self.n_dead:
            return keys, self.xl, self.yl, self.xu, self.yu, self.ids
        keep = ~self.dead
        return (
            keys[keep],
            self.xl[keep],
            self.yl[keep],
            self.xu[keep],
            self.yu[keep],
            self.ids[keep],
        )

    # -- tombstones -------------------------------------------------------

    def mark_dead(self, rows: np.ndarray) -> int:
        """Tombstone the given rows; returns how many were newly dead."""
        if rows.shape[0] == 0:
            return 0
        if self.dead is None:
            self.dead = np.zeros(self.ids.shape[0], dtype=bool)
            self.dead_per_group = np.zeros(
                self.offsets.shape[0] - 1, dtype=np.int64
            )
        else:
            rows = rows[~self.dead[rows]]
            if rows.shape[0] == 0:
                return 0
        self.dead[rows] = True
        groups = np.searchsorted(self.offsets, rows, side="right") - 1
        np.add.at(self.dead_per_group, groups, 1)
        self.n_dead += int(rows.shape[0])
        return int(rows.shape[0])

    def with_private_dead(self) -> "PackedStore":
        """A fork sharing the column arrays but owning its tombstone state.

        The serving layer's copy-on-write deletes go through this: the
        published base stays immutable while the fork tombstones freely.
        """
        fork = PackedStore(
            self.n_classes, self.offsets, self.xl, self.yl, self.xu, self.yu,
            self.ids,
        )
        if self.dead is not None:
            fork.dead = self.dead.copy()
            fork.dead_per_group = self.dead_per_group.copy()
            fork.n_dead = self.n_dead
        return fork
