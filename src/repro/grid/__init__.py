"""Space-oriented partitioning substrate: regular grid + 1-layer baseline.

* :class:`GridPartitioner` — tile arithmetic for a regular grid.
* :func:`replicate` — vectorised object-to-tile assignment with class codes.
* :class:`OneLayerGrid` — the paper's 1-layer competitor (grid + duplicate
  elimination via reference point / hashing / active border).
"""

from repro.grid.base import (
    CLASS_A,
    CLASS_B,
    CLASS_C,
    CLASS_D,
    CLASS_NAMES,
    GridPartitioner,
    Replication,
    replicate,
)
from repro.grid.dedup import ActiveBorder, reference_point_keep_mask
from repro.grid.one_layer import DEDUP_METHODS, OneLayerGrid
from repro.grid.storage import TileTable, group_rows

__all__ = [
    "GridPartitioner",
    "Replication",
    "replicate",
    "CLASS_A",
    "CLASS_B",
    "CLASS_C",
    "CLASS_D",
    "CLASS_NAMES",
    "OneLayerGrid",
    "DEDUP_METHODS",
    "ActiveBorder",
    "reference_point_keep_mask",
    "TileTable",
    "group_rows",
]
