"""The 1-layer grid baseline: SOP grid + duplicate *elimination*.

This is the paper's ``1-layer`` competitor (Table V): a regular grid with
the identical primary partitioning as the two-layer index, evaluating
window queries with the comparison-reduction optimisation of Section IV-B
(only the boundary tiles of a query need coordinate comparisons) and
eliminating duplicate results with the reference-point technique of
Dittrich & Seeger [9] — or, for ablation, naive hashing or the
active-border method of Aref & Samet [2].

Comparing this index against :class:`repro.core.two_layer.TwoLayerGrid`
isolates exactly the contribution of the paper's secondary partitioning.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import sanitize as _sanitize
from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import IndexStateError, InvalidGridError
from repro.geometry.mbr import Rect, max_dist_point_rect
from repro.grid.base import GridPartitioner, replicate
from repro.grid.dedup import ActiveBorder, reference_point_keep_mask
from repro.grid import kernels as _kernels
from repro.grid.storage import (
    PackedStore,
    TileTable,
    group_rows,
    resolve_storage_mode,
)
from repro.obs.tracing import active as tracing_active, span as trace_span
from repro.stats import QueryStats

__all__ = ["OneLayerGrid", "DEDUP_METHODS"]

DEDUP_METHODS = ("refpoint", "hash", "active_border")


def _axis_segments(lo: int, hi: int) -> list[tuple[int, int, bool, bool]]:
    """Split ``[lo, hi]`` into runs of uniform (at-start, at-end) flags."""
    if lo == hi:
        return [(lo, hi, True, True)]
    segments = [(lo, lo, True, False)]
    if hi - lo > 1:
        segments.append((lo + 1, hi - 1, False, False))
    segments.append((hi, hi, False, True))
    return segments


class OneLayerGrid:
    """In-memory regular grid with duplicate elimination (the baseline)."""

    @property
    def dedup_strategy(self) -> str:
        """EXPLAIN accounting mode: duplicates are generated then
        eliminated by the configured technique."""
        return self.dedup

    def __init__(
        self,
        grid: GridPartitioner,
        dedup: str = "refpoint",
        storage: "str | None" = None,
    ):
        if dedup not in DEDUP_METHODS:
            raise InvalidGridError(
                f"unknown dedup method {dedup!r}; expected one of {DEDUP_METHODS}"
            )
        self.grid = grid
        self.dedup = dedup
        self._packed = resolve_storage_mode(storage)
        self._use_compiled = self._packed and _kernels.resolve_kernel_mode(
            storage
        )
        #: the CSR base (packed backend, one group per tile; None until
        #: bulk load).
        self._store: "PackedStore | None" = None
        #: the whole index (legacy backend) / delta overlay (packed).
        self._tiles: dict[int, TileTable] = {}
        self._n_objects = 0
        # Lazy per-row query matrix + per-tile row extents (packed base
        # only); rebuilt after compact().
        self._fast_q: "np.ndarray | None" = None
        self._tile_row_bounds: "list[int] | None" = None

    @property
    def storage(self) -> str:
        """The physical backend: ``"packed"`` or ``"legacy"``."""
        return "packed" if self._packed else "legacy"

    @property
    def kernel_mode(self) -> str:
        """The fast-path kernel tier: ``"compiled"`` or ``"vectorized"``."""
        return "compiled" if self._use_compiled else "vectorized"

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: RectDataset,
        partitions_per_dim: int = 128,
        domain: "Rect | None" = None,
        dedup: str = "refpoint",
        storage: "str | None" = None,
    ) -> "OneLayerGrid":
        """Bulk-load the grid from a dataset.

        ``partitions_per_dim`` is the paper's grid granularity knob
        (Fig. 7); the grid is square (N x N) like the paper's.
        """
        grid = GridPartitioner(
            partitions_per_dim,
            partitions_per_dim,
            domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0),
        )
        index = cls(grid, dedup=dedup, storage=storage)
        index._bulk_load(data)
        return index

    def _bulk_load(self, data: RectDataset) -> None:
        rep = replicate(data, self.grid)
        if self._packed:
            obj = rep.obj_ids
            self._store = PackedStore.from_rows(
                self.grid.nx * self.grid.ny,
                1,
                rep.tile_ids,
                data.xl[obj],
                data.yl[obj],
                data.xu[obj],
                data.yu[obj],
                obj.astype(np.int64, copy=False),
            )
        else:
            for tile_id, rows in group_rows(rep.tile_ids):
                obj = rep.obj_ids[rows]
                self._tiles[tile_id] = TileTable(
                    data.xl[obj].copy(),
                    data.yl[obj].copy(),
                    data.xu[obj].copy(),
                    data.yu[obj].copy(),
                    obj.copy(),
                )
        self._n_objects = len(data)

    def insert(self, rect: Rect, obj_id: "int | None" = None) -> int:
        """Insert one object; returns its id.  O(tiles overlapped)."""
        if obj_id is None:
            obj_id = self._n_objects
        self._n_objects = max(self._n_objects, obj_id + 1)
        ix0 = self.grid.tile_ix(rect.xl)
        ix1 = self.grid.tile_ix(rect.xu)
        iy0 = self.grid.tile_iy(rect.yl)
        iy1 = self.grid.tile_iy(rect.yu)
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                table = self._tiles.get(base + ix)
                if table is None:
                    table = TileTable()
                    self._tiles[base + ix] = table
                table.append(rect.xl, rect.yl, rect.xu, rect.yu, obj_id)
        return obj_id

    def delete(self, rect: Rect, obj_id: int) -> bool:
        """Remove object ``obj_id`` whose MBR is ``rect``; True if found.

        The caller supplies the MBR (the paper's storage scheme keeps
        exact object data outside the tiles, addressed by id), which
        pinpoints the tiles holding the replicas.
        """
        ix0 = self.grid.tile_ix(rect.xl)
        ix1 = self.grid.tile_ix(rect.xu)
        iy0 = self.grid.tile_iy(rect.yl)
        iy1 = self.grid.tile_iy(rect.yu)
        removed = 0
        store = self._store
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                table = self._tiles.get(base + ix)
                if table is not None:
                    removed += table.delete(obj_id)
                    if len(table) == 0:
                        del self._tiles[base + ix]
                if store is not None:
                    removed += store.mark_dead(store.find_rows(base + ix, obj_id))
        return removed > 0

    # -- storage accessors -------------------------------------------------

    def _tile_columns(self, tile_id: int) -> "tuple[np.ndarray, ...] | None":
        """Live ``(xl, yl, xu, yu, ids)`` of one tile (base + overlay)."""
        base = None
        if self._store is not None:
            base = self._store.group_columns(tile_id)
        table = self._tiles.get(tile_id)
        delta = (
            table.columns() if table is not None and len(table) else None
        )
        if base is None:
            return delta
        if delta is None:
            return base
        return tuple(np.concatenate([b, d]) for b, d in zip(base, delta))

    def _tile_has_rows(self, tile_id: int) -> bool:
        if tile_id in self._tiles:
            return True
        store = self._store
        if store is None:
            return False
        return int(store.live_counts_for(np.asarray([tile_id]))[0]) > 0

    def _delta_tiles_in_range(
        self, ix0: int, ix1: int, iy0: int, iy1: int
    ) -> list[int]:
        """Sorted overlay tile ids inside a tile range."""
        tiles = self._tiles
        if not tiles:
            return []
        nx = self.grid.nx
        if len(tiles) <= (ix1 - ix0 + 1) * (iy1 - iy0 + 1):
            out = [
                tid
                for tid in tiles
                if ix0 <= tid % nx <= ix1 and iy0 <= tid // nx <= iy1
            ]
        else:
            out = [
                base + ix
                for iy in range(iy0, iy1 + 1)
                for base in (iy * nx,)
                for ix in range(ix0, ix1 + 1)
                if base + ix in tiles
            ]
        out.sort()
        return out

    def compact(self) -> None:
        """Fold the delta overlay and tombstones into a fresh packed base.

        Explicit only, mirroring :meth:`TwoLayerGrid.compact`; no-op for
        the legacy backend.
        """
        if not self._packed:
            return
        parts_keys: list[np.ndarray] = []
        parts_cols: list[tuple[np.ndarray, ...]] = []
        if self._store is not None:
            keys, xl, yl, xu, yu, ids = self._store.flat_live_rows()
            parts_keys.append(keys)
            parts_cols.append((xl, yl, xu, yu, ids))
        for tile_id, table in self._tiles.items():
            if len(table) == 0:
                continue
            cols = table.columns()
            parts_keys.append(
                np.full(cols[4].shape[0], tile_id, dtype=np.int64)
            )
            parts_cols.append(cols)
        if parts_keys:
            keys = np.concatenate(parts_keys)
            cols = [
                np.concatenate([p[c] for p in parts_cols]) for c in range(5)
            ]
        else:
            keys = np.empty(0, dtype=np.int64)
            cols = [np.empty(0, dtype=np.float64)] * 4 + [keys]
        self._store = PackedStore.from_rows(
            self.grid.nx * self.grid.ny, 1, keys, *cols
        )
        self._tiles = {}
        self._fast_q = None
        self._tile_row_bounds = None

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self._n_objects

    @property
    def replica_count(self) -> int:
        """Total stored entries (object replicas) — the Fig. 7 size metric."""
        total = sum(len(t) for t in self._tiles.values())
        if self._store is not None:
            total += self._store.n_live
        return total

    @property
    def nbytes(self) -> int:
        total = sum(t.nbytes for t in self._tiles.values())
        if self._store is not None:
            total += self._store.nbytes
        return total

    @property
    def nonempty_tiles(self) -> int:
        if self._store is None:
            return len(self._tiles)
        counts = self._store.group_counts()
        n = int(np.count_nonzero(counts))
        n += sum(1 for tile_id in self._tiles if counts[tile_id] == 0)
        return n

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(grid={self.grid.nx}x{self.grid.ny}, "
            f"objects={self._n_objects}, replicas={self.replica_count}, "
            f"dedup={self.dedup!r})"
        )

    # -- window queries -----------------------------------------------------

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all indexed MBRs intersecting ``window`` (no duplicates).

        Every candidate in every overlapped tile is compared against the
        window (with the Section IV-B reduction: no comparisons in covered
        dimensions) and duplicates are then eliminated with the configured
        technique — this is exactly the generate-then-eliminate paradigm
        the two-layer index avoids.
        """
        if self._n_objects == 0:
            return np.empty(0, dtype=np.int64)
        if (
            stats is None
            and self._store is not None
            and not self._tiles
            and not self._store.n_dead
            and self.dedup != "active_border"
            and tracing_active() is None
        ):
            g = self.grid
            d = g.domain
            ix0 = int((window.xl - d.xl) / g.tile_w)
            ix1 = int((window.xu - d.xl) / g.tile_w)
            iy0 = int((window.yl - d.yl) / g.tile_h)
            iy1 = int((window.yu - d.yl) / g.tile_h)
            last = g.nx - 1
            ix0 = 0 if ix0 < 0 else (last if ix0 > last else ix0)
            ix1 = 0 if ix1 < 0 else (last if ix1 > last else ix1)
            last = g.ny - 1
            iy0 = 0 if iy0 < 0 else (last if iy0 > last else iy0)
            iy1 = 0 if iy1 < 0 else (last if iy1 > last else iy1)
            out = self._fused_window_fast(window, ix0, ix1, iy0, iy1)
            if _sanitize.enabled():
                _sanitize.on_window_query(self, window, out)
            return out
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
            with trace_span("filter.scan"):
                pieces = self._scan_window_tiles(window, ix0, ix1, iy0, iy1, stats)
            # The terminal duplicate-elimination stage (hash mode); the
            # refpoint / active-border tests run per tile inside the scan
            # and are accounted by the dedup_checks counter instead.
            with trace_span("dedup"):
                if not pieces:
                    out = np.empty(0, dtype=np.int64)
                else:
                    out = np.concatenate(pieces)
                    if self.dedup == "hash":
                        deduped = np.unique(out)
                        if stats is not None:
                            stats.dedup_checks += out.shape[0]
                            stats.duplicates_generated += int(
                                out.shape[0] - deduped.shape[0]
                            )
                        out = deduped
        if _sanitize.enabled():
            _sanitize.on_window_query(self, window, out)
        return out

    def _build_fast_q(self) -> np.ndarray:
        """Precompute the per-row query matrix over the packed base.

        Eight conditions per row, condition-major so each per-slab
        reduction is a handful of contiguous vectorised passes: four
        window-intersection thresholds plus four that encode the
        reference-point test of Dittrich & Seeger as ``>=`` comparisons.
        A row in tile ``(tx, ty)`` is the reporting replica iff
        ``tx == max(ref_ix, ix0)`` (same in y), where ``ref_ix`` is the
        tile of its own lower-left corner.  Rows stored in their own tile
        (``tx == ref_ix``) pass vacuously — the slab guarantees
        ``tx >= ix0`` — so their dedup columns are ``+inf``; replicated
        rows must see ``ref_ix < ix0`` and ``tx == ix0``, i.e.
        ``-ref_ix >= -(ix0 - 1)`` and ``-tx >= -ix0``.
        """
        store = self._store
        grid = self.grid
        nx = grid.nx
        counts = np.diff(store.offsets)
        tiles = np.repeat(
            np.arange(store.offsets.shape[0] - 1, dtype=np.int64), counts
        )
        tx = tiles % nx
        ty = tiles // nx
        ref_ix = grid.tile_ix_array(store.xl)
        ref_iy = grid.tile_iy_array(store.yl)
        q = np.empty((8, store.n_rows), dtype=np.float64)
        q[0] = store.xu
        q[1] = -store.xl
        q[2] = store.yu
        q[3] = -store.yl
        own_x = tx == ref_ix
        own_y = ty == ref_iy
        q[4] = np.where(own_x, np.inf, -ref_ix)
        q[5] = np.where(own_x, np.inf, -tx)
        q[6] = np.where(own_y, np.inf, -ref_iy)
        q[7] = np.where(own_y, np.inf, -ty)
        self._fast_q = q
        # One group per tile, so the CSR offsets are the row extents
        # directly; a Python list hands back plain ints cheaper than
        # NumPy scalar extraction.
        self._tile_row_bounds = store.offsets.tolist()
        return q

    # Intentionally stats-free: window_query only routes here when the
    # caller passed stats=None (the stats-carrying scan keeps §IV-B
    # comparison accounting), hence the REP004 waiver.
    def _fused_window_fast(  # repro-lint: disable=REP004
        self, window: Rect, ix0: int, ix1: int, iy0: int, iy1: int
    ) -> np.ndarray:
        """Stats-free window kernel: one comparison pass per grid row.

        Each grid row of the query rectangle is one contiguous CSR slab;
        the precomputed matrix folds intersection and reference-point
        dedup into a single broadcast ``>=``.  The hash technique skips
        the dedup columns and squashes duplicates terminally; the
        stats-carrying scan keeps the paper's exact §IV-B comparison
        accounting.
        """
        q = self._fast_q
        if q is None:
            q = self._build_fast_q()
        if self._use_compiled:
            store = self._store
            width = ix1 - ix0 + 1
            if self.dedup == "refpoint":
                bounds = np.array(
                    [
                        window.xl,
                        -window.xu,
                        window.yl,
                        -window.yu,
                        float(-(ix0 - 1)),
                        float(-ix0),
                        float(-(iy0 - 1)),
                        float(-iy0),
                    ]
                )
            else:  # hash: plain intersection, terminal dedup below
                q = q[:4]
                bounds = np.array(
                    [window.xl, -window.xu, window.yl, -window.yu]
                )
            out = _kernels.window_scan(
                q,
                store.ids,
                store.offsets,
                1,
                self.grid.nx,
                ix0,
                iy0,
                iy1,
                width,
                bounds,
            )
            if self.dedup == "hash":
                return np.unique(out)
            return out
        tb = self._tile_row_bounds
        if tb is None:
            # Memmap-loaded indexes defer this materialisation so loading
            # touches no slab bytes; derive the row extents on first use.
            tb = self._tile_row_bounds = self._store.offsets.tolist()
        ids = self._store.ids
        ge = np.greater_equal
        band = np.logical_and.reduce
        if self.dedup == "refpoint":
            bounds = np.array(
                [
                    window.xl,
                    -window.xu,
                    window.yl,
                    -window.yu,
                    float(-(ix0 - 1)),
                    float(-ix0),
                    float(-(iy0 - 1)),
                    float(-iy0),
                ]
            ).reshape(8, 1)
        else:  # hash: plain intersection filter, duplicates squashed below
            q = q[:4]
            bounds = np.array(
                [window.xl, -window.xu, window.yl, -window.yu]
            ).reshape(4, 1)
        lo = iy0 * self.grid.nx + ix0
        width = ix1 - ix0 + 1
        pieces: list[np.ndarray] = []
        for _ in range(iy0, iy1 + 1):
            s0 = tb[lo]
            s1 = tb[lo + width]
            lo += self.grid.nx
            if s0 == s1:
                continue
            keep = band(ge(q[:, s0:s1], bounds), axis=0)
            pieces.append(ids[s0:s1][keep])
        if not pieces:
            return np.empty(0, dtype=np.int64)
        out = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
        if self.dedup == "hash":
            return np.unique(out)
        return out

    def _scan_window_tiles(
        self,
        window: Rect,
        ix0: int,
        ix1: int,
        iy0: int,
        iy1: int,
        stats: "QueryStats | None",
    ) -> list[np.ndarray]:
        """Per-tile candidate scan (with in-scan dedup for refpoint/border).

        The packed backend runs the fused region kernel for the refpoint
        and hash techniques; the active-border sweep is inherently
        sequential in row-major tile order, so it always scans per tile.
        """
        if self._store is not None and self.dedup != "active_border":
            return self._fused_window_tiles(window, ix0, ix1, iy0, iy1, stats)
        pieces: list[np.ndarray] = []
        border = ActiveBorder() if self.dedup == "active_border" else None
        for iy in range(iy0, iy1 + 1):
            if border is not None:
                border.start_row(iy)
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                cols = self._tile_columns(base + ix)
                if cols is None:
                    continue
                xl, yl, xu, yu, ids = cols
                if stats is not None:
                    stats.partitions_visited += 1
                    stats.rects_scanned += ids.shape[0]
                    stats.visit_class("tile")
                    # 1-layer scans every row of every visited tile, so
                    # scanned == present (nothing is class-pruned).
                    stats.visit_tile(base + ix, ids.shape[0], ids.shape[0])
                mask = self._window_mask(
                    xl, yl, xu, yu, window, ix, ix0, ix1, iy, iy0, iy1, stats
                )
                if mask is None:
                    cand = slice(None)
                    cand_xl, cand_yl, cand_ids = xl, yl, ids
                else:
                    cand = mask
                    cand_xl = xl[cand]
                    cand_yl = yl[cand]
                    cand_ids = ids[cand]
                if cand_ids.shape[0] == 0:
                    continue
                if self.dedup == "refpoint":
                    keep = reference_point_keep_mask(
                        cand_xl, cand_yl, window, self.grid, ix, iy
                    )
                    if stats is not None:
                        stats.dedup_checks += cand_ids.shape[0]
                        stats.duplicates_generated += int(
                            cand_ids.shape[0] - keep.sum()
                        )
                    pieces.append(cand_ids[keep])
                elif self.dedup == "hash":
                    pieces.append(cand_ids)
                else:  # active_border
                    assert border is not None
                    cand_yu = yu[cand]
                    cand_xu = xu[cand]
                    last_rows = np.minimum(self.grid.tile_iy_array(cand_yu), iy1)
                    last_cols = np.minimum(self.grid.tile_ix_array(cand_xu), ix1)
                    kept = []
                    for k in range(cand_ids.shape[0]):
                        extends = last_rows[k] > iy or last_cols[k] > ix
                        if stats is not None:
                            stats.dedup_checks += 1
                        if border.report(int(cand_ids[k]), int(last_rows[k]), extends):
                            kept.append(cand_ids[k])
                        elif stats is not None:
                            stats.duplicates_generated += 1
                    pieces.append(np.asarray(kept, dtype=np.int64))
        return pieces

    def _fused_window_tiles(
        self,
        window: Rect,
        ix0: int,
        ix1: int,
        iy0: int,
        iy1: int,
        stats: "QueryStats | None",
    ) -> list[np.ndarray]:
        """Packed-backend window kernel (refpoint / hash dedup).

        The tile range decomposes into at most 9 regions of uniform
        §IV-B comparison sets; each region is one offsets walk over the
        CSR base plus one vectorised comparison pass — including the
        reference-point test, which generalises across tiles by carrying
        per-row tile coordinates.  Overlay tiles fall back to per-tile.
        """
        store = self._store
        grid = self.grid
        nx = grid.nx
        pieces: list[np.ndarray] = []
        delta = self._delta_tiles_in_range(ix0, ix1, iy0, iy1)
        delta_arr = np.asarray(delta, dtype=np.int64) if delta else None
        for ay, by, at_y0, at_y1 in _axis_segments(iy0, iy1):
            for ax, bx, at_x0, at_x1 in _axis_segments(ix0, ix1):
                tids = (
                    np.arange(ay, by + 1, dtype=np.int64)[:, None] * nx
                    + np.arange(ax, bx + 1, dtype=np.int64)[None, :]
                ).ravel()
                if delta_arr is not None:
                    tids = tids[~np.isin(tids, delta_arr)]
                    if tids.shape[0] == 0:
                        continue
                counts = store.live_counts_for(tids)
                total = int(counts.sum())
                if total == 0:
                    continue
                n_comparisons = (
                    int(at_x0) + int(at_x1) + int(at_y0) + int(at_y1)
                )
                if stats is not None:
                    stats.partitions_visited += int(np.count_nonzero(counts))
                    stats.rects_scanned += total
                    stats.comparisons += n_comparisons * total
                    for _ in range(int(np.count_nonzero(counts))):
                        stats.visit_class("tile")
                    stats.visit_tiles(tids, counts, counts)
                rows = store.gather(tids)
                mask: "np.ndarray | None" = None
                if at_x0:
                    mask = store.xu[rows] >= window.xl
                if at_x1:
                    m = store.xl[rows] <= window.xu
                    mask = m if mask is None else mask & m
                if at_y0:
                    m = store.yu[rows] >= window.yl
                    mask = m if mask is None else mask & m
                if at_y1:
                    m = store.yl[rows] <= window.yu
                    mask = m if mask is None else mask & m
                if mask is None:
                    cand_rows = rows
                else:
                    cand_rows = rows[mask]
                if cand_rows.shape[0] == 0:
                    continue
                cand_ids = store.ids[cand_rows]
                if self.dedup == "hash":
                    pieces.append(cand_ids)
                    continue
                # Reference-point test over the stitched rows: each row
                # keeps its own tile coordinates.
                tix_rows = np.repeat(tids % nx, counts)
                tiy_rows = np.repeat(tids // nx, counts)
                if mask is not None:
                    tix_rows = tix_rows[mask]
                    tiy_rows = tiy_rows[mask]
                px = np.maximum(store.xl[cand_rows], window.xl)
                py = np.maximum(store.yl[cand_rows], window.yl)
                keep = (grid.tile_ix_array(px) == tix_rows) & (
                    grid.tile_iy_array(py) == tiy_rows
                )
                if stats is not None:
                    stats.dedup_checks += cand_ids.shape[0]
                    stats.duplicates_generated += int(
                        cand_ids.shape[0] - keep.sum()
                    )
                pieces.append(cand_ids[keep])
        for tile_id in delta:
            ix = tile_id % nx
            iy = tile_id // nx
            cols = self._tile_columns(tile_id)
            if cols is None:
                continue
            xl, yl, xu, yu, ids = cols
            if stats is not None:
                stats.partitions_visited += 1
                stats.rects_scanned += ids.shape[0]
                stats.visit_class("tile")
                stats.visit_tile(tile_id, ids.shape[0], ids.shape[0])
            mask = self._window_mask(
                xl, yl, xu, yu, window, ix, ix0, ix1, iy, iy0, iy1, stats
            )
            if mask is None:
                cand_xl, cand_yl, cand_ids = xl, yl, ids
            else:
                cand_xl = xl[mask]
                cand_yl = yl[mask]
                cand_ids = ids[mask]
            if cand_ids.shape[0] == 0:
                continue
            if self.dedup == "hash":
                pieces.append(cand_ids)
                continue
            keep = reference_point_keep_mask(
                cand_xl, cand_yl, window, grid, ix, iy
            )
            if stats is not None:
                stats.dedup_checks += cand_ids.shape[0]
                stats.duplicates_generated += int(
                    cand_ids.shape[0] - keep.sum()
                )
            pieces.append(cand_ids[keep])
        return pieces

    @staticmethod
    def _window_mask(
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        yu: np.ndarray,
        window: Rect,
        ix: int,
        ix0: int,
        ix1: int,
        iy: int,
        iy0: int,
        iy1: int,
        stats: "QueryStats | None",
    ) -> "np.ndarray | None":
        """Intersection mask with only the comparisons Section IV-B requires.

        A tile strictly between the query's first and last tile in a
        dimension is covered by the window there, so no comparison is
        needed in that dimension.  Returns ``None`` when the tile is
        covered in both dimensions (every rectangle qualifies).
        """
        mask: "np.ndarray | None" = None
        n_comparisons = 0
        if ix == ix0:
            mask = xu >= window.xl
            n_comparisons += 1
        if ix == ix1:
            m = xl <= window.xu
            mask = m if mask is None else mask & m
            n_comparisons += 1
        if iy == iy0:
            m = yu >= window.yl
            mask = m if mask is None else mask & m
            n_comparisons += 1
        if iy == iy1:
            m = yl <= window.yu
            mask = m if mask is None else mask & m
            n_comparisons += 1
        if stats is not None:
            stats.comparisons += n_comparisons * xl.shape[0]
        return mask

    # -- disk queries ---------------------------------------------------------

    def disk_query(
        self, query: DiskQuery, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all indexed MBRs within ``query.radius`` of the centre.

        Implemented as the paper prescribes for the 1-layer baseline: run a
        window query with the disk's MBR (reference-point deduplication
        against that window), report results in fully-covered tiles
        directly and distance-verify the rest (Section VII, "Disk range
        queries").
        """
        if self._n_objects == 0:
            return np.empty(0, dtype=np.int64)
        with trace_span("query.disk"):
            with trace_span("filter.lookup"):
                window = query.mbr()
                ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
            with trace_span("filter.scan"):
                pieces = self._scan_disk_tiles(query, window, ix0, ix1, iy0, iy1, stats)
            with trace_span("dedup"):
                pass  # reference-point test runs per tile inside the scan
            if not pieces:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(pieces)

    def _scan_disk_tiles(
        self,
        query: DiskQuery,
        window: Rect,
        ix0: int,
        ix1: int,
        iy0: int,
        iy1: int,
        stats: "QueryStats | None",
    ) -> list[np.ndarray]:
        """Per-tile disk-candidate scan with in-scan refpoint dedup."""
        radius = query.radius
        pieces: list[np.ndarray] = []
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                # NOTE: tiles of the MBR that do not intersect the disk are
                # still visited — a candidate's reference point may fall in
                # them, and this extra work is precisely the 1-layer
                # baseline's handicap on disk queries.
                cols = self._tile_columns(base + ix)
                if cols is None:
                    continue
                xl, yl, xu, yu, ids = cols
                if stats is not None:
                    stats.partitions_visited += 1
                    stats.rects_scanned += ids.shape[0]
                    stats.visit_class("tile")
                    stats.visit_tile(base + ix, ids.shape[0], ids.shape[0])
                mask = self._window_mask(
                    xl, yl, xu, yu, window, ix, ix0, ix1, iy, iy0, iy1, stats
                )
                if mask is None:
                    cand_xl, cand_yl, cand_xu, cand_yu, cand_ids = xl, yl, xu, yu, ids
                else:
                    cand_xl = xl[mask]
                    cand_yl = yl[mask]
                    cand_xu = xu[mask]
                    cand_yu = yu[mask]
                    cand_ids = ids[mask]
                if cand_ids.shape[0] == 0:
                    continue
                keep = reference_point_keep_mask(
                    cand_xl, cand_yl, window, self.grid, ix, iy
                )
                if stats is not None:
                    stats.dedup_checks += cand_ids.shape[0]
                    stats.duplicates_generated += int(cand_ids.shape[0] - keep.sum())
                tile_rect = self.grid.tile_rect(ix, iy)
                covered = max_dist_point_rect(query.cx, query.cy, tile_rect) <= radius
                if covered:
                    pieces.append(cand_ids[keep])
                    continue
                dx = np.maximum(
                    np.maximum(cand_xl[keep] - query.cx, 0.0),
                    query.cx - cand_xu[keep],
                )
                dy = np.maximum(
                    np.maximum(cand_yl[keep] - query.cy, 0.0),
                    query.cy - cand_yu[keep],
                )
                within = dx * dx + dy * dy <= radius * radius
                pieces.append(cand_ids[keep][within])
        return pieces

    # -- helpers for tests ------------------------------------------------------

    def tile_table(self, ix: int, iy: int) -> "TileTable | None":
        """The raw tile storage (testing / inspection only).

        Under the packed backend the returned table is a merged read-only
        view of base + overlay; mutate through :meth:`insert`/:meth:`delete`.
        """
        if not (0 <= ix < self.grid.nx and 0 <= iy < self.grid.ny):
            raise IndexStateError(f"tile ({ix}, {iy}) outside the grid")
        tile_id = self.grid.tile_id(ix, iy)
        if self._store is None:
            return self._tiles.get(tile_id)
        cols = self._tile_columns(tile_id)
        return None if cols is None else TileTable(*cols)

    def explain_partitions(
        self, window: Rect
    ) -> list[tuple[Rect, np.ndarray]]:
        """EXPLAIN introspection: ``(tile rect, stored ids)`` for every
        non-empty tile a window scan of ``window`` touches."""
        if self._n_objects == 0:
            return []
        out: list[tuple[Rect, np.ndarray]] = []
        ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                cols = self._tile_columns(base + ix)
                if cols is None or cols[4].shape[0] == 0:
                    continue
                out.append((self.grid.tile_rect(ix, iy), cols[4]))
        return out
