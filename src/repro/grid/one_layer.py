"""The 1-layer grid baseline: SOP grid + duplicate *elimination*.

This is the paper's ``1-layer`` competitor (Table V): a regular grid with
the identical primary partitioning as the two-layer index, evaluating
window queries with the comparison-reduction optimisation of Section IV-B
(only the boundary tiles of a query need coordinate comparisons) and
eliminating duplicate results with the reference-point technique of
Dittrich & Seeger [9] — or, for ablation, naive hashing or the
active-border method of Aref & Samet [2].

Comparing this index against :class:`repro.core.two_layer.TwoLayerGrid`
isolates exactly the contribution of the paper's secondary partitioning.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import IndexStateError, InvalidGridError
from repro.geometry.mbr import Rect, max_dist_point_rect, min_dist_point_rect
from repro.grid.base import GridPartitioner, replicate
from repro.grid.dedup import ActiveBorder, reference_point_keep_mask
from repro.grid.storage import TileTable, group_rows
from repro.obs.tracing import span as trace_span
from repro.stats import QueryStats

__all__ = ["OneLayerGrid", "DEDUP_METHODS"]

DEDUP_METHODS = ("refpoint", "hash", "active_border")


class OneLayerGrid:
    """In-memory regular grid with duplicate elimination (the baseline)."""

    @property
    def dedup_strategy(self) -> str:
        """EXPLAIN accounting mode: duplicates are generated then
        eliminated by the configured technique."""
        return self.dedup

    def __init__(self, grid: GridPartitioner, dedup: str = "refpoint"):
        if dedup not in DEDUP_METHODS:
            raise InvalidGridError(
                f"unknown dedup method {dedup!r}; expected one of {DEDUP_METHODS}"
            )
        self.grid = grid
        self.dedup = dedup
        self._tiles: dict[int, TileTable] = {}
        self._n_objects = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: RectDataset,
        partitions_per_dim: int = 128,
        domain: "Rect | None" = None,
        dedup: str = "refpoint",
    ) -> "OneLayerGrid":
        """Bulk-load the grid from a dataset.

        ``partitions_per_dim`` is the paper's grid granularity knob
        (Fig. 7); the grid is square (N x N) like the paper's.
        """
        grid = GridPartitioner(
            partitions_per_dim,
            partitions_per_dim,
            domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0),
        )
        index = cls(grid, dedup=dedup)
        index._bulk_load(data)
        return index

    def _bulk_load(self, data: RectDataset) -> None:
        rep = replicate(data, self.grid)
        for tile_id, rows in group_rows(rep.tile_ids):
            obj = rep.obj_ids[rows]
            self._tiles[tile_id] = TileTable(
                data.xl[obj].copy(),
                data.yl[obj].copy(),
                data.xu[obj].copy(),
                data.yu[obj].copy(),
                obj.copy(),
            )
        self._n_objects = len(data)

    def insert(self, rect: Rect, obj_id: "int | None" = None) -> int:
        """Insert one object; returns its id.  O(tiles overlapped)."""
        if obj_id is None:
            obj_id = self._n_objects
        self._n_objects = max(self._n_objects, obj_id + 1)
        ix0 = self.grid.tile_ix(rect.xl)
        ix1 = self.grid.tile_ix(rect.xu)
        iy0 = self.grid.tile_iy(rect.yl)
        iy1 = self.grid.tile_iy(rect.yu)
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                table = self._tiles.get(base + ix)
                if table is None:
                    table = TileTable()
                    self._tiles[base + ix] = table
                table.append(rect.xl, rect.yl, rect.xu, rect.yu, obj_id)
        return obj_id

    def delete(self, rect: Rect, obj_id: int) -> bool:
        """Remove object ``obj_id`` whose MBR is ``rect``; True if found.

        The caller supplies the MBR (the paper's storage scheme keeps
        exact object data outside the tiles, addressed by id), which
        pinpoints the tiles holding the replicas.
        """
        ix0 = self.grid.tile_ix(rect.xl)
        ix1 = self.grid.tile_ix(rect.xu)
        iy0 = self.grid.tile_iy(rect.yl)
        iy1 = self.grid.tile_iy(rect.yu)
        removed = 0
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                table = self._tiles.get(base + ix)
                if table is not None:
                    removed += table.delete(obj_id)
                    if len(table) == 0:
                        del self._tiles[base + ix]
        return removed > 0

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self._n_objects

    @property
    def replica_count(self) -> int:
        """Total stored entries (object replicas) — the Fig. 7 size metric."""
        return sum(len(t) for t in self._tiles.values())

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self._tiles.values())

    @property
    def nonempty_tiles(self) -> int:
        return len(self._tiles)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(grid={self.grid.nx}x{self.grid.ny}, "
            f"objects={self._n_objects}, replicas={self.replica_count}, "
            f"dedup={self.dedup!r})"
        )

    # -- window queries -----------------------------------------------------

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all indexed MBRs intersecting ``window`` (no duplicates).

        Every candidate in every overlapped tile is compared against the
        window (with the Section IV-B reduction: no comparisons in covered
        dimensions) and duplicates are then eliminated with the configured
        technique — this is exactly the generate-then-eliminate paradigm
        the two-layer index avoids.
        """
        if self._n_objects == 0:
            return np.empty(0, dtype=np.int64)
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
            with trace_span("filter.scan"):
                pieces = self._scan_window_tiles(window, ix0, ix1, iy0, iy1, stats)
            # The terminal duplicate-elimination stage (hash mode); the
            # refpoint / active-border tests run per tile inside the scan
            # and are accounted by the dedup_checks counter instead.
            with trace_span("dedup"):
                if not pieces:
                    return np.empty(0, dtype=np.int64)
                out = np.concatenate(pieces)
                if self.dedup == "hash":
                    deduped = np.unique(out)
                    if stats is not None:
                        stats.dedup_checks += out.shape[0]
                        stats.duplicates_generated += int(
                            out.shape[0] - deduped.shape[0]
                        )
                    return deduped
                return out

    def _scan_window_tiles(
        self,
        window: Rect,
        ix0: int,
        ix1: int,
        iy0: int,
        iy1: int,
        stats: "QueryStats | None",
    ) -> list[np.ndarray]:
        """Per-tile candidate scan (with in-scan dedup for refpoint/border)."""
        pieces: list[np.ndarray] = []
        border = ActiveBorder() if self.dedup == "active_border" else None
        for iy in range(iy0, iy1 + 1):
            if border is not None:
                border.start_row(iy)
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                table = self._tiles.get(base + ix)
                if table is None:
                    continue
                xl, yl, xu, yu, ids = table.columns()
                if stats is not None:
                    stats.partitions_visited += 1
                    stats.rects_scanned += ids.shape[0]
                    stats.visit_class("tile")
                mask = self._window_mask(
                    xl, yl, xu, yu, window, ix, ix0, ix1, iy, iy0, iy1, stats
                )
                if mask is None:
                    cand = slice(None)
                    cand_xl, cand_yl, cand_ids = xl, yl, ids
                else:
                    cand = mask
                    cand_xl = xl[cand]
                    cand_yl = yl[cand]
                    cand_ids = ids[cand]
                if cand_ids.shape[0] == 0:
                    continue
                if self.dedup == "refpoint":
                    keep = reference_point_keep_mask(
                        cand_xl, cand_yl, window, self.grid, ix, iy
                    )
                    if stats is not None:
                        stats.dedup_checks += cand_ids.shape[0]
                        stats.duplicates_generated += int(
                            cand_ids.shape[0] - keep.sum()
                        )
                    pieces.append(cand_ids[keep])
                elif self.dedup == "hash":
                    pieces.append(cand_ids)
                else:  # active_border
                    assert border is not None
                    cand_yu = yu[cand]
                    cand_xu = xu[cand]
                    last_rows = np.minimum(self.grid.tile_iy_array(cand_yu), iy1)
                    last_cols = np.minimum(self.grid.tile_ix_array(cand_xu), ix1)
                    kept = []
                    for k in range(cand_ids.shape[0]):
                        extends = last_rows[k] > iy or last_cols[k] > ix
                        if stats is not None:
                            stats.dedup_checks += 1
                        if border.report(int(cand_ids[k]), int(last_rows[k]), extends):
                            kept.append(cand_ids[k])
                        elif stats is not None:
                            stats.duplicates_generated += 1
                    pieces.append(np.asarray(kept, dtype=np.int64))
        return pieces

    @staticmethod
    def _window_mask(
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        yu: np.ndarray,
        window: Rect,
        ix: int,
        ix0: int,
        ix1: int,
        iy: int,
        iy0: int,
        iy1: int,
        stats: "QueryStats | None",
    ) -> "np.ndarray | None":
        """Intersection mask with only the comparisons Section IV-B requires.

        A tile strictly between the query's first and last tile in a
        dimension is covered by the window there, so no comparison is
        needed in that dimension.  Returns ``None`` when the tile is
        covered in both dimensions (every rectangle qualifies).
        """
        mask: "np.ndarray | None" = None
        n_comparisons = 0
        if ix == ix0:
            mask = xu >= window.xl
            n_comparisons += 1
        if ix == ix1:
            m = xl <= window.xu
            mask = m if mask is None else mask & m
            n_comparisons += 1
        if iy == iy0:
            m = yu >= window.yl
            mask = m if mask is None else mask & m
            n_comparisons += 1
        if iy == iy1:
            m = yl <= window.yu
            mask = m if mask is None else mask & m
            n_comparisons += 1
        if stats is not None:
            stats.comparisons += n_comparisons * xl.shape[0]
        return mask

    # -- disk queries ---------------------------------------------------------

    def disk_query(
        self, query: DiskQuery, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all indexed MBRs within ``query.radius`` of the centre.

        Implemented as the paper prescribes for the 1-layer baseline: run a
        window query with the disk's MBR (reference-point deduplication
        against that window), report results in fully-covered tiles
        directly and distance-verify the rest (Section VII, "Disk range
        queries").
        """
        if self._n_objects == 0:
            return np.empty(0, dtype=np.int64)
        with trace_span("query.disk"):
            with trace_span("filter.lookup"):
                window = query.mbr()
                ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
            with trace_span("filter.scan"):
                pieces = self._scan_disk_tiles(query, window, ix0, ix1, iy0, iy1, stats)
            with trace_span("dedup"):
                pass  # reference-point test runs per tile inside the scan
            if not pieces:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(pieces)

    def _scan_disk_tiles(
        self,
        query: DiskQuery,
        window: Rect,
        ix0: int,
        ix1: int,
        iy0: int,
        iy1: int,
        stats: "QueryStats | None",
    ) -> list[np.ndarray]:
        """Per-tile disk-candidate scan with in-scan refpoint dedup."""
        radius = query.radius
        pieces: list[np.ndarray] = []
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                # NOTE: tiles of the MBR that do not intersect the disk are
                # still visited — a candidate's reference point may fall in
                # them, and this extra work is precisely the 1-layer
                # baseline's handicap on disk queries.
                table = self._tiles.get(base + ix)
                if table is None:
                    continue
                xl, yl, xu, yu, ids = table.columns()
                if stats is not None:
                    stats.partitions_visited += 1
                    stats.rects_scanned += ids.shape[0]
                    stats.visit_class("tile")
                mask = self._window_mask(
                    xl, yl, xu, yu, window, ix, ix0, ix1, iy, iy0, iy1, stats
                )
                if mask is None:
                    cand_xl, cand_yl, cand_xu, cand_yu, cand_ids = xl, yl, xu, yu, ids
                else:
                    cand_xl = xl[mask]
                    cand_yl = yl[mask]
                    cand_xu = xu[mask]
                    cand_yu = yu[mask]
                    cand_ids = ids[mask]
                if cand_ids.shape[0] == 0:
                    continue
                keep = reference_point_keep_mask(
                    cand_xl, cand_yl, window, self.grid, ix, iy
                )
                if stats is not None:
                    stats.dedup_checks += cand_ids.shape[0]
                    stats.duplicates_generated += int(cand_ids.shape[0] - keep.sum())
                tile_rect = self.grid.tile_rect(ix, iy)
                covered = max_dist_point_rect(query.cx, query.cy, tile_rect) <= radius
                if covered:
                    pieces.append(cand_ids[keep])
                    continue
                dx = np.maximum(
                    np.maximum(cand_xl[keep] - query.cx, 0.0),
                    query.cx - cand_xu[keep],
                )
                dy = np.maximum(
                    np.maximum(cand_yl[keep] - query.cy, 0.0),
                    query.cy - cand_yu[keep],
                )
                within = dx * dx + dy * dy <= radius * radius
                pieces.append(cand_ids[keep][within])
        return pieces

    # -- helpers for tests ------------------------------------------------------

    def tile_table(self, ix: int, iy: int) -> "TileTable | None":
        """The raw tile storage (testing / inspection only)."""
        if not (0 <= ix < self.grid.nx and 0 <= iy < self.grid.ny):
            raise IndexStateError(f"tile ({ix}, {iy}) outside the grid")
        return self._tiles.get(self.grid.tile_id(ix, iy))

    def explain_partitions(
        self, window: Rect
    ) -> list[tuple[Rect, np.ndarray]]:
        """EXPLAIN introspection: ``(tile rect, stored ids)`` for every
        non-empty tile a window scan of ``window`` touches."""
        if self._n_objects == 0:
            return []
        out: list[tuple[Rect, np.ndarray]] = []
        ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                table = self._tiles.get(base + ix)
                if table is None or len(table) == 0:
                    continue
                out.append((self.grid.tile_rect(ix, iy), table.columns()[4]))
        return out
