"""Optional compiled (Numba) kernel tier over the packed CSR layout.

The vectorised fast kernels (:meth:`TwoLayerGrid._fused_window_fast`
and friends) already evaluate a window as one broadcast comparison per
grid-row slab, but NumPy still materialises a boolean mask, pays one
dispatch per condition row, and walks every slab twice.  With the
columns flat and condition-major, the same scan is a textbook candidate
for a compiled loop: one pass over the slab, six (or eight) scalar
compares per row, direct append into the output — no temporaries.

This module holds that tier.  Everything degrades gracefully:

* **numba absent** — the ``@njit`` wrappers are never created,
  :func:`compiled_available` is ``False``, and every index silently
  stays on the vectorised kernels (tier-1 CI runs exactly this way).
* **numba present** — opt in per index with ``storage="compiled"`` (the
  existing storage knob; implies the packed backend) or process-wide
  with ``REPRO_KERNEL=compiled``, which upgrades every packed index so
  the whole test suite exercises the compiled tier for parity.

Parity is enforced twice: the ``REPRO_SANITIZE=1`` sampled oracle
cross-checks live query results, and the packed-vs-legacy property
tests run under ``REPRO_KERNEL=compiled`` in the ``kernels-compiled``
CI job.

Kernels cover the stats-free hot routes — window scan, window count and
the §IV-E disk scan — for the 2-layer / 2-layer⁺ grids (the latter
inherits all three) plus the 1-layer window scan (refpoint and hash
dedup).  Stats-carrying queries, delta overlays and tombstones keep the
vectorised paths: they are not the hot loop, and the accounting belongs
in one place.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

__all__ = [
    "KERNEL_MODES",
    "compiled_available",
    "compiled_kernel_default",
    "disk_scan",
    "resolve_kernel_mode",
    "window_count",
    "window_scan",
]

KERNEL_MODES = ("vectorized", "compiled")

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    _HAVE_NUMBA = True
except ImportError:  # the container image is numba-free by default
    _njit = None
    _HAVE_NUMBA = False


def compiled_available() -> bool:
    """Whether the numba-compiled kernel tier can actually run."""
    return _HAVE_NUMBA


def compiled_kernel_default() -> bool:
    """Process-wide kernel-tier request: ``REPRO_KERNEL=compiled``."""
    return os.environ.get("REPRO_KERNEL", "") == "compiled"


def resolve_kernel_mode(storage: "str | None") -> bool:
    """Effective "use compiled kernels?" for one index.

    ``storage="compiled"`` opts in explicitly; any other explicit mode
    opts out; ``None`` (and plain ``"packed"``) defer to the
    ``REPRO_KERNEL`` environment default so a whole process — including
    the parity test suite — can be flipped at once.  Always ``False``
    when numba is missing: the fallback is silent by design.
    """
    if not _HAVE_NUMBA:
        return False
    if storage == "compiled":
        return True
    if storage == "legacy":
        return False
    return compiled_kernel_default()


# -- jitted bodies ---------------------------------------------------------
#
# Shared by the 2-layer family (stride=4: one CSR group per class, tile
# extents at offsets[4*t]) and the 1-layer grid (stride=1).  ``bounds``
# carries however many condition rows the caller's query matrix has
# (6 for 2-layer, 8/4 for 1-layer refpoint/hash), so one kernel serves
# every grid.


def _window_scan_py(
    q: np.ndarray,
    ids: np.ndarray,
    offsets: np.ndarray,
    stride: int,
    nx: int,
    ix0: int,
    iy0: int,
    iy1: int,
    width: int,
    bounds: np.ndarray,
) -> np.ndarray:
    nb = bounds.shape[0]
    total = 0
    row = iy0 * nx + ix0
    for _ in range(iy0, iy1 + 1):
        total += offsets[stride * (row + width)] - offsets[stride * row]
        row += nx
    out = np.empty(total, np.int64)
    k = 0
    row = iy0 * nx + ix0
    for _ in range(iy0, iy1 + 1):
        s0 = offsets[stride * row]
        s1 = offsets[stride * (row + width)]
        row += nx
        for r in range(s0, s1):
            ok = True
            for c in range(nb):
                if q[c, r] < bounds[c]:
                    ok = False
                    break
            if ok:
                out[k] = ids[r]
                k += 1
    return out[:k]


def _window_count_py(
    q: np.ndarray,
    offsets: np.ndarray,
    stride: int,
    nx: int,
    ix0: int,
    iy0: int,
    iy1: int,
    width: int,
    bounds: np.ndarray,
) -> int:
    nb = bounds.shape[0]
    k = 0
    row = iy0 * nx + ix0
    for _ in range(iy0, iy1 + 1):
        s0 = offsets[stride * row]
        s1 = offsets[stride * (row + width)]
        row += nx
        for r in range(s0, s1):
            ok = True
            for c in range(nb):
                if q[c, r] < bounds[c]:
                    ok = False
                    break
            if ok:
                k += 1
    return k


def _disk_scan_py(
    offsets: np.ndarray,
    xl: np.ndarray,
    yl: np.ndarray,
    xu: np.ndarray,
    yu: np.ndarray,
    ids: np.ndarray,
    nx: int,
    ny: int,
    dxl: float,
    dyl: float,
    tw: float,
    th: float,
    ix0: int,
    ix1: int,
    iy0: int,
    iy1: int,
    cx: float,
    cy: float,
    radius: float,
) -> np.ndarray:
    # §IV-E in one compiled pass: plan (per-row disk spans), class
    # skipping against the previous tile per dimension, covered-tile
    # shortcut, distance test, and the canonical-tile dedup for B/D.
    nrows = iy1 - iy0 + 1
    span_lo = np.full(nrows, -1, np.int64)
    span_hi = np.full(nrows, -1, np.int64)
    r2 = radius * radius
    for iy in range(iy0, iy1 + 1):
        tyl = dyl + iy * th
        dy = tyl - cy
        if dy < 0.0:
            dy = cy - (tyl + th)
            if dy < 0.0:
                dy = 0.0
        for ix in range(ix0, ix1 + 1):
            txl = dxl + ix * tw
            dx = txl - cx
            if dx < 0.0:
                dx = cx - (txl + tw)
                if dx < 0.0:
                    dx = 0.0
            if dx * dx + dy * dy <= r2:
                if span_lo[iy - iy0] < 0:
                    span_lo[iy - iy0] = ix
                span_hi[iy - iy0] = ix
    total = 0
    for iy in range(iy0, iy1 + 1):
        lx = span_lo[iy - iy0]
        if lx < 0:
            continue
        base = iy * nx
        total += (
            offsets[(base + span_hi[iy - iy0] + 1) * 4] - offsets[(base + lx) * 4]
        )
    out = np.empty(total, np.int64)
    k = 0
    for iy in range(iy0, iy1 + 1):
        lx = span_lo[iy - iy0]
        if lx < 0:
            continue
        rx = span_hi[iy - iy0]
        p_lo = span_lo[iy - 1 - iy0] if iy - 1 >= iy0 else -1
        p_hi = span_hi[iy - 1 - iy0] if iy - 1 >= iy0 else -1
        base = iy * nx
        for ix in range(lx, rx + 1):
            prev_x_in = ix > lx
            prev_y_in = p_lo >= 0 and p_lo <= ix <= p_hi
            txl = dxl + ix * tw
            tyl = dyl + iy * th
            mdx = cx - txl
            if txl + tw - cx > mdx:
                mdx = txl + tw - cx
            mdy = cy - tyl
            if tyl + th - cy > mdy:
                mdy = tyl + th - cy
            covered = mdx * mdx + mdy * mdy <= r2
            for code in range(4):
                if code == 1 and prev_y_in:
                    continue
                if code == 2 and prev_x_in:
                    continue
                if code == 3 and (prev_x_in or prev_y_in):
                    continue
                key = (base + ix) * 4 + code
                for r in range(offsets[key], offsets[key + 1]):
                    if not covered:
                        dx = xl[r] - cx
                        if dx < 0.0:
                            dx = cx - xu[r]
                            if dx < 0.0:
                                dx = 0.0
                        dy = yl[r] - cy
                        if dy < 0.0:
                            dy = cy - yu[r]
                            if dy < 0.0:
                                dy = 0.0
                        if dx * dx + dy * dy > r2:
                            continue
                    if code == 1 or code == 3:
                        sr = int((yl[r] - dyl) / th)
                        if sr < 0:
                            sr = 0
                        elif sr > ny - 1:
                            sr = ny - 1
                        sc = int((xl[r] - dxl) / tw)
                        if sc < 0:
                            sc = 0
                        elif sc > nx - 1:
                            sc = nx - 1
                        ec = int((xu[r] - dxl) / tw)
                        if ec < 0:
                            ec = 0
                        elif ec > nx - 1:
                            ec = nx - 1
                        dup = False
                        for j in range(sr, iy):
                            if j < iy0:
                                continue
                            jl = span_lo[j - iy0]
                            if jl < 0:
                                continue
                            jh = span_hi[j - iy0]
                            a = sc if sc > jl else jl
                            b = ec if ec < jh else jh
                            if a <= b:
                                dup = True
                                break
                        if dup:
                            continue
                    out[k] = ids[r]
                    k += 1
    return out[:k]


if _HAVE_NUMBA:  # pragma: no cover - compiled tier needs the extra
    window_scan: Any = _njit(cache=True, nogil=True)(_window_scan_py)
    window_count: Any = _njit(cache=True, nogil=True)(_window_count_py)
    disk_scan: Any = _njit(cache=True, nogil=True)(_disk_scan_py)
else:
    # Never called (resolve_kernel_mode gates every call site); bound to
    # the pure-python bodies so direct unit tests can still exercise the
    # kernel logic without numba.
    window_scan = _window_scan_py
    window_count = _window_count_py
    disk_scan = _disk_scan_py
