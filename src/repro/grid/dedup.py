"""Duplicate-elimination techniques for space-oriented partitioning.

Because SOP indices replicate objects into every tile they intersect, a
range query can produce the same result from several tiles.  The paper's
baselines *eliminate* duplicates after generating them:

* **Reference point** (Dittrich & Seeger [9]) — the state of the art: a
  result is reported only from the tile containing the lower-left corner
  of its intersection with the query window.  No hash table, but every
  duplicate copy is still fetched, compared and reference-point-tested.
* **Naive hashing** — collect all results, dedup through a hash set.
* **Active border** (Aref & Samet [2]) — process tiles in row-major order
  and keep a hash table of only the results that can reappear in a later
  tile (those crossing the current tile's right or bottom edge); entries
  are evicted once the sweep passes the last row they can occur in.

The two-layer scheme of the paper (package :mod:`repro.core`) makes all
of these unnecessary by never generating a duplicate in the first place.
"""

from __future__ import annotations

import numpy as np

from repro.grid.base import GridPartitioner
from repro.geometry.mbr import Rect

__all__ = ["reference_point_keep_mask", "ActiveBorder"]


def reference_point_keep_mask(
    xl: np.ndarray,
    yl: np.ndarray,
    window: Rect,
    grid: GridPartitioner,
    ix: int,
    iy: int,
) -> np.ndarray:
    """Vectorised reference-point test for candidates found in one tile.

    ``xl``/``yl`` are the lower coordinates of candidate MBRs already known
    to intersect ``window``.  The reference point of a candidate is
    ``(max(r.xl, W.xl), max(r.yl, W.yl))`` — the lower corner of the
    intersection — and the candidate is kept iff that point falls in the
    current tile ``(ix, iy)``.
    """
    px = np.maximum(xl, window.xl)
    py = np.maximum(yl, window.yl)
    return (grid.tile_ix_array(px) == ix) & (grid.tile_iy_array(py) == iy)


class ActiveBorder:
    """Aref & Samet's bounded-size hash deduplication [2].

    Tiles must be fed in row-major order (all columns of row 0, then row 1,
    ...).  The table only ever holds results that can still reappear, i.e.
    the *active border* of the sweep; :attr:`max_size` records the high-water
    mark, the quantity [2] set out to bound.
    """

    def __init__(self) -> None:
        self._last_row: dict[int, int] = {}
        self._current_row = -1
        self.max_size = 0

    def start_row(self, iy: int) -> None:
        """Advance the sweep to row ``iy``, evicting expired entries."""
        if iy == self._current_row:
            return
        self._current_row = iy
        expired = [oid for oid, row in self._last_row.items() if row < iy]
        for oid in expired:
            del self._last_row[oid]

    def report(self, obj_id: int, last_row: int, extends_later: bool) -> bool:
        """Try to report ``obj_id``; returns False when it is a duplicate.

        ``last_row`` is the last grid row in which this result can appear
        (the row of its MBR's upper-y, clamped to the query's tile range)
        and ``extends_later`` says whether the result can reappear in any
        tile after the current one in row-major order (a later column of
        this row or a later row).  Results that cannot reappear never
        enter the table — that is what keeps it border-sized.
        """
        if obj_id in self._last_row:
            return False
        if extends_later:
            self._last_row[obj_id] = max(last_row, self._current_row)
            if len(self._last_row) > self.max_size:
                self.max_size = len(self._last_row)
        return True

    def __len__(self) -> int:
        return len(self._last_row)
